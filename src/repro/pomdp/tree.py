"""Finite-depth Max-Avg lookahead (Figure 1(b)).

The online controller chooses actions by unrolling the belief-state Bellman
recursion (Eq. 2) to a small fixed depth and substituting a value estimate —
a lower bound, in the bounded controller — at the leaf beliefs.  The tree is
a Max-Avg tree: values of sibling observation branches are averaged with the
observation probabilities ``gamma^{pi,a}(o)`` (Eq. 3), and the maximum over
actions is taken at each decision node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.pomdp.belief import GAMMA_EPSILON
from repro.pomdp.model import POMDP


class LeafValue(Protocol):
    """A value estimate evaluated at the leaves of the lookahead tree."""

    def value(self, belief: np.ndarray) -> float:
        """Estimate of the POMDP value at ``belief``."""
        ...  # pragma: no cover - protocol

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value` over a ``(k, |S|)`` stack of beliefs."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class TreeDecision:
    """Outcome of one lookahead expansion.

    Attributes:
        action: index of the maximising action at the root.
        value: root value (the max over ``action_values``).
        action_values: per-action root values; disallowed actions are
            ``-inf``.
        leaf_evaluations: number of leaf-value evaluations performed.
        nodes: number of internal decision nodes expanded.
    """

    action: int
    value: float
    action_values: np.ndarray
    leaf_evaluations: int
    nodes: int


def _children(pomdp: POMDP, belief: np.ndarray, action: int):
    """Reachable ``(gamma, posteriors)`` for one action, pruned by gamma."""
    predicted = belief @ pomdp.transitions[action]
    joint = predicted[:, None] * pomdp.observations[action]
    gamma = joint.sum(axis=0)
    reachable = gamma > GAMMA_EPSILON
    posteriors = (joint[:, reachable] / gamma[reachable]).T
    return gamma[reachable], posteriors


def expand_tree(
    pomdp: POMDP,
    belief: np.ndarray,
    depth: int,
    leaf: LeafValue,
    allowed_actions: np.ndarray | None = None,
) -> TreeDecision:
    """Expand the Max-Avg tree of Figure 1(b) and pick the best root action.

    Args:
        pomdp: the model being controlled.
        belief: root belief state.
        depth: number of action layers to expand; must be at least 1.
        leaf: value estimate substituted at depth-0 beliefs.
        allowed_actions: optional boolean mask restricting the *root*
            decision (inner nodes always consider every action, matching the
            recursion of Eq. 2).

    Returns:
        A :class:`TreeDecision`; ties at the root break toward the
        lowest-index action, so action ordering in the model is the
        deterministic tie-breaker.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    counters = {"leaves": 0, "nodes": 0}

    def node_value(node_belief: np.ndarray, remaining: int) -> float:
        counters["nodes"] += 1
        best = -np.inf
        rewards = pomdp.rewards @ node_belief
        for action in range(pomdp.n_actions):
            gamma, posteriors = _children(pomdp, node_belief, action)
            if remaining == 1:
                counters["leaves"] += posteriors.shape[0]
                future = leaf.value_batch(posteriors)
            else:
                future = np.array(
                    [node_value(child, remaining - 1) for child in posteriors]
                )
            total = rewards[action] + pomdp.discount * float(gamma @ future)
            best = max(best, total)
        return best

    counters["nodes"] += 1
    rewards = pomdp.rewards @ belief
    action_values = np.full(pomdp.n_actions, -np.inf)
    for action in range(pomdp.n_actions):
        if allowed_actions is not None and not allowed_actions[action]:
            continue
        gamma, posteriors = _children(pomdp, belief, action)
        if depth == 1:
            counters["leaves"] += posteriors.shape[0]
            future = leaf.value_batch(posteriors)
        else:
            future = np.array(
                [node_value(child, depth - 1) for child in posteriors]
            )
        action_values[action] = rewards[action] + pomdp.discount * float(
            gamma @ future
        )

    best_action = int(np.argmax(action_values))
    return TreeDecision(
        action=best_action,
        value=float(action_values[best_action]),
        action_values=action_values,
        leaf_evaluations=counters["leaves"],
        nodes=counters["nodes"],
    )
