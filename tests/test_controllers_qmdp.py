"""Tests for the QMDP baseline controller."""

import numpy as np
import pytest

from repro.controllers.qmdp import QMDPController
from repro.sim.campaign import run_campaign
from repro.systems.faults import FaultKind


class TestQMDPController:
    def test_repairs_certain_fault(self, simple_system):
        controller = QMDPController(simple_system.model)
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.fault_a] = 1.0
        controller.reset(initial_belief=belief)
        decision = controller.decide()
        assert decision.action == simple_system.model.pomdp.action_index(
            "restart(a)"
        )

    def test_observes_when_fault_mass_is_small(self, simple_system):
        """Near-recovered beliefs make observe the Q-cheapest action."""
        controller = QMDPController(simple_system.model)
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.null_state] = 0.9
        belief[simple_system.fault_a] = 0.1
        controller.reset(initial_belief=belief)
        decision = controller.decide()
        assert decision.action == simple_system.observe_action

    def test_threshold_termination(self, simple_system):
        controller = QMDPController(
            simple_system.model, termination_probability=0.9
        )
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.null_state] = 0.95
        belief[simple_system.fault_a] = 0.05
        controller.reset(initial_belief=belief)
        assert controller.decide().is_terminate

    def test_terminate_action_maskable(self, simple_system):
        controller = QMDPController(
            simple_system.model, allow_terminate_action=False
        )
        a_t = simple_system.model.terminate_action
        rng = np.random.default_rng(1)
        n = simple_system.model.pomdp.n_states
        for belief in rng.dirichlet(np.ones(n), size=50):
            controller.reset(initial_belief=belief)
            decision = controller.decide()
            if not decision.is_terminate:
                assert decision.action != a_t

    def test_invalid_threshold_rejected(self, simple_system):
        with pytest.raises(ValueError):
            QMDPController(simple_system.model, termination_probability=0.0)

    def test_procrastinates_on_unresolvable_ambiguity(self, emn_system):
        """QMDP's pathology on the EMN model: zombie(S1)/zombie(S2) are
        observationally identical, so the belief never leaves 50/50 — and
        under the everything-resolves-after-one-step assumption, observing
        keeps looking cheaper than committing to a restart.  The campaign
        hits the step cap with enormous monitor-call counts, which is the
        quantitative case for belief-space lookahead."""
        controller = QMDPController(emn_system.model)
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
            injections=40,
            seed=9,
            monitor_tail=5.0,
        )
        assert result.summary.monitor_calls > 50  # endless observing
        assert result.summary.unrecovered > 0  # stuck episodes exist
        # The step cap, not an early termination, ends the stuck episodes.
        assert result.summary.early_terminations == 0

    def test_recovers_unambiguous_faults_on_emn(self, emn_system):
        """Component crashes with unique monitor signatures pose no
        information problem, so QMDP handles them.  (crash(DB) is excluded:
        it shares its signature with host_crash(hostC), which re-creates
        the procrastination trap.)"""
        pomdp = emn_system.model.pomdp
        unambiguous = np.array(
            [
                pomdp.state_index(label)
                for label in ("crash(HG)", "crash(VG)", "crash(S1)",
                              "crash(S2)")
            ]
        )
        controller = QMDPController(emn_system.model)
        result = run_campaign(
            controller,
            fault_states=unambiguous,
            injections=30,
            seed=9,
            monitor_tail=5.0,
        )
        assert result.summary.unrecovered == 0
