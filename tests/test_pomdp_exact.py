"""Tests for Monahan exact value iteration."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.pomdp.exact import solve_exact
from repro.pomdp.tree import expand_tree
from tests.test_pomdp_model import tiny_pomdp


@pytest.fixture(scope="module")
def tiny_solution():
    pomdp = tiny_pomdp(discount=0.8)
    return pomdp, solve_exact(pomdp, tol=1e-5)


class TestSolveExact:
    def test_undiscounted_rejected(self):
        with pytest.raises(ModelError, match="discount"):
            solve_exact(tiny_pomdp(discount=1.0))

    def test_error_bound_met(self, tiny_solution):
        _, solution = tiny_solution
        assert solution.error_bound <= 1e-5

    def test_value_is_nonpositive(self, tiny_solution):
        pomdp, solution = tiny_solution
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=32):
            assert solution.value(belief) <= 1e-9

    def test_value_function_is_convex_along_a_segment(self, tiny_solution):
        pomdp, solution = tiny_solution
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        va, vb = solution.value(a), solution.value(b)
        for t in np.linspace(0, 1, 11):
            mixed = (1 - t) * a + t * b
            assert solution.value(mixed) <= (1 - t) * va + t * vb + 1e-9

    def test_bellman_fixed_point(self, tiny_solution):
        """V* must satisfy V = L_p V up to the error bound."""
        pomdp, solution = tiny_solution
        rng = np.random.default_rng(1)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=16):
            backed_up = expand_tree(pomdp, belief, depth=1, leaf=solution).value
            assert abs(backed_up - solution.value(belief)) <= 3e-5

    def test_value_batch_matches_scalar(self, tiny_solution):
        pomdp, solution = tiny_solution
        beliefs = np.random.default_rng(2).dirichlet(
            np.ones(pomdp.n_states), size=8
        )
        batch = solution.value_batch(beliefs)
        assert np.allclose(batch, [solution.value(b) for b in beliefs])

    def test_greedy_action_repairs_known_fault(self, tiny_solution):
        pomdp, solution = tiny_solution
        assert solution.greedy_action(pomdp, np.array([1.0, 0.0])) == 0

    def test_pointwise_prune_variant_agrees(self):
        pomdp = tiny_pomdp(discount=0.8)
        lp = solve_exact(pomdp, tol=1e-4, prune="lp")
        pw = solve_exact(pomdp, tol=1e-4, prune="pointwise")
        rng = np.random.default_rng(3)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=16):
            assert abs(lp.value(belief) - pw.value(belief)) <= 1e-6
