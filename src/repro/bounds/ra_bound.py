"""The random-action bound (RA-Bound), Section 3.1.

The RA-Bound replaces the maximisation of the MDP Bellman equation (Eq. 1)
with a uniform average over actions (Eq. 5), which turns the MDP into a
Markov reward chain — the chain of the uniformly-random policy — whose
expected accumulated reward ``V_m^-(s)`` can be found with a linear solve on
the *original* state space.  The POMDP lower bound is then the hyperplane
``V_p^-(pi) = sum_s pi(s) V_m^-(s)`` (Lemma 3.1 / Theorem 3.1).

For undiscounted models the chain solve is finite iff every action
originating in a recurrent state of the chain has zero reward; the recovery
augmentations of :mod:`repro.recovery` (absorbing ``S_phi`` with recovery
notification, terminate state ``s_T`` without) establish exactly that.  This
module checks the structure before solving so that a violated precondition
surfaces as a :class:`~repro.exceptions.DivergenceError` with an explanation
instead of a hung iteration.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DivergenceError
from repro.linalg.ops import reward_column
from repro.mdp.classify import classify_chain
from repro.mdp.linear_solvers import select_method, solve_markov_reward
from repro.mdp.model import MDP
from repro.pomdp.model import POMDP

#: Rewards smaller than this in magnitude count as zero for the
#: finiteness precondition.
REWARD_EPSILON = 1e-12


def _as_mdp(model: MDP | POMDP) -> MDP:
    return model.to_mdp() if isinstance(model, POMDP) else model


def check_ra_finiteness(model: MDP | POMDP) -> None:
    """Verify Eq. 5 has a finite solution; raise DivergenceError otherwise.

    Necessary and sufficient condition (Section 3.1): the rewards of all
    actions that originate in the recurrent states of the uniform-random
    chain are zero.
    """
    mdp = _as_mdp(model)
    if mdp.discount < 1.0:
        return  # discounting alone guarantees finiteness
    chain, _ = mdp.uniform_chain()
    classification = classify_chain(chain)
    recurrent = np.flatnonzero(classification.recurrent)
    # One dense reward column per recurrent state (there are only a handful
    # in a recovery model), vectorised over actions — the previous
    # per-(state, action) scalar loop was quadratic in disguise and
    # infeasible at 150k actions.
    offending: list[tuple[int, int, float]] = []
    for s in recurrent:
        column = reward_column(mdp.rewards, int(s))
        bad = np.flatnonzero(np.abs(column) > REWARD_EPSILON)
        offending.extend((int(s), int(a), float(column[a])) for a in bad)
    if offending:
        state, action, value = offending[0]
        raise DivergenceError(
            "RA-Bound is infinite: recurrent state "
            f"{mdp.state_labels[state]!r} accrues reward "
            f"{value:.3g} under action "
            f"{mdp.action_labels[action]!r} (and {len(offending) - 1} more "
            "violations); apply the recovery-model modifications of "
            "Section 3.1 first"
        )


def ra_bound_vector(
    model: MDP | POMDP,
    method: str = "auto",
    omega: float = 1.05,
    tol: float = 1e-10,
) -> np.ndarray:
    """Compute ``V_m^-``, the per-state RA-Bound values (Eq. 5).

    Args:
        model: an MDP, or a POMDP whose underlying MDP is used (the bound
            never looks at the observation function — that is why it is
            cheap, and also why it may be loose, motivating the refinement
            of Section 4.1).
        method: linear solver — ``"auto"`` (default: the sparse backend for
            large, sparse chains, Gauss-Seidel otherwise; see
            :func:`repro.mdp.linear_solvers.select_method`),
            ``"gauss-seidel"`` (with SOR factor ``omega``, the paper's
            choice), ``"jacobi"``, ``"direct"``, or ``"sparse"``.
        omega: SOR relaxation factor for Gauss-Seidel.
        tol: solver tolerance.

    Returns:
        The vector ``V_m^-(s)`` for every state.
    """
    mdp = _as_mdp(model)
    check_ra_finiteness(mdp)
    chain, reward = mdp.uniform_chain()
    transient = None
    if method == "auto":
        method = select_method(chain)
    if method in ("direct", "sparse") and mdp.discount >= 1.0:
        # Undiscounted: I - P is singular on the recurrent classes; pin
        # them to zero (they accrue nothing — check_ra_finiteness above)
        # and factorise only the transient block.
        transient = classify_chain(chain).transient
    return solve_markov_reward(
        chain,
        reward,
        discount=mdp.discount,
        method=method,
        omega=omega,
        tol=tol,
        transient_states=transient,
    )


def ra_bound(model: MDP | POMDP, belief: np.ndarray, **kwargs) -> float:
    """The RA-Bound at a single belief: ``sum_s pi(s) V_m^-(s)``.

    Convenience wrapper; controllers should compute :func:`ra_bound_vector`
    once (off-line, per Section 4.3) and seed a
    :class:`repro.bounds.vector_set.BoundVectorSet` with it.
    """
    vector = ra_bound_vector(model, **kwargs)
    return float(np.asarray(belief, dtype=float) @ vector)
