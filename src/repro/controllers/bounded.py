"""The bounded recovery policy (Section 4).

On startup the engine computes the RA-Bound (off-line, Section 4.3) and
seeds a :class:`~repro.bounds.vector_set.BoundVectorSet` with it.  At every
decision point it optionally refines the bound at the current belief (the
belief-states "naturally generated during the course of system recovery",
Section 4.1) and then unrolls the POMDP recursion of Eq. 2 to a small fixed
depth with the lower bound at the leaves (Figure 1(b)).  Recovery ends when
the terminate action ``a_T`` maximises the tree — no termination-probability
knob is needed, which is the property Table 1's discussion highlights — or,
for systems with recovery notification, when the belief certifies arrival in
``S_phi``.

At the evaluated depth of 1 the expansion is fully batched
(:mod:`repro.pomdp.tree`): the successor-belief matrix is built once and the
bound set is evaluated against it in a single
:meth:`~repro.bounds.vector_set.BoundVectorSet.value_batch` matmul — on the
sparse backend the posteriors are skipped entirely and the whole decision is
a handful of CSR × dense-block products.

All of that is shared, warm state, so it lives in
:class:`BoundedPolicyEngine`; :class:`BoundedController` is the thin
campaign-facing adapter over one engine plus one live session.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.bounds.incremental import refine_at
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.base import RecoveryController
from repro.controllers.engine import Decision, PolicyEngine, RecoverySession
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.tree import expand_tree
from repro.recovery.model import RecoveryModel

#: Belief mass in S_phi above which a notified system counts as recovered.
NOTIFICATION_CERTAINTY = 1.0 - 1e-9

#: Root-value slack within which terminating counts as tied-for-best.
TIE_EPSILON = 1e-9


class BoundedPolicyEngine(PolicyEngine):
    """Lookahead policy with provable lower bounds at the leaves.

    Args:
        model: the (augmented) recovery model.
        depth: lookahead depth; the paper's evaluated configuration is 1.
        bound_set: an existing bound-vector set to share (e.g. one produced
            by :func:`repro.controllers.bootstrap.bootstrap_bounds`, or one
            reloaded through :func:`repro.io.load_bound_set`); when None, a
            fresh set seeded with the RA-Bound is computed.
        refine_online: refine the bound at every visited belief (Section
            4.1).  Disable to freeze the bounds after bootstrapping.
            Sessions can override per episode via their ``refine`` flag.
        refine_min_improvement: reject online refinements that raise the
            bound at the visited belief by less than this (in reward units,
            i.e. dropped requests for the EMN model).  Keeps the vector set
            small and the per-decision cost flat over long campaigns; the
            right value is a small fraction of the model's typical recovery
            cost (the Table 1 harness uses 1 dropped request).  The default
            of 0 accepts every strict improvement.
        max_vectors: optional bound-vector storage limit (Section 4.3).
    """

    def __init__(
        self,
        model: RecoveryModel,
        depth: int = 1,
        bound_set: BoundVectorSet | None = None,
        refine_online: bool = True,
        refine_min_improvement: float = 0.0,
        max_vectors: int | None = None,
        preflight: bool = False,
    ):
        super().__init__(model, preflight=preflight)
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self.refine_online = refine_online
        self.refine_min_improvement = refine_min_improvement
        if bound_set is None:
            bound_set = BoundVectorSet(
                ra_bound_vector(model.pomdp), max_vectors=max_vectors
            )
        self.bound_set = bound_set
        self.name = f"bounded (depth {depth})"

    def decide(self, session: RecoverySession) -> Decision:
        belief = session.belief_view()
        pomdp = self.model.pomdp
        telemetry = telemetry_active()
        if (
            self.model.recovery_notification
            and self.model.recovered_probability(belief) >= NOTIFICATION_CERTAINTY
        ):
            # Notified models have no a_T, so the decision carries the
            # NO_ACTION sentinel — the campaign executes nothing for it.
            if telemetry is not None:
                telemetry.count("controller.decisions")
                telemetry.count("controller.notification_exits")
                telemetry.event(
                    "decision",
                    action=-1,
                    terminate=True,
                    notified=True,
                    **session.span_attributes(),
                )
            return self.terminate_decision(value=0.0)
        if telemetry is not None:
            decision_span = telemetry.trace_span(
                "controller.decision",
                category="controller",
                **session.span_attributes(),
            )
            # The same window feeds the controller.decision timer and
            # latency histogram, so the distribution exists even when
            # hierarchical tracing is off.
            decision_timer = telemetry.span("controller.decision")
        else:
            decision_span = nullcontext()
            decision_timer = nullcontext()
        with decision_span, decision_timer:
            refine = (
                self.refine_online if session.refine is None else session.refine
            )
            if refine:
                refine_at(
                    pomdp,
                    self.bound_set,
                    belief,
                    min_improvement=self.refine_min_improvement,
                )
            if telemetry is not None:
                with telemetry.span("controller.expand_tree"):
                    decision = expand_tree(
                        pomdp, belief, self.depth, self.bound_set
                    )
            else:
                decision = expand_tree(pomdp, belief, self.depth, self.bound_set)
        action = decision.action
        terminate = self.model.terminate_action
        tie_break = False
        if (
            terminate is not None
            and decision.action_values[terminate] >= decision.value - TIE_EPSILON
        ):
            # Tie-break toward a_T: the EMN model's observe action is free in
            # the null state (violating Property 1(a)'s no-free-actions
            # premise), so without this preference the controller could
            # observe forever once the belief certifies recovery, with value
            # exactly equal to terminating.
            tie_break = action != terminate
            action = terminate
        if telemetry is not None:
            telemetry.count("controller.decisions")
            telemetry.count("tree.nodes", decision.nodes)
            telemetry.count("tree.leaf_evaluations", decision.leaf_evaluations)
            if tie_break:
                telemetry.count("controller.tie_breaks")
            telemetry.event(
                "decision",
                action=int(action),
                terminate=bool(action == terminate),
                value=float(decision.value),
                tree_nodes=decision.nodes,
                leaf_evaluations=decision.leaf_evaluations,
                tie_break=tie_break,
                # Labelled (service) sessions tag their decisions so a
                # multi-session stream can be filtered per session; the
                # campaign's unlabelled sessions add nothing, keeping
                # batch streams byte-identical to the pre-session era.
                **session.span_attributes(),
            )
        return Decision(
            action=action,
            is_terminate=action == terminate,
            value=decision.value,
        )


class BoundedController(RecoveryController):
    """Campaign-facing adapter over a :class:`BoundedPolicyEngine`.

    Accepts the engine's arguments (see there) and exposes the engine's
    shared state under the historical attribute names.
    """

    def __init__(
        self,
        model: RecoveryModel,
        depth: int = 1,
        bound_set: BoundVectorSet | None = None,
        refine_online: bool = True,
        refine_min_improvement: float = 0.0,
        max_vectors: int | None = None,
        preflight: bool = False,
    ):
        super().__init__(
            engine=BoundedPolicyEngine(
                model,
                depth=depth,
                bound_set=bound_set,
                refine_online=refine_online,
                refine_min_improvement=refine_min_improvement,
                max_vectors=max_vectors,
                preflight=preflight,
            )
        )

    @property
    def depth(self) -> int:
        return self.engine.depth

    @property
    def refine_online(self) -> bool:
        return self.engine.refine_online

    @property
    def refine_min_improvement(self) -> float:
        return self.engine.refine_min_improvement

    @property
    def bound_set(self) -> BoundVectorSet:
        return self.engine.bound_set
