"""The recovery model: a POMDP plus recovery semantics (Section 3).

A :class:`RecoveryModel` is what controllers and the fault-injection
environment consume.  Its POMDP is already *augmented*: for systems with
recovery notification the null states are absorbing and zero-reward
(Figure 2(a)); for systems without, a terminate state ``s_T`` and action
``a_T`` have been appended with termination rewards
``r(s, a_T) = rbar(s) * t_op`` (Figure 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.passes import (
    condition_1_diagnostics,
    condition_2_diagnostics,
)
from repro.analysis.view import ModelView
from repro.exceptions import ModelError
from repro.pomdp.model import POMDP

#: Label given to the appended terminate state / action.
TERMINATE_LABEL = "terminate"


def _condition_view(pomdp: POMDP, null_states: np.ndarray | None) -> ModelView:
    return ModelView(
        transitions=pomdp.transitions,
        rewards=pomdp.rewards,
        observations=pomdp.observations,
        state_labels=pomdp.state_labels,
        action_labels=pomdp.action_labels,
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
        null_states=null_states,
    )


def check_condition_1(
    pomdp: POMDP,
    null_states: np.ndarray,
    exempt_states: np.ndarray | None = None,
) -> None:
    """Condition 1: every state can reach some null-fault state.

    "Starting in any state s not in S_phi, there is at least one way to
    recover the system" — i.e. ``S_phi`` is reachable from every state in
    the graph whose edges are the union of all actions' transitions.

    This is the strict-mode adapter over the static analyzer's Condition 1
    pass (:func:`repro.analysis.condition_1_diagnostics`); use the analyzer
    directly for a full (non-fail-fast) report.

    Args:
        pomdp: the model to check.
        null_states: the ``S_phi`` mask.
        exempt_states: states excluded from the requirement; the appended
            terminate state ``s_T`` is absorbing *by design* and is the one
            legitimate exemption.

    Raises:
        ConditionViolation: naming the unrecoverable states.
    """
    mask = np.asarray(null_states, dtype=bool)
    if mask.shape != (pomdp.n_states,):
        raise ModelError(
            f"null_states must be a mask of length {pomdp.n_states}"
        )
    view = _condition_view(pomdp, mask)
    findings = condition_1_diagnostics(view, exempt_states=exempt_states)
    AnalysisReport(findings=tuple(findings)).raise_if_errors()


def check_condition_2(pomdp: POMDP) -> None:
    """Condition 2: all single-step rewards are non-positive.

    Strict-mode adapter over :func:`repro.analysis.condition_2_diagnostics`.
    """
    findings = condition_2_diagnostics(_condition_view(pomdp, None))
    AnalysisReport(findings=tuple(findings)).raise_if_errors()


def termination_rewards(
    rate_rewards: np.ndarray,
    operator_response_time: float,
    null_states: np.ndarray,
) -> np.ndarray:
    """Termination rewards ``r(s, a_T)`` (Section 3.1).

    ``r(s, a_T) = rbar(s) * t_op`` for fault states and 0 for null states:
    terminating early leaves the system paying the fault's cost rate until a
    human operator responds, ``t_op`` seconds later.  ``rate_rewards`` are
    non-positive cost rates per second.
    """
    if operator_response_time < 0:
        raise ModelError(
            f"operator response time must be >= 0, got {operator_response_time}"
        )
    rates = np.asarray(rate_rewards, dtype=float)
    rewards = rates * operator_response_time
    rewards = np.where(np.asarray(null_states, dtype=bool), 0.0, rewards)
    return rewards


def null_absorbing_arrays(
    transitions: np.ndarray, rewards: np.ndarray, null_states: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Array-level core of :func:`make_null_absorbing`.

    Operates on raw ``(|A|, |S|, |S|)`` / ``(|A|, |S|)`` arrays so the
    static analyzer's report mode can preview the Figure 2(a) rewiring for
    models that would not survive POMDP validation.
    """
    mask = np.asarray(null_states, dtype=bool)
    transitions = np.asarray(transitions, dtype=float).copy()
    rewards = np.asarray(rewards, dtype=float).copy()
    null_index = np.flatnonzero(mask)
    for action in range(transitions.shape[0]):
        transitions[action][null_index, :] = 0.0
        transitions[action][null_index, null_index] = 1.0
        rewards[action][null_index] = 0.0
    return transitions, rewards


def make_null_absorbing(pomdp: POMDP, null_states: np.ndarray) -> POMDP:
    """Figure 2(a): rewire every action in ``S_phi`` to a zero-reward self-loop.

    With recovery notification the controller stops on entering ``S_phi``,
    so nothing that happens "after" matters; making the null states
    absorbing and free encodes that and gives Eq. 5 a finite solution.
    """
    transitions, rewards = null_absorbing_arrays(
        pomdp.transitions, pomdp.rewards, null_states
    )
    return POMDP(
        transitions=transitions,
        observations=pomdp.observations,
        rewards=rewards,
        state_labels=pomdp.state_labels,
        action_labels=pomdp.action_labels,
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )


def termination_arrays(
    transitions: np.ndarray,
    observations: np.ndarray,
    rewards: np.ndarray,
    null_states: np.ndarray,
    rate_rewards: np.ndarray,
    operator_response_time: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array-level core of :func:`with_termination_action`.

    Returns the augmented ``(transitions, observations, rewards)`` with
    ``s_T`` appended as the last state and ``a_T`` as the last action;
    usable on raw arrays (the analyzer's report mode) as well as on
    validated POMDP fields.
    """
    transitions = np.asarray(transitions, dtype=float)
    observations = np.asarray(observations, dtype=float)
    rewards = np.asarray(rewards, dtype=float)
    n_actions, n_states = transitions.shape[0], transitions.shape[1]
    n_observations = observations.shape[2]
    terminate_state = n_states
    terminate_action = n_actions

    new_transitions = np.zeros((n_actions + 1, n_states + 1, n_states + 1))
    new_transitions[:n_actions, :n_states, :n_states] = transitions
    # Every original action self-loops in s_T.
    new_transitions[:n_actions, terminate_state, terminate_state] = 1.0
    # a_T sends every state (including s_T) to s_T.
    new_transitions[terminate_action, :, terminate_state] = 1.0

    new_observations = np.zeros((n_actions + 1, n_states + 1, n_observations))
    new_observations[:n_actions, :n_states, :] = observations
    new_observations[:n_actions, terminate_state, :] = 1.0 / n_observations
    new_observations[terminate_action, :, :] = 1.0 / n_observations

    term_rewards = termination_rewards(
        rate_rewards, operator_response_time, null_states
    )
    new_rewards = np.zeros((n_actions + 1, n_states + 1))
    new_rewards[:n_actions, :n_states] = rewards
    new_rewards[:n_actions, terminate_state] = 0.0
    new_rewards[terminate_action, :n_states] = term_rewards
    new_rewards[terminate_action, terminate_state] = 0.0
    return new_transitions, new_observations, new_rewards


def with_termination_action(
    pomdp: POMDP,
    null_states: np.ndarray,
    rate_rewards: np.ndarray,
    operator_response_time: float,
) -> tuple[POMDP, int, int]:
    """Figure 2(b): append the terminate state ``s_T`` and action ``a_T``.

    * ``s_T`` is absorbing under every action with zero reward;
    * ``a_T`` moves every state to ``s_T`` with probability one and reward
      ``r(s, a_T)`` from :func:`termination_rewards`;
    * observations in ``s_T`` are uniform (they are never informative —
      the controller has already stopped).

    Returns ``(augmented_pomdp, terminate_state_index, terminate_action_index)``.
    """
    terminate_state = pomdp.n_states
    terminate_action = pomdp.n_actions
    transitions, observations, rewards = termination_arrays(
        pomdp.transitions,
        pomdp.observations,
        pomdp.rewards,
        null_states,
        rate_rewards,
        operator_response_time,
    )

    augmented = POMDP(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        state_labels=pomdp.state_labels + (TERMINATE_LABEL,),
        action_labels=pomdp.action_labels + (TERMINATE_LABEL,),
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )
    return augmented, terminate_state, terminate_action


@dataclass(frozen=True)
class RecoveryModel:
    """A controller-ready recovery model.

    Attributes:
        pomdp: the augmented POMDP (see module docstring).
        null_states: mask over the augmented state space; True on ``S_phi``.
        rate_rewards: per-state cost rates ``rbar(s) <= 0`` (per second) on
            the augmented space (0 on ``s_T``).
        durations: per-action execution time ``t_a`` in seconds on the
            augmented action space (0 for ``a_T``).
        passive_actions: mask of purely observational actions (they never
            change the system state); used by the metrics layer to separate
            "monitor calls" from "recovery actions" in Table 1.
        recovery_notification: True when monitors reveal entry into
            ``S_phi`` (Figure 2(a) augmentation); False when the terminate
            pair was added (Figure 2(b)).
        terminate_state / terminate_action: indices of ``s_T`` / ``a_T``
            (None with recovery notification).
        operator_response_time: ``t_op`` used for the termination rewards
            (None with recovery notification).
    """

    pomdp: POMDP
    null_states: np.ndarray
    rate_rewards: np.ndarray
    durations: np.ndarray
    passive_actions: np.ndarray
    recovery_notification: bool
    terminate_state: int | None = None
    terminate_action: int | None = None
    operator_response_time: float | None = None
    fault_states: np.ndarray = field(init=False)

    def __post_init__(self):
        pomdp = self.pomdp
        null_states = np.asarray(self.null_states, dtype=bool)
        rate_rewards = np.asarray(self.rate_rewards, dtype=float)
        durations = np.asarray(self.durations, dtype=float)
        passive = np.asarray(self.passive_actions, dtype=bool)
        if null_states.shape != (pomdp.n_states,):
            raise ModelError("null_states mask has the wrong length")
        if rate_rewards.shape != (pomdp.n_states,):
            raise ModelError("rate_rewards has the wrong length")
        if np.any(rate_rewards > 1e-9):
            raise ModelError("rate_rewards must be non-positive cost rates")
        if durations.shape != (pomdp.n_actions,):
            raise ModelError("durations has the wrong length")
        if np.any(durations < 0):
            raise ModelError("durations must be non-negative")
        if passive.shape != (pomdp.n_actions,):
            raise ModelError("passive_actions mask has the wrong length")
        if self.recovery_notification:
            if self.terminate_action is not None or self.terminate_state is not None:
                raise ModelError(
                    "models with recovery notification have no terminate pair"
                )
        else:
            if self.terminate_action is None or self.terminate_state is None:
                raise ModelError(
                    "models without recovery notification need s_T and a_T"
                )
        exempt = None
        if self.terminate_state is not None:
            exempt = np.zeros(pomdp.n_states, dtype=bool)
            exempt[self.terminate_state] = True
        check_condition_1(pomdp, null_states, exempt_states=exempt)
        check_condition_2(pomdp)

        fault_states = ~null_states
        if self.terminate_state is not None:
            fault_states = fault_states.copy()
            fault_states[self.terminate_state] = False
        object.__setattr__(self, "null_states", null_states)
        object.__setattr__(self, "rate_rewards", rate_rewards)
        object.__setattr__(self, "durations", durations)
        object.__setattr__(self, "passive_actions", passive)
        object.__setattr__(self, "fault_states", fault_states)

    @property
    def recovery_actions(self) -> np.ndarray:
        """Mask of actions that actually repair state (not passive, not a_T)."""
        mask = ~self.passive_actions
        if self.terminate_action is not None:
            mask = mask.copy()
            mask[self.terminate_action] = False
        return mask

    def initial_belief(self) -> np.ndarray:
        """The paper's starting belief: all faults equally likely (Section 4)."""
        belief = np.zeros(self.pomdp.n_states)
        faults = self.fault_states
        belief[faults] = 1.0 / faults.sum()
        return belief

    def analyze(self) -> "AnalysisReport":
        """Full static-analysis report for this model.

        Unlike construction-time validation (which fails fast), this runs
        every analyzer pass and returns all findings; a constructed model
        has no ``R0xx`` errors by definition, so the interest is in the
        ``R1xx`` warnings and ``R2xx`` statistics.
        """
        from repro.analysis.passes import analyze

        return analyze(self)

    def is_recovered(self, state: int) -> bool:
        """True when ``state`` is a null-fault state."""
        return bool(self.null_states[state])

    def recovered_probability(self, belief: np.ndarray) -> float:
        """``P[s in S_phi]`` under ``belief`` (plus ``s_T``, if present).

        This is the quantity baseline controllers threshold on to decide
        termination (Section 5's termination probability).
        """
        probability = float(belief[self.null_states].sum())
        if self.terminate_state is not None:
            probability += float(belief[self.terminate_state])
        return probability
