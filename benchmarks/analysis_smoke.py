"""Full-analyzer smoke on the 300,002-state sparse tiered instance.

Runs every analyzer pass — no R203 size skips allowed — over the largest
instance the scalability experiments use, and asserts three things:

* **completeness**: the report contains zero ``R203`` findings, i.e. the
  sparse-native passes (CSR reachability, hash-grouped duplicate
  detection, ``csgraph`` SCC labels, the sparse transient-state solve)
  all ran to completion;
* **time**: the analysis itself finishes under a wall-clock ceiling
  (generous — the pass suite takes a few seconds; the ceiling exists to
  catch an accidental quadratic scan, which is minutes, not seconds);
* **memory**: peak RSS stays under a ceiling that a single densified
  ``|S| x |S|`` matrix (~720 GB at 300k states — any attempt dies by
  allocation, but even a dense ``|A| x |S|`` reward tensor is ~360 GB)
  could never fit, so no pass densifies anything.

The exit-1 analyzer verdict is expected: the instance's expected
random-policy absorption time is ~|A| steps, so R105 legitimately warns
that the RA-Bound is loose — that is a property of the model, not an
analyzer failure, and the smoke treats warnings as success.

Usage::

    python -m benchmarks.analysis_smoke
    python -m benchmarks.analysis_smoke --replicas 10000 --max-seconds 30
"""

from __future__ import annotations

import argparse
import resource
import time

from repro.analysis import analyze
from repro.systems.tiered import build_tiered_system

#: Replicas per tier: 3 tiers -> 2 + 2 * 3 * 50,000 = 300,002 states.
DEFAULT_REPLICAS = 50_000

#: Wall-clock ceiling for the analyze() call itself (seconds).
DEFAULT_MAX_SECONDS = 60.0

#: Peak-RSS ceiling.  The sparse analysis run peaks well under 1 GB; any
#: densification at 300k states is hundreds of GB, so the ceiling cleanly
#: separates "sparse-native" from "densified somewhere".
DEFAULT_MAX_RSS_MB = 2_048


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MB (Linux ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_smoke(replicas_per_tier: int) -> dict:
    """Build the sparse tiered instance and run the full analyzer on it."""
    started = time.perf_counter()
    system = build_tiered_system(
        replicas=(replicas_per_tier,) * 3, backend="sparse"
    )
    model = system.model
    build_seconds = time.perf_counter() - started
    assert model.pomdp.backend.is_sparse, "tiered build did not select sparse"

    started = time.perf_counter()
    report = analyze(model)
    analyze_seconds = time.perf_counter() - started

    skipped = [d for d in report.findings if d.code == "R203"]
    assert not skipped, "size-cutoff skips on the acceptance instance:\n" + (
        "\n".join(d.format() for d in skipped)
    )
    assert not report.has_errors, (
        "the shipped tiered instance must be error-free:\n" + report.format()
    )
    return {
        "n_states": model.pomdp.n_states,
        "n_actions": model.pomdp.n_actions,
        "build_seconds": build_seconds,
        "analyze_seconds": analyze_seconds,
        "findings": {d.code for d in report.findings},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="analysis-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_REPLICAS, metavar="R",
        help="replicas per tier (3 tiers; default 50,000 -> 300,002 states)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=DEFAULT_MAX_SECONDS, metavar="S",
        help="wall-clock ceiling for the analyze() call",
    )
    parser.add_argument(
        "--max-rss-mb", type=float, default=DEFAULT_MAX_RSS_MB, metavar="MB",
        help="peak-RSS ceiling; exceeding it means a pass densified",
    )
    args = parser.parse_args(argv)

    report = run_smoke(args.replicas)
    rss = peak_rss_mb()
    print(
        f"analyzer smoke: |S|={report['n_states']:,} "
        f"|A|={report['n_actions']:,}, build {report['build_seconds']:.1f}s, "
        f"full analysis {report['analyze_seconds']:.1f}s "
        f"(codes {sorted(report['findings'])}), peak RSS {rss:.0f} MB"
    )
    if report["analyze_seconds"] > args.max_seconds:
        raise SystemExit(
            f"analysis took {report['analyze_seconds']:.1f}s, over the "
            f"{args.max_seconds:.0f}s ceiling — a pass has gone super-linear"
        )
    if rss > args.max_rss_mb:
        raise SystemExit(
            f"peak RSS {rss:.0f} MB exceeded the {args.max_rss_mb:.0f} MB "
            "ceiling — an analysis pass is densifying the model"
        )
    print(
        f"within the {args.max_seconds:.0f}s / {args.max_rss_mb:.0f} MB "
        "ceilings, zero R203 skips"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
