"""pomdp-recovery: automatic recovery with bounded POMDPs.

A complete implementation of "Automatic Recovery Using Bounded Partially
Observable Markov Decision Processes" (Joshi, Hiltunen, Sanders,
Schlichting; DSN 2006): the RA-Bound and its convergence conditions for
undiscounted recovery models, incremental lower-bound refinement, the
bounded online recovery controller and its baselines, the EMN e-commerce
case-study system, and the fault-injection experiment harness.

Quick start::

    from repro import build_emn_system, BoundedController, run_campaign
    from repro.systems import FaultKind

    system = build_emn_system()
    controller = BoundedController(system.model, depth=1)
    result = run_campaign(
        controller,
        fault_states=system.fault_states(FaultKind.ZOMBIE),
        injections=100,
        seed=0,
    )
    print(result.summary)
"""

from repro.bounds import (
    BoundVectorSet,
    SawtoothUpperBound,
    bi_pomdp_bound,
    blind_policy_bound,
    ra_bound,
    ra_bound_vector,
    refine_at,
)
from repro.controllers import (
    BoundedController,
    BranchAndBoundController,
    HeuristicController,
    MostLikelyController,
    OracleController,
    RandomController,
    bootstrap_bounds,
)
from repro.io import (
    load_bound_set,
    load_pomdp,
    load_recovery_model,
    save_bound_set,
    save_pomdp,
    save_recovery_model,
)
from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    ModelView,
    Severity,
    analyze,
)
from repro.exceptions import (
    AnalysisError,
    BeliefError,
    ConditionViolation,
    ControllerError,
    DivergenceError,
    ModelError,
    NotConvergedError,
    ReproError,
)
from repro.mdp import MDP, policy_iteration, value_iteration
from repro.pomdp import POMDP, expand_tree, solve_exact
from repro.recovery import RecoveryModel, RecoveryModelBuilder
from repro.sim import RecoveryEnvironment, run_campaign, run_episode
from repro.systems import build_emn_system, build_simple_system

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BeliefError",
    "BoundVectorSet",
    "BoundedController",
    "BranchAndBoundController",
    "ConditionViolation",
    "ControllerError",
    "Diagnostic",
    "DivergenceError",
    "HeuristicController",
    "MDP",
    "ModelError",
    "ModelView",
    "MostLikelyController",
    "NotConvergedError",
    "OracleController",
    "POMDP",
    "RandomController",
    "RecoveryEnvironment",
    "RecoveryModel",
    "RecoveryModelBuilder",
    "ReproError",
    "SawtoothUpperBound",
    "Severity",
    "analyze",
    "bi_pomdp_bound",
    "blind_policy_bound",
    "bootstrap_bounds",
    "build_emn_system",
    "build_simple_system",
    "expand_tree",
    "load_bound_set",
    "load_pomdp",
    "load_recovery_model",
    "policy_iteration",
    "ra_bound",
    "ra_bound_vector",
    "refine_at",
    "run_campaign",
    "run_episode",
    "save_bound_set",
    "save_pomdp",
    "save_recovery_model",
    "solve_exact",
    "value_iteration",
]
