"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import render_table


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        text = render_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title_prepended(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only one"]])

    def test_float_formatting(self):
        text = render_table(["v"], [[1234.5678], [0.001234], [float("nan")]])
        assert "1235" in text  # 4 significant digits for large values
        assert "0.001234" in text
        assert "-" in text.splitlines()[-1]  # NaN renders as a dash

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text
