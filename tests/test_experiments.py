"""Tests for the experiment harnesses (small-scale smoke + claim checks)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    BoundOutcome,
    bound_computation_cost,
    bounds_comparison,
    format_bounds_comparison,
)
from repro.experiments.fig5 import (
    format_fig5a,
    format_fig5b,
    run_fig5,
    shape_checks,
)
from repro.experiments.table1 import (
    PAPER_TABLE1,
    format_table1,
    make_controller,
    ordering_checks,
    run_table1,
)
from repro.systems.emn import build_emn_system


@pytest.fixture(scope="module")
def small_fig5():
    return run_fig5(iterations=6, seed=0)


@pytest.fixture(scope="module")
def small_table1():
    # Tiny but complete: exercises every controller except depth 3 (slow).
    return run_table1(
        injections=20,
        seed=0,
        controllers=(
            "most likely",
            "heuristic (depth 1)",
            "bounded (depth 1)",
            "oracle",
        ),
    )


class TestFig5:
    def test_traces_have_requested_length(self, small_fig5):
        assert small_fig5.random.bound_values.size == 6
        assert small_fig5.average.bound_values.size == 6

    def test_shape_checks_pass(self, small_fig5):
        checks = shape_checks(small_fig5)
        failed = [claim for claim, ok in checks.items() if not ok]
        assert not failed, failed

    def test_formatting_contains_series(self, small_fig5):
        text_a = format_fig5a(small_fig5)
        assert "Iteration" in text_a
        assert "RA-Bound" in text_a
        text_b = format_fig5b(small_fig5)
        assert "|B|" in text_b

    def test_variant_accessor(self, small_fig5):
        assert small_fig5.variant("random") is small_fig5.random
        with pytest.raises(KeyError):
            small_fig5.variant("other")


class TestTable1:
    def test_all_rows_present(self, small_table1):
        names = [c.controller_name for c in small_table1.campaigns]
        assert names == [
            "most likely",
            "heuristic (depth 1)",
            "bounded (depth 1)",
            "oracle",
        ]

    def test_never_gives_up(self, small_table1):
        for campaign in small_table1.campaigns:
            assert campaign.summary.early_terminations == 0
            assert campaign.summary.unrecovered == 0

    def test_oracle_floor(self, small_table1):
        oracle = small_table1.campaign("oracle").summary.cost
        for campaign in small_table1.campaigns:
            assert oracle <= campaign.summary.cost + 1e-9

    def test_ordering_checks_structure(self, small_table1):
        checks = ordering_checks(small_table1)
        assert "no controller ever quit without recovering" in checks
        assert checks["no controller ever quit without recovering"]

    def test_formatting_includes_paper_rows(self, small_table1):
        text = format_table1(small_table1)
        assert "(paper)" in text
        assert "Never-give-up" in text

    def test_campaign_lookup(self, small_table1):
        assert small_table1.campaign("oracle").controller_name == "oracle"
        with pytest.raises(KeyError):
            small_table1.campaign("ghost")

    def test_paper_reference_table_complete(self):
        for name, row in PAPER_TABLE1.items():
            assert len(row) == 6, name

    def test_make_controller_rejects_unknown(self):
        system = build_emn_system()
        with pytest.raises(KeyError):
            make_controller("ghost", system)


class TestBoundsComparison:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return bounds_comparison()

    def test_ra_bound_finite_in_both_variants(self, outcomes):
        ra = [o for o in outcomes if o.bound == "RA-Bound"]
        assert len(ra) == 2
        assert all(o.converged for o in ra)

    def test_bi_pomdp_diverges_in_both_variants(self, outcomes):
        bi = [o for o in outcomes if o.bound == "BI-POMDP"]
        assert len(bi) == 2
        assert not any(o.converged for o in bi)

    def test_blind_policy_split(self, outcomes):
        blind = {o.model: o.converged for o in outcomes if o.bound == "blind policy"}
        assert blind == {
            "with notification": False,
            "without notification": True,
        }

    def test_formatting(self, outcomes):
        text = format_bounds_comparison(outcomes)
        assert "DIVERGES" in text
        assert "RA-Bound" in text


class TestBoundComputationCost:
    def test_profile_shapes(self):
        profile = bound_computation_cost(updates=5)
        assert profile.ra_solve_seconds > 0
        assert len(profile.refine_seconds_by_set_size) == 5
        sizes = [size for size, _ in profile.refine_seconds_by_set_size]
        assert sizes == sorted(sizes)  # |B| never shrinks during refinement
