"""Ablation benchmarks (experiment E7 in DESIGN.md).

Sweeps the paper motivates but does not tabulate: the operator response
time ``t_op`` (Section 3.1 predicts more aggressive recovery and rarer
early termination as it grows), the bounded controller's lookahead depth
(quality vs decision latency), and path-monitor coverage (the
coverage/accuracy trade-off from the introduction).
"""

import pytest

from benchmarks.conftest import bench_injections
from repro.controllers.bootstrap import bootstrap_bounds
from repro.controllers.bounded import BoundedController
from repro.sim.campaign import run_campaign
from repro.systems.emn import MONITOR_DURATION, build_emn_system
from repro.systems.faults import FaultKind

SEED = 7


def _bounded_campaign(system, injections, depth=1):
    bound_set, _ = bootstrap_bounds(
        system.model, iterations=10, depth=2, variant="average", seed=0
    )
    controller = BoundedController(
        system.model, depth=depth, bound_set=bound_set,
        refine_min_improvement=1.0,
    )
    return run_campaign(
        controller,
        fault_states=system.fault_states(FaultKind.ZOMBIE),
        injections=injections,
        seed=SEED,
        monitor_tail=MONITOR_DURATION,
    )


@pytest.mark.parametrize("t_op", [600.0, 21_600.0, 86_400.0])
def test_operator_response_time_sweep(benchmark, t_op):
    """E7a: t_op controls the terminate-early economics (Section 3.1)."""
    system = build_emn_system(operator_response_time=t_op)
    injections = bench_injections(50)
    result = benchmark.pedantic(
        lambda: _bounded_campaign(system, injections), rounds=1, iterations=1
    )
    summary = result.summary
    benchmark.extra_info.update(
        {
            "t_op": t_op,
            "cost": round(summary.cost, 2),
            "monitor_calls": round(summary.monitor_calls, 2),
            "early_terminations": summary.early_terminations,
        }
    )
    if t_op >= 21_600.0:
        # With a 6h+ response time the controller must never walk away
        # from a live fault (the paper's Table 1 observation).
        assert summary.early_terminations == 0


@pytest.mark.parametrize("depth", [1, 2])
def test_lookahead_depth_sweep(benchmark, emn_system, depth):
    """E7b: decision quality vs latency across lookahead depths."""
    injections = bench_injections(30 if depth == 1 else 10)
    result = benchmark.pedantic(
        lambda: _bounded_campaign(emn_system, injections, depth=depth),
        rounds=1,
        iterations=1,
    )
    summary = result.summary
    assert summary.unrecovered == 0
    benchmark.extra_info.update(
        {
            "depth": depth,
            "cost": round(summary.cost, 2),
            "algorithm_time_ms": round(summary.algorithm_time_ms, 2),
        }
    )


@pytest.mark.parametrize("depth", [1, 2])
def test_branch_and_bound_pruning(benchmark, emn_system, depth):
    """E7d: upper-bound pruning (the paper's future work) vs plain lookahead.

    Records the fraction of action expansions the sawtooth upper bound
    proves unnecessary; at depth 2 the pruning typically removes well over
    half of them.
    """
    from repro.controllers.branch_and_bound import BranchAndBoundController

    injections = bench_injections(20 if depth == 1 else 8)

    def run():
        controller = BranchAndBoundController(
            emn_system.model, depth=depth, refine_min_improvement=1.0
        )
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
            injections=injections,
            seed=SEED,
            monitor_tail=MONITOR_DURATION,
        )
        return controller, result

    controller, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.summary.unrecovered == 0
    total = controller.expanded_actions + controller.pruned_actions
    benchmark.extra_info.update(
        {
            "depth": depth,
            "pruned_fraction": round(controller.pruned_actions / total, 3),
            "cost": round(result.summary.cost, 2),
        }
    )


@pytest.mark.parametrize("coverage", [0.5, 1.0])
def test_monitor_coverage_sweep(benchmark, coverage):
    """E7c: worse path-monitor coverage slows diagnosis and raises cost."""
    system = build_emn_system(path_monitor_coverage=coverage)
    injections = bench_injections(50)
    result = benchmark.pedantic(
        lambda: _bounded_campaign(system, injections), rounds=1, iterations=1
    )
    summary = result.summary
    assert summary.unrecovered == 0
    benchmark.extra_info.update(
        {
            "coverage": coverage,
            "cost": round(summary.cost, 2),
            "monitor_calls": round(summary.monitor_calls, 2),
        }
    )
