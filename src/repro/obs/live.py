"""Live snapshot and exposition layer over a running telemetry registry.

Everything in :mod:`repro.obs.telemetry` up to now was *post-hoc*: record a
campaign, read the JSONL afterwards.  This module is the **obs v3 runtime
metrics plane** — the pieces an operator polls while the process serves:

* :func:`snapshot` — a lock-safe, JSON-ready capture of every counter,
  gauge, timer, and latency histogram on a live registry, taken from any
  thread while the hot paths keep writing (the lock-free writers can
  resize a dict mid-copy; the copy retries rather than locking the hot
  path);
* :func:`render_prometheus` — the snapshot as Prometheus text exposition
  (``# TYPE`` comments, cumulative ``_bucket{le=...}`` histogram series),
  rendered strictly in sorted metric-name order so two snapshots of the
  same state produce byte-identical text;
* :class:`SnapshotRing` — a bounded ring of timestamped snapshots for
  rate computation (decisions/second over the last poll window) without
  keeping unbounded history;
* :func:`format_watch` — the plain-stdout live view behind
  ``python -m repro.obs watch SOCKET``.

The daemon (:mod:`repro.serve.daemon`) flushes :func:`snapshot_event`
lines to JSONL on an interval — the ``metrics_snapshot`` event kind of
``repro-obs/v3`` — so the live plane leaves the same kind of replayable
artifact the post-hoc plane always has.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any

from repro.obs.telemetry import LATENCY_BUCKET_EDGES, Telemetry

__all__ = [
    "SnapshotRing",
    "format_watch",
    "render_prometheus",
    "snapshot",
    "snapshot_event",
]

#: Attempts a snapshot copy makes before falling back to a locked pass.
_COPY_RETRIES = 5


def _copy_live_dict(source: dict, lock) -> dict:
    """Copy a dict that lock-free writers may be resizing concurrently.

    ``dict(d)`` raises ``RuntimeError`` when a writer inserts a new key
    mid-iteration; retrying is almost always enough (insertions are rare —
    metric name sets stabilise after warm-up).  The last resort takes the
    registry lock, which only ever contends with other *readers* and the
    event/span paths, never the counter hot path.
    """
    for _ in range(_COPY_RETRIES):
        try:
            return dict(source)
        except RuntimeError:
            continue
    with lock:
        return dict(source)


def snapshot(telemetry: Telemetry) -> dict[str, Any]:
    """One JSON-ready capture of the registry's live state.

    Safe to call from any thread at any time; the instrumented hot paths
    are never blocked by it.  Histograms are rendered through
    :meth:`~repro.obs.telemetry.LatencyHistogram.summary`, so the
    quantiles in the snapshot are bucket-derived and two snapshots of
    identical bucket counts always agree.
    """
    lock = telemetry._lock
    counters = _copy_live_dict(telemetry.counters, lock)
    process_counters = _copy_live_dict(telemetry.process_counters, lock)
    gauges = _copy_live_dict(telemetry.gauges, lock)
    timers = _copy_live_dict(telemetry.timers, lock)
    histograms = _copy_live_dict(telemetry.histograms, lock)
    return {
        "counters": {name: int(counters[name]) for name in sorted(counters)},
        "process_counters": {
            name: int(process_counters[name]) for name in sorted(process_counters)
        },
        "gauges": {name: float(gauges[name]) for name in sorted(gauges)},
        "timers": {
            name: {
                "seconds": round(float(timers[name][0]), 9),
                "calls": int(timers[name][1]),
            }
            for name in sorted(timers)
        },
        "histograms": {
            name: histograms[name].summary() for name in sorted(histograms)
        },
    }


def snapshot_event(telemetry: Telemetry, seq: int, t: float) -> dict[str, Any]:
    """A :func:`snapshot` framed as one ``metrics_snapshot`` JSONL event.

    ``t`` is the caller's elapsed-seconds stamp (wall-clock, outside the
    determinism contract, like every other ``t`` field in the schema).
    """
    record: dict[str, Any] = {"event": "metrics_snapshot", "seq": seq}
    record.update(snapshot(telemetry))
    record["t"] = round(t, 3)
    return record


# -- Prometheus text exposition -----------------------------------------------


def _metric_name(name: str) -> str:
    """``controller.decisions`` -> ``controller_decisions`` (charset-safe)."""
    return "".join(
        char if char.isalnum() or char == "_" else "_" for char in name
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snap: dict[str, Any], prefix: str = "repro") -> str:
    """Render one :func:`snapshot` as Prometheus text exposition.

    Counters become ``<prefix>_<name>_total``, process counters the same
    (their names never collide with deterministic counters), gauges become
    plain gauges, timers become ``_seconds_total``/``_calls_total`` pairs,
    and histograms become native Prometheus histograms with *cumulative*
    ``_bucket{le="..."}`` series over :data:`LATENCY_BUCKET_EDGES` plus
    ``_sum``/``_count``.  Every section iterates its metric names in
    sorted order — the R9xx determinism contract for emitted sequences —
    so the rendering of a given snapshot is byte-stable.
    """
    lines: list[str] = []

    for section in ("counters", "process_counters"):
        for name in sorted(snap.get(section, {})):
            metric = f"{prefix}_{_metric_name(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(snap[section][name])}")

    for name in sorted(snap.get("gauges", {})):
        metric = f"{prefix}_{_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snap['gauges'][name])}")

    for name in sorted(snap.get("timers", {})):
        stat = snap["timers"][name]
        metric = f"{prefix}_{_metric_name(name)}"
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total {_format_value(stat['seconds'])}")
        lines.append(f"# TYPE {metric}_calls_total counter")
        lines.append(f"{metric}_calls_total {_format_value(stat['calls'])}")

    for name in sorted(snap.get("histograms", {})):
        entry = snap["histograms"][name]
        metric = f"{prefix}_{_metric_name(name)}_latency_seconds"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        counts = entry["counts"]
        for index, edge in enumerate(LATENCY_BUCKET_EDGES):
            cumulative += counts[index]
            lines.append(
                f'{metric}_bucket{{le="{format(edge, ".6g")}"}} {cumulative}'
            )
        cumulative += counts[len(LATENCY_BUCKET_EDGES)]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(entry['sum_seconds'])}")
        lines.append(f"{metric}_count {cumulative}")

    return "\n".join(lines) + "\n"


# -- snapshot ring / rates ----------------------------------------------------


class SnapshotRing:
    """A bounded ring of ``(t, snapshot)`` pairs for rate computation.

    The daemon's flusher and the watch CLI both push every snapshot they
    take; :meth:`rate` then answers "how fast is this counter moving?"
    over the retained window without either side keeping history.
    Timestamps come from the caller (one clock per polling loop), so the
    ring itself never reads the wall clock.
    """

    def __init__(self, capacity: int = 120):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self._ring: deque[tuple[float, dict[str, Any]]] = deque(maxlen=capacity)

    def push(self, t: float, snap: dict[str, Any]) -> None:
        """Retain one timestamped snapshot (oldest drops at capacity)."""
        self._ring.append((float(t), snap))

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def window_seconds(self) -> float:
        """Seconds between the oldest and newest retained snapshots."""
        if len(self._ring) < 2:
            return 0.0
        return self._ring[-1][0] - self._ring[0][0]

    def rate(self, name: str, section: str = "counters") -> float | None:
        """Per-second increase of ``section[name]`` across the window.

        ``None`` until two snapshots are retained or when time has not
        advanced between them.
        """
        if len(self._ring) < 2:
            return None
        (t_old, old), (t_new, new) = self._ring[0], self._ring[-1]
        dt = t_new - t_old
        if dt <= 0:
            return None
        delta = new.get(section, {}).get(name, 0) - old.get(section, {}).get(
            name, 0
        )
        return delta / dt


# -- terminal live view -------------------------------------------------------


def _quantile_cell(entry: dict[str, Any], key: str) -> str:
    value = entry.get(key)
    if value is None:
        return f">{LATENCY_BUCKET_EDGES[-1]:.0f}s"
    if value >= 1000.0:
        return f"{value / 1000.0:.2f}s"
    return f"{value:.2f}ms"


def _histogram_line(name: str, entry: dict[str, Any]) -> str:
    return (
        f"  {name:<28s} n={entry['count']:<8d} "
        f"p50={_quantile_cell(entry, 'p50_ms'):<9s} "
        f"p95={_quantile_cell(entry, 'p95_ms'):<9s} "
        f"p99={_quantile_cell(entry, 'p99_ms'):<9s} "
        f"max={_quantile_cell(entry, 'max_ms')}"
    )


def format_watch(
    metrics: dict[str, Any],
    stats: dict[str, Any] | None = None,
    ring: SnapshotRing | None = None,
) -> str:
    """Render one poll of a live daemon as the plain-text watch screen.

    ``metrics`` is a :func:`snapshot` (the daemon's ``metrics`` op in JSON
    form), ``stats`` the ``stats`` op payload, ``ring`` the poller's
    :class:`SnapshotRing` for rates.  Pure function of its inputs — the
    watch loop owns all clocks — and renders every enumerated section in
    sorted order.
    """
    counters = metrics.get("counters", {})
    process = metrics.get("process_counters", {})
    histograms = metrics.get("histograms", {})
    lines: list[str] = []

    header = "repro live metrics"
    if stats is not None:
        state = "draining" if stats.get("draining") else "serving"
        header = (
            f"repro.serve [{state}] — {stats.get('live_sessions', 0)} live "
            f"session(s), {stats.get('decisions', 0)} decisions, "
            f"{stats.get('bound_vectors', 0)} bound vectors"
        )
    lines.append(header)

    if ring is not None:
        rate = ring.rate("serve.decisions", section="process_counters")
        if rate is not None:
            lines.append(
                f"  decisions/s (last {ring.window_seconds:.0f}s window): "
                f"{rate:.2f}"
            )

    if histograms:
        lines.append("latency (bucket-derived quantiles):")
        for name in sorted(histograms):
            lines.append(_histogram_line(name, histograms[name]))

    attempts = counters.get("bounds.refinements", 0)
    accepted = counters.get("bounds.refinements_accepted", 0)
    if attempts:
        set_size = metrics.get("gauges", {}).get("bounds.set_size")
        suffix = "" if set_size is None else f", |B| {int(set_size)}"
        lines.append(
            f"refinement: {attempts} attempts, {accepted} accepted "
            f"({accepted / attempts:.1%}){suffix}"
        )

    hits = process.get("cache.hits", 0)
    lookups = hits + process.get("cache.builds", 0) + process.get(
        "cache.declines", 0
    )
    if lookups:
        lines.append(
            f"joint-factor cache: {hits}/{lookups} hits ({hits / lookups:.1%})"
        )

    if stats is not None and stats.get("sessions"):
        lines.append("sessions:")
        sessions = stats["sessions"]
        for session_id in sorted(sessions):
            entry = sessions[session_id]
            state = "done" if entry.get("done") else "open"
            lines.append(
                f"  {session_id:<20s} steps={entry.get('steps', 0):<5d} "
                f"{state}"
            )

    return "\n".join(lines) + "\n"
