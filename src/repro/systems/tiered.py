"""Parametric N-tier replicated deployments.

A second target system beyond the paper's EMN instance: a request pipeline
of ``T`` tiers with ``R_t`` replicas each (web → app → db, say), where every
request is load-balanced onto one replica per tier and fails if any chosen
replica is faulty.  Monitoring is tier-granular: one ping monitor per tier
(alarms when any replica in the tier is ping-dead — crashes only) and one
end-to-end probe (alarms when its randomly-routed request fails — catches
zombies, localises poorly).  The observation space is therefore
``2^(T+1)`` regardless of the replica counts, so the model family scales
in the *state* dimension while staying controller-tractable.

Two entry points:

* :func:`build_tiered_system` — a full :class:`RecoveryModel` for moderate
  sizes, usable with every controller in the library;
* :func:`tiered_ra_chain` — the RA-Bound Markov chain of the same family
  constructed *directly in sparse form*, scaling to hundreds of thousands
  of states.  This backs the scalability experiment for Section 4.3's
  claim that the RA-Bound linear system "can be solved using standard,
  numerically stable linear system solvers for models with up to hundreds
  of thousands of states".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelError
from repro.mdp.linear_solvers import solve_markov_reward
from repro.recovery.builder import RecoveryModelBuilder
from repro.recovery.model import RecoveryModel

#: Default per-replica restart time and monitor-suite execution time (s).
RESTART_DURATION = 30.0
MONITOR_DURATION = 2.0
#: Default operator response time (s).
OPERATOR_RESPONSE_TIME = 3600.0
#: Requests consumed per monitor execution (keeps actions strictly costly).
PROBE_COST = 0.5


@dataclass(frozen=True)
class TieredSystem:
    """A generated tiered recovery model plus its layout metadata."""

    model: RecoveryModel
    tier_names: tuple[str, ...]
    replicas: tuple[int, ...]
    components: tuple[str, ...]
    observe_action: int

    def zombie_states(self) -> np.ndarray:
        """Indices of the zombie fault states."""
        pomdp = self.model.pomdp
        return np.array(
            [
                index
                for index, label in enumerate(pomdp.state_labels)
                if label.startswith("zombie(")
            ],
            dtype=int,
        )

    def crash_states(self) -> np.ndarray:
        """Indices of the crash fault states."""
        pomdp = self.model.pomdp
        return np.array(
            [
                index
                for index, label in enumerate(pomdp.state_labels)
                if label.startswith("crash(")
            ],
            dtype=int,
        )


def _component_names(
    tier_names: tuple[str, ...], replicas: tuple[int, ...]
) -> list[tuple[str, int]]:
    """Flat (component, tier_index) list, e.g. [("web1", 0), ("web2", 0), ...]."""
    names = []
    for tier_index, (tier, count) in enumerate(zip(tier_names, replicas)):
        for replica in range(1, count + 1):
            names.append((f"{tier}{replica}", tier_index))
    return names


def build_tiered_system(
    replicas: tuple[int, ...] = (2, 2, 2),
    tier_names: tuple[str, ...] | None = None,
    restart_duration: float = RESTART_DURATION,
    monitor_duration: float = MONITOR_DURATION,
    operator_response_time: float = OPERATOR_RESPONSE_TIME,
    probe_cost: float = PROBE_COST,
    include_crash_faults: bool = True,
) -> TieredSystem:
    """Generate the recovery model for a tiered deployment.

    Args:
        replicas: replica count per tier (the tier count is its length).
        tier_names: display names; defaults to ``tier0``, ``tier1``, ...
        restart_duration: seconds to restart any one replica.
        monitor_duration: seconds per monitor-suite execution (appended to
            every action, as in the EMN model).
        operator_response_time: ``t_op`` for the termination rewards (the
            system lacks recovery notification: zombies can hide from a
            routed-around probe).
        probe_cost: requests consumed per monitor execution.
        include_crash_faults: drop the crash states for a zombie-only model.
    """
    if not replicas or any(count < 1 for count in replicas):
        raise ModelError(f"replicas must be positive per tier, got {replicas}")
    n_tiers = len(replicas)
    if tier_names is None:
        tier_names = tuple(f"tier{i}" for i in range(n_tiers))
    if len(tier_names) != n_tiers:
        raise ModelError(
            f"{len(tier_names)} tier names for {n_tiers} tiers"
        )
    components = _component_names(tuple(tier_names), tuple(replicas))

    def fault_rate(tier_index: int) -> float:
        """Fraction of requests dropped by one faulty replica in the tier."""
        return 1.0 / replicas[tier_index]

    builder = RecoveryModelBuilder()
    builder.add_state("null", rate_cost=0.0, null=True)
    kinds = ("crash", "zombie") if include_crash_faults else ("zombie",)
    state_tier: dict[str, int] = {}
    for name, tier_index in components:
        for kind in kinds:
            label = f"{kind}({name})"
            builder.add_state(label, rate_cost=fault_rate(tier_index))
            state_tier[label] = tier_index

    all_states = ["null"] + list(state_tier)

    def action_cost(state: str, duration: float) -> float:
        rate = 0.0 if state == "null" else fault_rate(state_tier[state])
        return rate * duration + probe_cost

    for name, tier_index in components:
        repaired = {f"{kind}({name})" for kind in kinds}
        transitions = {label: {"null": 1.0} for label in repaired}
        costs = {}
        for state in all_states:
            if state in repaired:
                # The fault's rate applies while the restart runs, then the
                # system is healthy for the trailing monitor execution.
                costs[state] = (
                    fault_rate(tier_index) * restart_duration + probe_cost
                )
            else:
                costs[state] = action_cost(
                    state, restart_duration + monitor_duration
                )
        builder.add_action(
            f"restart({name})",
            duration=restart_duration + monitor_duration,
            transitions=transitions,
            costs=costs,
        )
    builder.add_action(
        "observe",
        duration=monitor_duration,
        costs={
            state: action_cost(state, monitor_duration) for state in all_states
        },
        passive=True,
    )

    # Observation model: T tier-ping bits + 1 end-to-end probe bit.
    def alarm_probabilities(state: str) -> np.ndarray:
        probabilities = np.zeros(n_tiers + 1)
        if state == "null":
            return probabilities
        tier_index = state_tier[state]
        if state.startswith("crash("):
            probabilities[tier_index] = 1.0  # tier ping sees the crash
            probabilities[n_tiers] = fault_rate(tier_index)
        else:  # zombie: invisible to pings, probabilistically probed
            probabilities[n_tiers] = fault_rate(tier_index)
        return probabilities

    n_bits = n_tiers + 1
    labels = []
    matrix = np.ones((len(all_states), 2**n_bits))
    per_state = np.array([alarm_probabilities(state) for state in all_states])
    for column, outcome in enumerate(itertools.product((0, 1), repeat=n_bits)):
        for bit, value in enumerate(outcome):
            matrix[:, column] *= (
                per_state[:, bit] if value else 1.0 - per_state[:, bit]
            )
    for outcome in itertools.product((0, 1), repeat=n_bits):
        parts = [
            f"{tier_names[i] if i < n_tiers else 'probe'}"
            f"{'!' if bit else '-'}"
            for i, bit in enumerate(outcome)
        ]
        labels.append(",".join(parts))
    builder.set_observation_matrix(tuple(labels), matrix)

    model = builder.build(
        recovery_notification=False,
        operator_response_time=operator_response_time,
    )
    return TieredSystem(
        model=model,
        tier_names=tuple(tier_names),
        replicas=tuple(replicas),
        components=tuple(name for name, _ in components),
        observe_action=model.pomdp.action_index("observe"),
    )


def tiered_ra_chain(
    replicas: tuple[int, ...],
    restart_duration: float = RESTART_DURATION,
    monitor_duration: float = MONITOR_DURATION,
    operator_response_time: float = OPERATOR_RESPONSE_TIME,
    probe_cost: float = PROBE_COST,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """The RA-Bound chain of the tiered family, built directly and sparsely.

    States: null, then (crash, zombie) per component, then ``s_T``; actions
    (never materialised): one restart per component, observe, ``a_T``.  The
    uniform chain has at most three non-zeros per row — stay, jump to null
    (the one fixing restart), jump to ``s_T`` (the terminate draw) — so the
    construction and the solve are both linear in the state count.

    Returns ``(chain, rewards)`` ready for
    :func:`repro.mdp.linear_solvers.solve_markov_reward` (method
    ``"direct"``) or scipy's sparse solvers.
    """
    if not replicas or any(count < 1 for count in replicas):
        raise ModelError(f"replicas must be positive per tier, got {replicas}")
    n_components = int(sum(replicas))
    n_states = 2 + 2 * n_components  # null + 2 faults/component + s_T
    n_actions = n_components + 2  # restarts + observe + a_T
    terminate = n_states - 1

    rates = np.zeros(n_states)
    index = 1
    for count in replicas:
        for _ in range(count):
            rates[index] = 1.0 / count  # crash
            rates[index + 1] = 1.0 / count  # zombie
            index += 2

    rows, cols, data = [], [], []

    def add(row, col, probability):
        rows.append(row)
        cols.append(col)
        data.append(probability)

    # Null: every action stays except a_T.
    add(0, 0, (n_actions - 1) / n_actions)
    add(0, terminate, 1 / n_actions)
    # Fault states: own restart fixes, a_T terminates, the rest stay.
    for state in range(1, terminate):
        add(state, 0, 1 / n_actions)
        add(state, terminate, 1 / n_actions)
        add(state, state, (n_actions - 2) / n_actions)
    add(terminate, terminate, 1.0)

    chain = sp.csr_matrix(
        (data, (rows, cols)), shape=(n_states, n_states)
    )

    # Mean single-step reward per state under the uniform action draw.
    rewards = np.zeros(n_states)
    action_time = restart_duration + monitor_duration
    for state in range(terminate):
        rate = rates[state]
        restart_cost = rate * action_time + probe_cost
        if state > 0:
            # The one fixing restart pays the fault rate only while the
            # restart runs (healthy trailing monitor execution).
            fixing_cost = rate * restart_duration + probe_cost
            restart_total = fixing_cost + (n_components - 1) * restart_cost
        else:
            restart_total = n_components * restart_cost
        observe_cost = rate * monitor_duration + probe_cost
        terminate_cost = rate * operator_response_time
        rewards[state] = -(
            restart_total + observe_cost + terminate_cost
        ) / n_actions
    return chain, rewards


def solve_tiered_ra_bound(
    replicas: tuple[int, ...], method: str = "sparse", **chain_kwargs
) -> np.ndarray:
    """RA-Bound values for a tiered family instance via the sparse backend.

    The chain never exists densely: :func:`tiered_ra_chain` builds it in
    CSR form (~3 non-zeros per row) and
    :func:`repro.mdp.linear_solvers.solve_markov_reward` factorises the
    transient block directly.  The terminate state is the single recurrent
    state; it is pinned to zero by the transient mask.
    """
    chain, rewards = tiered_ra_chain(replicas, **chain_kwargs)
    transient = np.ones(rewards.shape[0], dtype=bool)
    transient[-1] = False
    return solve_markov_reward(
        chain,
        rewards,
        discount=1.0,
        method=method,
        transient_states=transient,
    )
