"""Benchmarks for bound computation (experiments E5 and E6 in DESIGN.md).

E5 — Section 3.1's comparison: the RA-Bound converges on undiscounted
recovery models where BI-POMDP always diverges and the blind-policy bound
diverges exactly when recovery notification is present.  The divergent
cases benchmark the *detection* path (how quickly the library reports the
divergence the paper predicts).

E6 — Section 4.3's cost model: the RA-Bound is one linear solve on |S|
states; each incremental update is O(|S||A||O||B|).
"""

import numpy as np
import pytest

from repro.bounds.bi_pomdp import bi_pomdp_vector
from repro.bounds.blind_policy import blind_policy_vectors
from repro.bounds.incremental import refine_at, sample_reachable_beliefs
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import DivergenceError
from repro.systems.simple import build_simple_system


@pytest.mark.parametrize("method", ["gauss-seidel", "jacobi", "direct"])
def test_ra_bound_solve(benchmark, emn_system, method):
    """E6: off-line RA-Bound computation on the EMN model (Eq. 5)."""
    vector = benchmark(ra_bound_vector, emn_system.model.pomdp, method=method)
    assert np.all(vector <= 1e-9)
    assert np.all(np.isfinite(vector))


def test_bi_pomdp_divergence_detection(benchmark, emn_system):
    """E5: the worst-action bound diverges on the undiscounted EMN model."""

    def run():
        with pytest.raises(DivergenceError):
            bi_pomdp_vector(emn_system.model.pomdp)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_blind_policy_with_notification_diverges(benchmark):
    """E5: every blind policy diverges when null states are absorbing."""
    system = build_simple_system(recovery_notification=True, miss_rate=0.0)

    def run():
        return blind_policy_vectors(system.model.pomdp, skip_divergent=True)

    vectors = benchmark.pedantic(run, rounds=1, iterations=1)
    assert vectors == {}


def test_blind_policy_without_notification_finite(benchmark, emn_system):
    """E5: a_T makes the blind-policy bound trivially finite."""
    vectors = benchmark(
        blind_policy_vectors, emn_system.model.pomdp, skip_divergent=True
    )
    assert emn_system.model.terminate_action in vectors


@pytest.mark.parametrize("set_size", [1, 16, 64])
def test_incremental_update_cost(benchmark, emn_system, set_size):
    """E6: per-update refinement cost as |B| grows (Section 4.3)."""
    pomdp = emn_system.model.pomdp
    bound_set = BoundVectorSet(ra_bound_vector(pomdp))
    beliefs = sample_reachable_beliefs(
        pomdp, emn_system.model.initial_belief(), depth=2,
        max_beliefs=max(set_size * 3, 32),
    )
    index = 0
    while len(bound_set) < set_size and index < beliefs.shape[0]:
        refine_at(pomdp, bound_set, beliefs[index])
        index += 1
    probe = emn_system.model.initial_belief()

    benchmark(refine_at, pomdp, bound_set, probe)
    benchmark.extra_info["set_size"] = len(bound_set)
