"""Modified policy iteration (Puterman, Section 6.5).

The third exact MDP solver: like policy iteration, but the evaluation step
runs only ``evaluation_sweeps`` successive-approximation sweeps instead of
an exact linear solve.  Interpolates between value iteration
(``evaluation_sweeps=0``) and policy iteration (``evaluation_sweeps=inf``),
and is usually the fastest of the three on larger recovery MDPs.  Included
for completeness of the substrate and as a third cross-check in the test
suite; the undiscounted recovery case inherits the same convergence
caveats as value iteration (Conditions 1-2 via the Figure 2 augmentation).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DivergenceError, NotConvergedError
from repro.mdp.linear_solvers import STAGNATION_WINDOW, _check_stagnation
from repro.mdp.model import MDP
from repro.mdp.policy import Policy
from repro.mdp.value_iteration import DIVERGENCE_THRESHOLD, MDPSolution


def modified_policy_iteration(
    mdp: MDP,
    evaluation_sweeps: int = 10,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
) -> MDPSolution:
    """Solve ``mdp`` by modified policy iteration.

    Args:
        mdp: the model to solve.
        evaluation_sweeps: partial-evaluation sweeps per improvement step.
        tol: sup-norm stopping tolerance on the improvement step.
        max_iterations: improvement-step budget.

    Raises:
        DivergenceError: iterates are unbounded below (the model violates
            the Section 3.1 finiteness structure).
        NotConvergedError: budget exhausted.
    """
    if evaluation_sweeps < 0:
        raise ValueError(
            f"evaluation_sweeps must be >= 0, got {evaluation_sweeps}"
        )
    value = np.zeros(mdp.n_states)
    states = np.arange(mdp.n_states)
    residual = np.inf
    checkpoint_residual = np.inf
    checkpoint_norm = 0.0
    for iteration in range(1, max_iterations + 1):
        # Improvement: one Bellman backup, keeping the greedy policy.
        q_values = mdp.rewards + mdp.discount * (mdp.transitions @ value)
        actions = np.argmax(q_values, axis=0)
        improved = q_values[actions, states]
        residual = float(np.max(np.abs(improved - value)))
        value = improved
        if not np.all(np.isfinite(value)) or np.max(np.abs(value)) > DIVERGENCE_THRESHOLD:
            raise DivergenceError(
                "modified policy iteration diverged; see Section 3.1 "
                "conditions"
            )
        if residual < tol:
            return MDPSolution(
                value=value,
                policy=Policy(actions=actions, action_labels=mdp.action_labels),
                iterations=iteration,
                residual=residual,
            )
        if iteration % STAGNATION_WINDOW == 0:
            norm = float(np.max(np.abs(value)))
            _check_stagnation(
                residual,
                checkpoint_residual,
                norm > checkpoint_norm,
                "modified policy iteration",
            )
            checkpoint_residual = residual
            checkpoint_norm = norm
        # Partial evaluation: fixed-policy sweeps (cheap, no solve).
        chain, reward = mdp.policy_chain(actions)
        for _ in range(evaluation_sweeps):
            value = reward + mdp.discount * (chain @ value)
            if np.max(np.abs(value)) > DIVERGENCE_THRESHOLD:
                raise DivergenceError(
                    "partial evaluation diverged under the greedy policy"
                )
    raise NotConvergedError(
        f"modified policy iteration did not reach tol={tol} in "
        f"{max_iterations} iterations",
        iterations=max_iterations,
        residual=residual,
    )
