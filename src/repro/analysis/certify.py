"""Static soundness certificates for persisted bound sets (R3xx).

A :class:`~repro.bounds.vector_set.BoundVectorSet` is only useful as a
*lower* bound: Property 1 of the paper needs every stored hyperplane ``b``
to satisfy ``pi . b <= V*(pi)`` on the whole belief simplex.  The
refinement path guarantees this by construction (the RA-Bound seed by
Eq. 5, each added vector by the Eq. 7 backup), but a *persisted* set
re-loaded from disk carries no such guarantee — the file may be stale
(written against an older model), truncated, or bit-corrupted, and a
silently unsound bound makes the controller's action choices wrong with
no error anywhere.

:func:`certify_bound_set` checks, statically and without running the
solver, a set of *necessary* consistency conditions every sound
refinement-produced set satisfies:

``R301`` — the set must fit the model: matching state dimension and only
finite entries.

``R302`` — every vector must lie below the fully-observable Bellman
backup of the set's upper envelope.  Writing ``u = max_B b`` (pointwise),
each Eq. 7 vector obeys ``b <= max_a [ r_a + beta * T_a u ]`` within
:data:`~repro.bounds.incremental.BACKUP_TIE_EPSILON`: the observation
term of Eq. 7 selects one vector per observation symbol, and replacing
each selection with the envelope ``u`` only increases the right-hand
side (the ``q(o | s', a)`` weights sum to 1).  The RA-Bound seed is the
uniform-policy value, which is below the optimal backup of anything
above it — in particular of ``u >= v_RA``.  Random corruption of any
entry breaks the inequality at that coordinate with overwhelming
probability, which is exactly the staleness/corruption detection this
certificate exists for.

``R303`` — vectors must be non-positive where the model pins the value
to zero: at the terminate state ``s_T`` (``V*(e_sT) = 0``) and, under
recovery notification, on the absorbing null set ``S_phi``.

The conditions are necessary, not sufficient — ``V*`` itself satisfies
all three — so a passing certificate means "consistent with this model",
not "proven below ``V*``".  For the load-path use case (reject stale or
corrupted files) necessity is the right direction: every set the shipped
refinement path produces passes, and mismatched or damaged sets fail.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.view import ModelView
from repro.bounds.incremental import BACKUP_TIE_EPSILON
from repro.linalg.ops import bellman_backup_envelope

#: At most this many offending coordinates are spelled out per vector.
_COORD_CAP = 8


def _compatibility_diagnostics(
    view: ModelView, vectors: np.ndarray
) -> list[Diagnostic]:
    """R301: the set must structurally fit the model."""
    findings = []
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        return [
            Diagnostic(
                code="R301",
                message=(
                    f"bound set must be a non-empty (k, |S|) stack, got "
                    f"shape {vectors.shape}"
                ),
                fix_hint="re-solve and re-save the bound set",
            )
        ]
    if vectors.shape[1] != view.n_states:
        findings.append(
            Diagnostic(
                code="R301",
                message=(
                    f"bound vectors have {vectors.shape[1]} components but "
                    f"the model has {view.n_states} states"
                ),
                fix_hint=(
                    "the set was saved against a different model; re-solve "
                    "against this one"
                ),
            )
        )
    bad = ~np.isfinite(vectors)
    if bad.any():
        rows = np.flatnonzero(bad.any(axis=1))
        for i in rows[:_COORD_CAP]:
            findings.append(
                Diagnostic(
                    code="R301",
                    message=(
                        f"bound vector {i} contains "
                        f"{int(bad[i].sum())} non-finite component(s)"
                    ),
                    location=f"vector[{i}]",
                    fix_hint="the archive is corrupted; re-solve and re-save",
                )
            )
    return findings


def _backup_diagnostics(view: ModelView, vectors: np.ndarray) -> list[Diagnostic]:
    """R302: every vector below the Bellman backup of the upper envelope."""
    envelope_input = vectors.max(axis=0)
    backed = bellman_backup_envelope(
        view.transitions, view.rewards, envelope_input, view.discount
    )
    findings = []
    excess = vectors - backed[np.newaxis, :]
    violating_rows = np.flatnonzero(
        (excess > BACKUP_TIE_EPSILON).any(axis=1)
    )
    for i in violating_rows:
        where = np.flatnonzero(excess[i] > BACKUP_TIE_EPSILON)
        worst = int(where[np.argmax(excess[i][where])])
        findings.append(
            Diagnostic(
                code="R302",
                message=(
                    f"bound vector {i} exceeds the Bellman backup of the "
                    f"set's envelope at {where.size} state(s); worst at "
                    f"{view.state_labels[worst]!r}: "
                    f"{vectors[i, worst]:.9g} > {backed[worst]:.9g} "
                    f"(margin {excess[i, worst]:.3g} > "
                    f"{BACKUP_TIE_EPSILON:g})"
                ),
                location=f"vector[{i}]",
                states=tuple(
                    view.state_labels[int(s)] for s in where[:_COORD_CAP]
                ),
                fix_hint=(
                    "no Eq. 7 refinement produces such a vector; the set is "
                    "stale or corrupted — re-solve against this model"
                ),
            )
        )
    return findings


def _zero_state_diagnostics(view: ModelView, vectors: np.ndarray) -> list[Diagnostic]:
    """R303: non-positive at s_T and (when notified) on S_phi."""
    pinned: list[tuple[int, str]] = []
    if view.terminate_state is not None and 0 <= view.terminate_state < view.n_states:
        pinned.append((view.terminate_state, "terminate state"))
    if view.recovery_notification and view.null_states is not None:
        pinned.extend(
            (int(s), "absorbing null state")
            for s in np.flatnonzero(view.null_states)
        )
    findings = []
    for i, vector in enumerate(vectors):
        offending = [
            (s, why)
            for s, why in pinned
            if vector[s] > BACKUP_TIE_EPSILON
        ]
        if not offending:
            continue
        s, why = offending[0]
        findings.append(
            Diagnostic(
                code="R303",
                message=(
                    f"bound vector {i} is positive at the {why} "
                    f"{view.state_labels[s]!r} ({vector[s]:.9g} > 0) where "
                    "V* = 0"
                    + (
                        f" (and {len(offending) - 1} more pinned state(s))"
                        if len(offending) > 1
                        else ""
                    )
                ),
                location=f"vector[{i}]",
                states=tuple(
                    view.state_labels[s] for s, _ in offending[:_COORD_CAP]
                ),
                fix_hint=(
                    "a lower bound on non-positive values cannot be "
                    "positive; the set is stale or corrupted"
                ),
            )
        )
    return findings


def certify_bound_set(model, bound_set, title: str | None = None) -> AnalysisReport:
    """Certify that ``bound_set`` is consistent with ``model`` as a lower bound.

    Args:
        model: an MDP/POMDP/RecoveryModel or a prepared
            :class:`~repro.analysis.view.ModelView` (both backends work; the
            sparse path never densifies the transition tensor).
        bound_set: a :class:`~repro.bounds.vector_set.BoundVectorSet` or a
            raw ``(k, |S|)`` array of hyperplanes.
        title: report heading; derived from the set size when omitted.

    Returns:
        An :class:`~repro.analysis.diagnostics.AnalysisReport` whose R3xx
        findings are errors (``exit_code == 2``, ``raise_if_errors`` raises
        :class:`~repro.exceptions.AnalysisError`); a passing certificate
        carries a single ``R204`` summary.
    """
    view = model if isinstance(model, ModelView) else ModelView.from_model(model)
    vectors = np.asarray(getattr(bound_set, "vectors", bound_set), dtype=float)
    vectors = np.atleast_2d(vectors)
    findings = _compatibility_diagnostics(view, vectors)
    if not findings:
        findings.extend(_backup_diagnostics(view, vectors))
        findings.extend(_zero_state_diagnostics(view, vectors))
    certified = not findings
    findings.append(
        Diagnostic(
            code="R204",
            message=(
                f"certificate over {vectors.shape[0]} bound vector(s), "
                f"{view.n_states} states: "
                + (
                    "all Bellman-backup and zero-state conditions hold "
                    f"(tolerance {BACKUP_TIE_EPSILON:g})"
                    if certified
                    else "FAILED — see R3xx errors"
                )
            ),
        )
    )
    if title is None:
        title = (
            f"bound-set certificate ({vectors.shape[0]} vector(s), "
            f"{view.n_states} states)"
        )
    return AnalysisReport(findings=tuple(findings), title=title)
