"""The Markov decision process model type.

An MDP is the tuple ``(S, A, p(.|s,a), r(s,a))`` of Section 2.  States and
actions carry human-readable labels because recovery models are built from
named components and named recovery actions, and every report in the
experiment harness prints those names.

Transitions and rewards may be dense ndarrays (the default) or the sparse
shared-structure containers of :mod:`repro.linalg` — a single validated
construction path accepts both, and :attr:`MDP.backend` reports which one
a model uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.linalg.backends import Backend, backend_of
from repro.linalg.containers import SparseTransitions, StructuredRewards
from repro.linalg.ops import mean_transition_matrix, rewards_mean_over_actions
from repro.util.validation import check_stochastic_matrix


def _default_labels(prefix: str, count: int) -> tuple[str, ...]:
    return tuple(f"{prefix}{i}" for i in range(count))


def _check_unique(labels: tuple[str, ...], kind: str) -> None:
    if len(set(labels)) != len(labels):
        shown = labels if len(labels) <= 32 else labels[:32] + ("...",)
        raise ModelError(f"{kind} labels must be unique, got {shown}")


def _validate_model_arrays(transitions, rewards, *, observations=None):
    """Single validated construction path for both backends.

    Returns ``(transitions, observations, rewards, shape)`` where ``shape``
    is ``(n_actions, n_states, n_observations | None)``.  Dense ndarray
    inputs are coerced to float and checked row-by-row exactly as before;
    sparse containers validate their base + override structure instead
    (each effective row checked once, never densified).
    """
    if isinstance(transitions, SparseTransitions):
        transitions.validate("transitions")
        n_actions, n_states, _ = transitions.shape
        n_observations = None
        if observations is not None:
            if observations.shape[:2] != (n_actions, n_states):
                raise ModelError(
                    "observations must cover "
                    f"({n_actions}, {n_states}, ...), got {observations.shape}"
                )
            observations.validate("observations")
            n_observations = observations.shape[2]
        if isinstance(rewards, StructuredRewards):
            rewards.validate("rewards")
        else:
            rewards = np.asarray(rewards, dtype=float)
        if rewards.shape != (n_actions, n_states):
            raise ModelError(
                f"rewards must have shape ({n_actions}, {n_states}), "
                f"got {rewards.shape}"
            )
        return transitions, observations, rewards, (n_actions, n_states, n_observations)

    transitions = np.asarray(transitions, dtype=float)
    if transitions.ndim != 3 or transitions.shape[1] != transitions.shape[2]:
        raise ModelError(
            f"transitions must have shape (|A|, |S|, |S|), got {transitions.shape}"
        )
    n_actions, n_states, _ = transitions.shape
    n_observations = None
    if observations is not None:
        observations = np.asarray(observations, dtype=float)
        if observations.ndim != 3 or observations.shape[:2] != (n_actions, n_states):
            raise ModelError(
                "observations must have shape (|A|, |S|, |O|) = "
                f"({n_actions}, {n_states}, ...), got {observations.shape}"
            )
        n_observations = observations.shape[2]
    if isinstance(rewards, StructuredRewards):
        rewards = rewards.full()
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (n_actions, n_states):
        raise ModelError(
            f"rewards must have shape ({n_actions}, {n_states}), "
            f"got {rewards.shape}"
        )
    for a in range(n_actions):
        check_stochastic_matrix(transitions[a], name=f"transitions[{a}]")
        if observations is not None:
            check_stochastic_matrix(observations[a], name=f"observations[{a}]")
    return transitions, observations, rewards, (n_actions, n_states, n_observations)


@dataclass(frozen=True)
class MDP:
    """A finite MDP with dense or sparse transition and reward storage.

    Attributes:
        transitions: ``(|A|, |S|, |S|)`` ndarray (``transitions[a, s, s']``
            is ``p(s'|s, a)``, every ``transitions[a]`` row-stochastic) or a
            :class:`repro.linalg.SparseTransitions` container.
        rewards: ``(|A|, |S|)`` ndarray (``rewards[a, s]`` is ``r(s, a)``)
            or a :class:`repro.linalg.StructuredRewards` container.
            Recovery models use non-positive rewards (costs) but the MDP
            type itself does not require that.
        state_labels: one label per state.
        action_labels: one label per action.
        discount: the discounting factor ``beta`` in ``[0, 1]``.  Recovery
            models use the undiscounted criterion ``beta = 1`` (Section 2).
    """

    transitions: np.ndarray | SparseTransitions
    rewards: np.ndarray | StructuredRewards
    state_labels: tuple[str, ...] = ()
    action_labels: tuple[str, ...] = ()
    discount: float = 1.0
    _state_index: dict[str, int] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _action_index: dict[str, int] | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self):
        transitions, _, rewards, (n_actions, n_states, _) = _validate_model_arrays(
            self.transitions, self.rewards
        )
        if n_actions == 0 or n_states == 0:
            raise ModelError("an MDP needs at least one state and one action")
        if not 0.0 <= self.discount <= 1.0:
            raise ModelError(f"discount must be in [0, 1], got {self.discount}")

        state_labels = self.state_labels or _default_labels("s", n_states)
        action_labels = self.action_labels or _default_labels("a", n_actions)
        if len(state_labels) != n_states:
            raise ModelError(
                f"{len(state_labels)} state labels for {n_states} states"
            )
        if len(action_labels) != n_actions:
            raise ModelError(
                f"{len(action_labels)} action labels for {n_actions} actions"
            )
        _check_unique(tuple(state_labels), "state")
        _check_unique(tuple(action_labels), "action")

        object.__setattr__(self, "transitions", transitions)
        object.__setattr__(self, "rewards", rewards)
        object.__setattr__(self, "state_labels", tuple(state_labels))
        object.__setattr__(self, "action_labels", tuple(action_labels))
        object.__setattr__(
            self, "_state_index", {s: i for i, s in enumerate(state_labels)}
        )
        object.__setattr__(
            self, "_action_index", {a: i for i, a in enumerate(action_labels)}
        )

    @property
    def n_states(self) -> int:
        """Number of states ``|S|``."""
        return self.transitions.shape[1]

    @property
    def n_actions(self) -> int:
        """Number of actions ``|A|``."""
        return self.transitions.shape[0]

    @property
    def backend(self) -> Backend:
        """The storage backend this model uses (dense or sparse)."""
        return backend_of(self.transitions)

    def state_index(self, label: str) -> int:
        """Index of the state with ``label`` (KeyError if unknown)."""
        assert self._state_index is not None
        return self._state_index[label]

    def action_index(self, label: str) -> int:
        """Index of the action with ``label`` (KeyError if unknown)."""
        assert self._action_index is not None
        return self._action_index[label]

    def uniform_chain(self):
        """The Markov reward chain of the uniformly-random policy.

        This is the chain that defines the RA-Bound (Section 3.1): every
        action is chosen with probability ``1/|A|`` regardless of state.
        Returns ``(P, r)`` where ``P[s, s']`` is the chain's transition
        probability and ``r[s]`` its expected single-step reward; on the
        sparse backend ``P`` is a CSR matrix built without densifying.
        """
        chain = mean_transition_matrix(self.transitions)
        reward = rewards_mean_over_actions(self.rewards)
        return chain, reward

    def policy_chain(self, policy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The Markov reward chain induced by a deterministic ``policy``.

        ``policy[s]`` is the action index chosen in state ``s``.  Returns
        ``(P, r)`` as in :meth:`uniform_chain`.  Dense backend only — the
        fancy-indexed gather has no sparse counterpart yet.
        """
        if self.backend.is_sparse:
            raise ModelError(
                "policy_chain requires the dense backend; densify the model "
                "first (repro.linalg.densify_transitions)"
            )
        policy = np.asarray(policy, dtype=int)
        if policy.shape != (self.n_states,):
            raise ModelError(
                f"policy must have shape ({self.n_states},), got {policy.shape}"
            )
        if np.any(policy < 0) or np.any(policy >= self.n_actions):
            raise ModelError("policy contains out-of-range action indices")
        states = np.arange(self.n_states)
        return self.transitions[policy, states, :], self.rewards[policy, states]

    def with_discount(self, discount: float) -> "MDP":
        """A copy of this MDP with a different discount factor."""
        return MDP(
            transitions=self.transitions,
            rewards=self.rewards,
            state_labels=self.state_labels,
            action_labels=self.action_labels,
            discount=discount,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MDP(|S|={self.n_states}, |A|={self.n_actions}, "
            f"discount={self.discount})"
        )
