"""``python -m repro.serve`` — run the policy daemon.

Loads the model archive once, warm-starts from the persisted bound set
when ``--bounds`` exists (falling back to RA-Bound seeding plus optional
``--bootstrap`` refinement episodes on first launch), then serves
sessions on the unix socket until SIGTERM/SIGINT, checkpointing the
refined bound set on ``--checkpoint-interval`` and once more on the way
down.

Example::

    python -m repro.serve --model runs/emn-model.npz \\
        --socket /tmp/repro.sock --bounds runs/emn-bounds.npz \\
        --checkpoint-interval 60
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.daemon import PolicyDaemon
from repro.serve.service import PolicyService, ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve recovery-policy sessions over a unix socket.",
    )
    parser.add_argument(
        "--model", required=True, help="recovery-model .npz archive to load"
    )
    parser.add_argument(
        "--socket", default="repro-serve.sock", help="unix socket path to bind"
    )
    parser.add_argument(
        "--bounds",
        default=None,
        help="bound-set archive: warm-start source when present, checkpoint "
        "target always (omitting it disables persistence)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="seconds between automatic checkpoints (0 disables the timer; "
        "shutdown still checkpoints)",
    )
    parser.add_argument(
        "--depth", type=int, default=1, help="lookahead depth of the bounded policy"
    )
    parser.add_argument(
        "--bootstrap",
        type=int,
        default=0,
        metavar="N",
        help="cold-start bootstrap episodes before serving (ignored on warm start)",
    )
    parser.add_argument(
        "--seed", type=int, default=2006, help="RNG seed for the bootstrap phase"
    )
    parser.add_argument(
        "--max-vectors",
        type=int,
        default=None,
        help="bound-vector storage limit for cold starts",
    )
    parser.add_argument(
        "--no-refine",
        action="store_true",
        help="freeze the bound set (sessions may still opt in per open)",
    )
    parser.add_argument(
        "--recertify",
        action="store_true",
        help="force the R3xx soundness sweep on warm start even when the "
        "certificate sidecar matches",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long shutdown waits for live sessions to finish",
    )
    parser.add_argument(
        "--metrics-jsonl",
        default=None,
        metavar="PATH",
        help="append periodic live-metrics snapshots (repro-obs/v3 "
        "metrics_snapshot events) to this JSONL file",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="seconds between flushed metrics snapshots (default: 10)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log a slow_decision event for decisions slower than this "
        "many milliseconds (with the span subtree when --trace is on)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record hierarchical trace spans on the service telemetry",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        model_path=args.model,
        socket_path=args.socket,
        bounds_path=args.bounds,
        checkpoint_interval=args.checkpoint_interval,
        depth=args.depth,
        refine_online=not args.no_refine,
        bootstrap_iterations=args.bootstrap,
        bootstrap_seed=args.seed,
        max_vectors=args.max_vectors,
        recertify=args.recertify,
        drain_timeout=args.drain_timeout,
        slow_decision_seconds=(
            None if args.slow_ms is None else args.slow_ms / 1000.0
        ),
        metrics_path=args.metrics_jsonl,
        metrics_interval=args.metrics_interval,
        trace=args.trace,
    )
    service = PolicyService(config)
    start = "warm" if service.started_warm else "cold"
    print(
        f"repro.serve: {start} start in {service.startup_seconds:.3f}s, "
        f"{service.engine.bound_set.vectors.shape[0]} bound vectors, "
        f"listening on {config.socket_path}",
        flush=True,
    )
    stragglers = PolicyDaemon(service).run()
    if stragglers:
        print(
            f"repro.serve: drain timed out with {stragglers} session(s) live",
            file=sys.stderr,
            flush=True,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
