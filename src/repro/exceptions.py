"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause while
still being able to distinguish the failure modes that the paper's theory
cares about (model validity, bound divergence, belief inconsistencies).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ModelError(ReproError):
    """A model definition is structurally invalid.

    Raised when transition matrices are not row-stochastic, observation
    matrices do not normalise, dimensions disagree, or labels are duplicated.
    """


#: The paper defines exactly two recovery-model conditions.
VALID_CONDITIONS = (1, 2)


class ConditionViolation(ModelError):
    """A recovery-model condition from the paper does not hold.

    ``condition`` is 1 for Condition 1 (every state can reach the null-fault
    set ``S_phi``) and 2 for Condition 2 (all single-step rewards are
    non-positive).  Any other value is a programming error and is rejected
    eagerly rather than propagated into reports.
    """

    def __init__(self, condition: int, message: str):
        if condition not in VALID_CONDITIONS:
            raise ValueError(
                f"condition must be one of {VALID_CONDITIONS}, got {condition!r}"
            )
        super().__init__(f"Condition {condition} violated: {message}")
        self.condition = condition

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(condition={self.condition}, "
            f"message={str(self)!r})"
        )


class AnalysisError(ModelError):
    """The static analyzer found error-level diagnostics in strict mode.

    Raised by the ``strict=True`` adapters in :mod:`repro.analysis` and by
    controller preflight; carries the full report so callers can inspect
    every finding rather than just the first.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class DivergenceError(ReproError):
    """An iterative computation diverged (value is unbounded below).

    The paper's Section 3.1 shows this is the *expected* outcome for the
    BI-POMDP bound on undiscounted recovery models and for blind-policy
    bounds on models with recovery notification; this error is how the
    library reports that outcome.
    """


class NotConvergedError(ReproError):
    """An iterative solver hit its iteration budget before its tolerance."""

    def __init__(self, message: str, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class BeliefError(ReproError):
    """A belief-state operation is impossible.

    The prominent case is conditioning on an observation whose probability is
    zero under the current belief (a modelling mismatch between the
    environment and the controller's model).
    """


class ControllerError(ReproError):
    """A recovery controller was used outside its contract.

    Examples: asking a controller for a decision before it has been reset
    onto an episode, or stepping it after it has terminated recovery.
    """


class ServeError(ReproError):
    """A policy-service request cannot be honoured.

    Examples: opening a session while the daemon is draining, addressing an
    unknown session id, or re-using a session id that is still live.
    """
