"""Benchmarks for the parallel campaign engine (:mod:`repro.sim.parallel`).

Serial vs sharded execution of the same seeded EMN campaign.  The wall
clock is the benchmark; the assertions are the determinism contract — the
campaign fingerprint (everything except the wall-clock ``algorithm_time``)
must be identical whatever the worker count.

Speedup is bounded by the machine: on a single-core runner the parallel
rows measure pure engine overhead.  Counts default small; scale with
``REPRO_BENCH_INJECTIONS``.
"""

import pytest

from benchmarks.conftest import bench_injections
from repro.controllers.most_likely import MostLikelyController
from repro.sim.campaign import run_campaign
from repro.sim.metrics import campaign_fingerprint
from repro.systems.emn import MONITOR_DURATION
from repro.systems.faults import FaultKind

SEED = 2006


def _campaign(emn_system, injections, parallel):
    return run_campaign(
        MostLikelyController(emn_system.model),
        fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
        injections=injections,
        seed=SEED,
        monitor_tail=MONITOR_DURATION,
        parallel=parallel,
    )


@pytest.fixture(scope="module")
def serial_fingerprint(emn_system):
    """Fingerprint of the serial run, shared by every parallel row."""
    injections = bench_injections(100)
    result = _campaign(emn_system, injections, parallel=None)
    return injections, campaign_fingerprint(result.episodes)


def test_campaign_serial(benchmark, emn_system, serial_fingerprint):
    """Baseline: the in-process episode loop."""
    injections, _ = serial_fingerprint
    result = benchmark.pedantic(
        lambda: _campaign(emn_system, injections, parallel=None),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["episodes_per_second"] = round(
        injections / benchmark.stats.stats.mean, 2
    )
    assert result.summary.episodes == injections


@pytest.mark.parametrize("workers", [2, 4])
def test_campaign_parallel(benchmark, emn_system, serial_fingerprint, workers):
    """Sharded execution must reproduce the serial fingerprint exactly."""
    injections, expected = serial_fingerprint
    result = benchmark.pedantic(
        lambda: _campaign(emn_system, injections, parallel=workers),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["episodes_per_second"] = round(
        injections / benchmark.stats.stats.mean, 2
    )
    assert campaign_fingerprint(result.episodes) == expected
