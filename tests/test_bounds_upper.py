"""Tests for the upper bounds (trivial, QMDP, FIB)."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.upper import FIBBound, QMDPBound, TrivialUpperBound, fib_vectors
from repro.pomdp.exact import solve_exact
from repro.systems.simple import build_simple_system


@pytest.fixture(scope="module")
def discounted_system():
    return build_simple_system(recovery_notification=False, discount=0.85)


@pytest.fixture(scope="module")
def discounted_solution(discounted_system):
    return solve_exact(discounted_system.model.pomdp, tol=1e-6)


class TestTrivialUpperBound:
    def test_always_zero(self):
        bound = TrivialUpperBound(3)
        assert bound.value(np.array([0.2, 0.3, 0.5])) == 0.0
        assert np.allclose(bound.value_batch(np.eye(3)), 0.0)

    def test_above_exact_value(self, discounted_system, discounted_solution):
        pomdp = discounted_system.model.pomdp
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=16):
            assert 0.0 >= discounted_solution.value(belief) - 1e-9


class TestQMDP:
    def test_upper_bounds_exact_value(self, discounted_system, discounted_solution):
        pomdp = discounted_system.model.pomdp
        bound = QMDPBound(pomdp)
        rng = np.random.default_rng(1)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=64):
            assert (
                bound.value(belief)
                >= discounted_solution.value(belief)
                - discounted_solution.error_bound
                - 1e-7
            )

    def test_above_ra_bound(self, discounted_system):
        pomdp = discounted_system.model.pomdp
        upper = QMDPBound(pomdp)
        lower = ra_bound_vector(pomdp)
        rng = np.random.default_rng(2)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=32):
            assert upper.value(belief) >= float(belief @ lower) - 1e-9

    def test_exact_at_point_beliefs(self, discounted_system):
        """With full certainty QMDP equals the MDP optimum."""
        pomdp = discounted_system.model.pomdp
        bound = QMDPBound(pomdp)
        for state in range(pomdp.n_states):
            belief = np.zeros(pomdp.n_states)
            belief[state] = 1.0
            assert np.isclose(bound.value(belief), bound.mdp_value[state])

    def test_works_on_undiscounted_recovery_model(self, emn_system):
        bound = QMDPBound(emn_system.model.pomdp)
        belief = emn_system.model.initial_belief()
        assert np.isfinite(bound.value(belief))
        assert bound.value(belief) <= 0.0

    def test_batch_matches_scalar(self, discounted_system):
        pomdp = discounted_system.model.pomdp
        bound = QMDPBound(pomdp)
        beliefs = np.random.default_rng(3).dirichlet(
            np.ones(pomdp.n_states), size=8
        )
        assert np.allclose(
            bound.value_batch(beliefs), [bound.value(b) for b in beliefs]
        )


class TestFIB:
    def test_between_exact_and_qmdp(self, discounted_system, discounted_solution):
        """FIB is tighter than QMDP but still an upper bound."""
        pomdp = discounted_system.model.pomdp
        fib = FIBBound(pomdp)
        qmdp = QMDPBound(pomdp)
        rng = np.random.default_rng(4)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=64):
            value = fib.value(belief)
            assert value <= qmdp.value(belief) + 1e-7
            assert (
                value
                >= discounted_solution.value(belief)
                - discounted_solution.error_bound
                - 1e-7
            )

    def test_vectors_shape(self, discounted_system):
        pomdp = discounted_system.model.pomdp
        vectors = fib_vectors(pomdp)
        assert vectors.shape == (pomdp.n_actions, pomdp.n_states)

    def test_converges_on_undiscounted_recovery_model(self, simple_system):
        pomdp = simple_system.model.pomdp
        fib = FIBBound(pomdp)
        belief = simple_system.model.initial_belief()
        assert np.isfinite(fib.value(belief))

    def test_batch_matches_scalar(self, discounted_system):
        pomdp = discounted_system.model.pomdp
        fib = FIBBound(pomdp)
        beliefs = np.random.default_rng(5).dirichlet(
            np.ones(pomdp.n_states), size=8
        )
        assert np.allclose(
            fib.value_batch(beliefs), [fib.value(b) for b in beliefs]
        )
