"""Markdown report generation for paper-vs-measured comparisons.

Renders the outputs of :mod:`repro.experiments.fig5` and
:mod:`repro.experiments.table1` as the markdown sections that EXPERIMENTS.md
is built from, so the recorded results are regenerable with one command::

    python -m repro.experiments table1 ...   # human-readable tables
    repro.experiments.report.table1_markdown(result)  # EXPERIMENTS.md rows
"""

from __future__ import annotations

from repro.experiments.fig5 import Fig5Result, shape_checks
from repro.experiments.table1 import PAPER_TABLE1, Table1Result, ordering_checks


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def table1_markdown(result: Table1Result) -> str:
    """EXPERIMENTS.md section for Table 1 (paper vs measured, per metric)."""
    headers = [
        "Algorithm", "Cost (paper / ours)", "Recovery s (paper / ours)",
        "Residual s (paper / ours)", "Algo ms (paper / ours)",
        "Actions (paper / ours)", "Monitor calls (paper / ours)",
    ]
    rows = []
    for campaign in result.campaigns:
        name = campaign.controller_name
        summary = campaign.summary
        paper = PAPER_TABLE1.get(name)
        if paper is None:
            continue

        def pair(paper_value, measured, digits=2):
            paper_text = (
                "-" if paper_value != paper_value else _fmt(paper_value, digits)
            )
            return f"{paper_text} / {_fmt(measured, digits)}"

        rows.append(
            [
                name,
                pair(paper[0], summary.cost),
                pair(paper[1], summary.recovery_time),
                pair(paper[2], summary.residual_time),
                pair(paper[3], summary.algorithm_time_ms),
                pair(paper[4], summary.actions, 2),
                pair(paper[5], summary.monitor_calls, 2),
            ]
        )
    checks = ordering_checks(result)
    check_lines = "\n".join(
        f"- {'PASS' if ok else 'FAIL'}: {claim}" for claim, ok in checks.items()
    )
    return (
        f"{_md_table(headers, rows)}\n\n"
        f"({result.injections} injections, seed {result.seed}.)\n\n"
        f"Qualitative claims:\n\n{check_lines}"
    )


def fig5_markdown(result: Fig5Result) -> str:
    """EXPERIMENTS.md section for Figures 5(a) and 5(b)."""
    headers = ["Iteration", "Random bound", "Random |B|", "Average bound",
               "Average |B|"]
    rows = [
        [
            "0 (RA-Bound)",
            _fmt(-result.random.initial_bound, 0),
            "1",
            _fmt(-result.average.initial_bound, 0),
            "1",
        ]
    ]
    for i in range(result.iterations):
        rows.append(
            [
                str(i + 1),
                _fmt(result.random.cost_upper_bounds[i], 1),
                str(int(result.random.vector_counts[i])),
                _fmt(result.average.cost_upper_bounds[i], 1),
                str(int(result.average.vector_counts[i])),
            ]
        )
    checks = shape_checks(result)
    check_lines = "\n".join(
        f"- {'PASS' if ok else 'FAIL'}: {claim}" for claim, ok in checks.items()
    )
    return f"{_md_table(headers, rows)}\n\nShape claims:\n\n{check_lines}"
