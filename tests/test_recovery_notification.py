"""Tests for recovery-notification detection (the paper's future work)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.recovery.notification import (
    ambiguous_observations,
    detect_recovery_notification,
)
from repro.systems.simple import build_simple_system
from tests.test_recovery_model import NULL_MASK, raw_pomdp


class TestDetection:
    def test_ambiguous_model_detected_as_unnotified(self):
        # raw_pomdp's fault state emits "clear" with probability 0.3, the
        # same observation null emits surely: no notification.
        assert not detect_recovery_notification(raw_pomdp(), NULL_MASK)

    def test_separating_observations_detected_as_notified(self):
        pomdp = raw_pomdp()
        observations = pomdp.observations.copy()
        observations[:, 0, :] = [1.0, 0.0]  # fault always alarms
        separated = type(pomdp)(
            transitions=pomdp.transitions,
            observations=observations,
            rewards=pomdp.rewards,
        )
        assert detect_recovery_notification(separated, NULL_MASK)

    def test_simple_system_variants(self):
        notified = build_simple_system(recovery_notification=True, miss_rate=0.0)
        # The builder validated this itself; re-run detection on the raw q.
        assert detect_recovery_notification(
            notified.model.pomdp, notified.model.null_states
        )

    def test_emn_lacks_notification(self, emn_system):
        """Section 5: an all-clear might just be a routed-around zombie."""
        # Run detection on the pre-augmentation states only: mask s_T out by
        # checking the full augmented model (s_T emits uniform observations,
        # which also breaks separation — consistent answer either way).
        assert not detect_recovery_notification(
            emn_system.model.pomdp, emn_system.model.null_states
        )

    def test_wrong_mask_rejected(self):
        with pytest.raises(ModelError):
            detect_recovery_notification(raw_pomdp(), np.array([True]))


class TestAmbiguousObservations:
    def test_lists_clear_as_ambiguous(self):
        pairs = ambiguous_observations(raw_pomdp(), NULL_MASK)
        observations = {observation for _, observation in pairs}
        assert 1 in observations  # "clear" is emitted by both fault and null

    def test_empty_for_separating_model(self):
        pomdp = raw_pomdp()
        observations = pomdp.observations.copy()
        observations[:, 0, :] = [1.0, 0.0]
        separated = type(pomdp)(
            transitions=pomdp.transitions,
            observations=observations,
            rewards=pomdp.rewards,
        )
        assert ambiguous_observations(separated, NULL_MASK) == []
