"""A small blocking client for the policy daemon.

Speaks the line-delimited JSON protocol of :mod:`repro.serve.protocol`
over a unix socket.  One request in flight at a time per client — this is
deliberately the simplest thing the tests, the smoke check, and ad-hoc
operation need; concurrency comes from opening multiple clients (the
daemon is threaded).
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.exceptions import ServeError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking line-JSON client; usable as a context manager.

    Args:
        socket_path: the daemon's unix-socket path.
        timeout: per-request socket timeout in seconds (None blocks
            forever — decisions on large models can be slow).
    """

    def __init__(self, socket_path: str, timeout: float | None = 30.0):
        self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._socket.settimeout(timeout)
        self._socket.connect(socket_path)
        self._stream = self._socket.makefile("rwb")

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection (the daemon releases any leaked sessions)."""
        self._stream.close()
        self._socket.close()

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request and return the raw response object."""
        payload = {"op": op, **fields}
        self._stream.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ServeError("connection closed by daemon")
        return json.loads(line)

    def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """Like :meth:`request`, but raises :class:`ServeError` on errors."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise ServeError(
                f"{op} failed "
                f"({response.get('error')}): {response.get('message')}"
            )
        return response

    # -- convenience wrappers -------------------------------------------------

    def ping(self) -> bool:
        """True if the daemon answers."""
        return bool(self.call("ping").get("pong"))

    def open_session(
        self,
        session_id: str | None = None,
        refine: bool | None = None,
        belief: list[float] | None = None,
    ) -> str:
        """Open a session; returns its id."""
        fields: dict[str, Any] = {}
        if session_id is not None:
            fields["session"] = session_id
        if refine is not None:
            fields["refine"] = refine
        if belief is not None:
            fields["belief"] = belief
        return str(self.call("open", **fields)["session"])

    def observe(self, session_id: str, action: int, observation: int) -> None:
        """Fold one monitor observation into a session's belief."""
        self.call("observe", session=session_id, action=action, observation=observation)

    def decide(self, session_id: str) -> dict[str, Any]:
        """One decision: action/terminate/value/done/steps."""
        return self.call("decide", session=session_id)

    def close_session(self, session_id: str) -> None:
        """Release a session."""
        self.call("close", session=session_id)

    def stats(self) -> dict[str, Any]:
        """The daemon's operational snapshot (with a per-session table)."""
        return dict(self.call("stats")["stats"])

    def metrics(self) -> dict[str, Any]:
        """Live telemetry snapshot: counters/gauges/timers/histograms."""
        return dict(self.call("metrics")["metrics"])

    def metrics_text(self) -> str:
        """The live snapshot as Prometheus text exposition."""
        return str(self.call("metrics", format="prometheus")["text"])

    def health(self) -> dict[str, Any]:
        """Liveness payload (true even while draining)."""
        return dict(self.call("health")["health"])

    def ready(self) -> bool:
        """True when the daemon is ready to accept new sessions."""
        return bool(self.call("ready")["ready"])

    def checkpoint(self) -> str | None:
        """Ask for an immediate bound-set checkpoint; returns the path."""
        return self.call("checkpoint").get("path")

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit."""
        self.call("shutdown")
