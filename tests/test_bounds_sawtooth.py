"""Tests for the sawtooth upper bound."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.sawtooth import SawtoothUpperBound
from repro.exceptions import ModelError
from repro.pomdp.exact import solve_exact
from repro.systems.simple import build_simple_system


@pytest.fixture(scope="module")
def discounted():
    system = build_simple_system(recovery_notification=False, discount=0.85)
    return system, solve_exact(system.model.pomdp, tol=1e-6)


class TestInitialisation:
    def test_qmdp_corners_by_default(self, simple_system):
        bound = SawtoothUpperBound(simple_system.model.pomdp)
        assert bound.corner_values.shape == (
            simple_system.model.pomdp.n_states,
        )
        assert len(bound) == 0

    def test_bad_corner_shape_rejected(self, simple_system):
        with pytest.raises(ModelError):
            SawtoothUpperBound(
                simple_system.model.pomdp, corner_values=np.zeros(2)
            )


class TestUpperBoundValidity:
    def test_above_exact_value_before_refinement(self, discounted):
        system, exact = discounted
        bound = SawtoothUpperBound(system.model.pomdp)
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(4), size=64):
            assert bound.value(belief) >= exact.value(belief) - 1e-7

    def test_above_exact_value_after_refinement(self, discounted):
        system, exact = discounted
        bound = SawtoothUpperBound(system.model.pomdp)
        rng = np.random.default_rng(1)
        beliefs = rng.dirichlet(np.ones(4), size=32)
        for belief in beliefs:
            bound.refine_at(belief)
        for belief in beliefs:
            assert (
                bound.value(belief)
                >= exact.value(belief) - exact.error_bound - 1e-7
            )

    def test_above_ra_lower_bound_on_emn(self, emn_system):
        pomdp = emn_system.model.pomdp
        upper = SawtoothUpperBound(pomdp)
        lower = ra_bound_vector(pomdp)
        rng = np.random.default_rng(2)
        beliefs = rng.dirichlet(np.ones(pomdp.n_states), size=16)
        for belief in beliefs[:8]:
            upper.refine_at(belief)
        for belief in beliefs:
            assert upper.value(belief) >= float(belief @ lower) - 1e-7


class TestRefinement:
    def test_refinement_monotone_decrease(self, discounted):
        system, _ = discounted
        bound = SawtoothUpperBound(system.model.pomdp)
        belief = system.model.initial_belief()
        values = []
        for _ in range(10):
            bound.refine_at(belief)
            values.append(bound.value(belief))
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_refinement_tightens_below_corner_interpolation(self, discounted):
        system, _ = discounted
        pomdp = system.model.pomdp
        bound = SawtoothUpperBound(pomdp)
        belief = system.model.initial_belief()
        corner_only = bound.value(belief)
        gain = bound.refine_at(belief)
        assert gain >= 0.0
        assert bound.value(belief) <= corner_only

    def test_max_points_evicts_oldest(self, discounted):
        system, _ = discounted
        pomdp = system.model.pomdp
        bound = SawtoothUpperBound(pomdp, max_points=3)
        rng = np.random.default_rng(3)
        for belief in rng.dirichlet(np.ones(4), size=12):
            bound.refine_at(belief)
        assert len(bound) <= 3

    def test_value_batch_matches_scalar(self, discounted):
        system, _ = discounted
        pomdp = system.model.pomdp
        bound = SawtoothUpperBound(pomdp)
        rng = np.random.default_rng(4)
        beliefs = rng.dirichlet(np.ones(4), size=16)
        for belief in beliefs[:8]:
            bound.refine_at(belief)
        batch = bound.value_batch(beliefs)
        singles = [bound.value(belief) for belief in beliefs]
        assert np.allclose(batch, singles)

    def test_point_beliefs_match_corners(self, discounted):
        system, _ = discounted
        pomdp = system.model.pomdp
        bound = SawtoothUpperBound(pomdp)
        for state in range(pomdp.n_states):
            belief = np.zeros(pomdp.n_states)
            belief[state] = 1.0
            assert np.isclose(
                bound.value(belief), bound.corner_values[state]
            )
