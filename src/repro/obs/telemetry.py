"""Process-local telemetry registry, JSONL event stream, and span tracing.

The observability layer has four kinds of state, mirroring the usual
metrics taxonomy:

* **counters** — monotonically increasing integers ("decisions made",
  "bound vectors added").  Split into two namespaces: :attr:`Telemetry.counters`
  holds *deterministic* counters, guaranteed by the campaign engine to be
  identical for serial and sharded runs of the same seeded campaign (the
  same contract :func:`repro.sim.metrics.campaign_fingerprint` states for
  metrics); :attr:`Telemetry.process_counters` holds process-local facts —
  cache builds, which happen once per worker process — that legitimately
  vary with the worker count, exactly as ``algorithm_time`` does.
* **gauges** — last-written floats ("bound-set size"), merged across
  campaign chunks by maximum (the storage story of Figure 5(b) cares about
  the high-water mark).
* **timers** — accumulated wall-clock spans with call counts, recorded via
  :meth:`Telemetry.span`.  Wall-clock, hence never part of the determinism
  contract.
* **latency histograms** — fixed-bucket distributions of wall-clock
  durations, recorded via :meth:`Telemetry.observe_latency` (and
  automatically by every :meth:`Telemetry.span` site).  The bucket edges
  are the module constant :data:`LATENCY_BUCKET_EDGES` — log-spaced, four
  per decade from 10 µs to 100 s — so histograms from different workers,
  chunks, or processes merge by plain element-wise addition and the
  aggregate never depends on merge order or worker count (the same
  algebra the deterministic counters rely on).  Quantiles (p50/p95/p99)
  and the maximum are *derived from the bucket counts* — the reported
  value is a bucket upper edge, never a raw wall-clock sample — so any
  two registries holding the same counts report the same quantiles.  The
  recorded durations themselves are wall-clock and sit outside the
  determinism contract, like timers.
* **trace spans** — *hierarchical* wall-clock spans with parent ids,
  recorded via :meth:`Telemetry.trace_span` when the registry was created
  with ``trace=True``.  Where timers aggregate ("total seconds in
  ``solver.solve``"), trace spans keep every occurrence with its position
  in the call tree (campaign → episode → decision → tree expansion → leaf
  batch → solver call → cache lookup), ready for export to Chrome
  ``trace_event`` JSON or a collapsed-stack flamegraph
  (:mod:`repro.obs.trace`).  Span storage is a bounded ring buffer
  (:data:`DEFAULT_MAX_SPANS`, override with ``REPRO_MAX_TRACE_SPANS``):
  when full, the oldest span is dropped and the ``trace.events_dropped``
  counter incremented, so tracing can never OOM a long campaign.

Events are dictionaries with an ``event`` kind (see
:mod:`repro.obs.schema`) appended to a JSONL sink when one is attached, or
buffered in memory otherwise (campaign chunks buffer; the coordinating
process owns the file).

Instrumentation is **off by default**.  Hot paths guard with::

    telemetry = active()
    if telemetry is not None:
        telemetry.count("controller.decisions")

which costs one function call and a ``None`` test when disabled — far below
the noise floor of any measured path (see EXPERIMENTS.md for numbers).
:meth:`Telemetry.trace_span` returns a shared no-op context manager when
tracing is off, so span sites cost one extra attribute test beyond the
guard above.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from bisect import bisect_left
from collections import Counter, deque
from collections.abc import Iterator
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.obs.schema import SCHEMA_VERSION

#: Default capacity of the per-registry span ring buffer.  At ~150 bytes a
#: span this bounds trace storage to tens of megabytes; override with the
#: ``REPRO_MAX_TRACE_SPANS`` environment variable or the ``max_spans``
#: constructor argument.
DEFAULT_MAX_SPANS = 200_000

#: Environment variable overriding :data:`DEFAULT_MAX_SPANS`.
MAX_SPANS_ENV = "REPRO_MAX_TRACE_SPANS"

#: Counter incremented when the span ring buffer drops its oldest span.
SPANS_DROPPED_COUNTER = "trace.events_dropped"

#: Latency-histogram bucket *upper* edges in seconds: log-spaced, four per
#: decade, 10 µs .. 100 s (29 edges; a 30th implicit overflow bucket
#: catches anything slower).  Defined as a constant so every registry —
#: serial, per-chunk, per-process — buckets identically and aggregation
#: reduces to element-wise addition of counts, independent of worker
#: count or merge order.
LATENCY_BUCKET_EDGES: tuple[float, ...] = tuple(
    10.0 ** (k / 4.0) for k in range(-20, 9)
)

#: Quantiles the summary/exposition layers derive from bucket counts.
HISTOGRAM_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


class LatencyHistogram:
    """Fixed-bucket latency distribution over :data:`LATENCY_BUCKET_EDGES`.

    ``counts[i]`` counts observations with ``value <= LATENCY_BUCKET_EDGES[i]``
    (exclusive of the previous edge); the final slot counts overflow
    (``value > 100 s``).  ``sum_seconds`` accumulates the raw durations for
    rate/mean reporting — wall-clock, outside the determinism contract,
    exactly like timers.  Everything quantile-like is derived from the
    bucket counts alone (:meth:`quantile`, :meth:`max_seconds`), so two
    histograms with identical counts always report identical statistics.
    """

    __slots__ = ("counts", "sum_seconds")

    def __init__(
        self,
        counts: list[int] | tuple[int, ...] | None = None,
        sum_seconds: float = 0.0,
    ):
        if counts is None:
            self.counts = [0] * (len(LATENCY_BUCKET_EDGES) + 1)
        else:
            if len(counts) != len(LATENCY_BUCKET_EDGES) + 1:
                raise ValueError(
                    f"histogram counts must have {len(LATENCY_BUCKET_EDGES) + 1} "
                    f"slots, got {len(counts)}"
                )
            self.counts = list(counts)
        self.sum_seconds = float(sum_seconds)

    def record(self, seconds: float) -> None:
        """Bucket one duration (a plain list-slot increment, GIL-atomic)."""
        self.counts[bisect_left(LATENCY_BUCKET_EDGES, seconds)] += 1
        self.sum_seconds += seconds

    @property
    def total(self) -> int:
        """Number of recorded observations."""
        return sum(self.counts)

    def merge(self, counts: list[int] | tuple[int, ...], sum_seconds: float) -> None:
        """Fold another histogram's counts in (element-wise addition)."""
        for index, count in enumerate(counts):
            self.counts[index] += count
        self.sum_seconds += sum_seconds

    def quantile(self, q: float) -> float:
        """Upper bucket edge at cumulative fraction ``q`` (seconds).

        Returns ``math.inf`` when the quantile lands in the overflow
        bucket, and ``0.0`` for an empty histogram.  Derived from counts
        only — never from the order or exact values of the observations.
        """
        total = self.total
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                if index < len(LATENCY_BUCKET_EDGES):
                    return LATENCY_BUCKET_EDGES[index]
                return math.inf
        return math.inf  # pragma: no cover - cumulative always reaches total

    def max_seconds(self) -> float:
        """Upper edge of the highest non-empty bucket (0.0 when empty)."""
        for index in range(len(self.counts) - 1, -1, -1):
            if self.counts[index]:
                if index < len(LATENCY_BUCKET_EDGES):
                    return LATENCY_BUCKET_EDGES[index]
                return math.inf
        return 0.0

    def summary(self) -> dict[str, Any]:
        """The histogram as the ``summary``/snapshot payload entry.

        Quantiles are reported in milliseconds; an overflow-bucket
        quantile renders as ``None`` (JSON has no infinity).
        """

        def edge_ms(seconds: float) -> float | None:
            if math.isinf(seconds):
                return None
            return round(seconds * 1000.0, 6)

        return {
            "count": self.total,
            "sum_seconds": round(self.sum_seconds, 9),
            "counts": list(self.counts),
            "p50_ms": edge_ms(self.quantile(0.5)),
            "p95_ms": edge_ms(self.quantile(0.95)),
            "p99_ms": edge_ms(self.quantile(0.99)),
            "max_ms": edge_ms(self.max_seconds()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LatencyHistogram(count={self.total})"


def max_trace_spans(max_spans: int | None = None) -> int:
    """Resolve the span ring-buffer capacity.

    Precedence: the ``max_spans`` argument, then ``REPRO_MAX_TRACE_SPANS``
    in the environment, then :data:`DEFAULT_MAX_SPANS`.
    """
    if max_spans is not None:
        return int(max_spans)
    from_env = os.environ.get(MAX_SPANS_ENV)
    if from_env is not None:
        return int(from_env)
    return DEFAULT_MAX_SPANS


@dataclass(frozen=True)
class SpanRecord:
    """One completed trace span.

    Attributes:
        span_id: registry-unique id, allocated at span *start* so children
            (which finish first) can reference their parent.
        parent_id: the enclosing span's id, or ``None`` for a root span.
        name: span label (``"episode"``, ``"tree.expand"``, ...).
        category: coarse grouping shown as the Chrome-trace ``cat`` lane.
        t_start: start offset in seconds from the recording registry's
            epoch (rebased onto the absorbing registry's virtual timeline
            when a chunk snapshot is merged).
        seconds: span duration (wall-clock; outside the determinism
            contract, like every other wall-clock field).
        args: sorted ``(key, value)`` pairs of structured span arguments.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    t_start: float
    seconds: float
    args: tuple[tuple[str, Any], ...] = ()

    def event_fields(self) -> dict[str, Any]:
        """The span as the payload of a ``span`` JSONL event."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "category": self.category,
            "t_start": round(self.t_start, 9),
            "seconds": round(self.seconds, 9),
            "args": dict(self.args),
        }


class _TraceSpan:
    """Context manager recording one :class:`SpanRecord` on exit."""

    __slots__ = ("_telemetry", "_name", "_category", "_args", "_span_id",
                 "_parent_id", "_started")

    def __init__(
        self,
        telemetry: Telemetry,
        name: str,
        category: str,
        args: dict[str, Any],
    ):
        self._telemetry = telemetry
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> _TraceSpan:
        telemetry = self._telemetry
        with telemetry._lock:
            self._span_id = telemetry._next_span_id
            telemetry._next_span_id += 1
        # The open-span stack is thread-local: concurrent sessions (the
        # policy service runs one thread per connection) each nest their
        # own spans without seeing each other's parents.
        stack = telemetry._span_stack
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        self._started = time.perf_counter()  # codelint: ignore[R903]
        return self

    def __exit__(self, *exc_info: object) -> None:
        ended = time.perf_counter()  # codelint: ignore[R903]
        telemetry = self._telemetry
        telemetry._span_stack.pop()
        telemetry._append_span(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self._name,
                category=self._category,
                t_start=self._started - telemetry._epoch,
                seconds=ended - self._started,
                args=tuple(sorted(self._args.items())),
            )
        )


#: Shared no-op context manager returned by :meth:`Telemetry.trace_span`
#: when tracing is disabled (``nullcontext`` is reentrant and reusable).
_NULL_SPAN = nullcontext()


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A picklable capture of one :class:`Telemetry`'s accumulated state.

    Campaign chunks run episodes against a private buffering telemetry and
    hand a snapshot back to the join step (:mod:`repro.sim.parallel`), which
    absorbs snapshots in chunk order — so the aggregated registry never
    depends on which worker ran which chunk.
    """

    counters: dict[str, int] = field(default_factory=dict)
    process_counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    timers: dict[str, tuple[float, int]] = field(default_factory=dict)
    #: name -> (bucket counts over LATENCY_BUCKET_EDGES + overflow, sum s).
    histograms: dict[str, tuple[tuple[int, ...], float]] = field(
        default_factory=dict
    )
    events: tuple[dict[str, Any], ...] = ()
    spans: tuple[SpanRecord, ...] = ()


class Telemetry:
    """One process-local registry plus an optional JSONL event sink.

    Args:
        sink: an open text stream to write events to as JSONL, one object
            per line.  ``None`` buffers events in memory instead (the mode
            campaign chunks use; :meth:`snapshot` carries the buffer back to
            the coordinating process).
        trace: record hierarchical spans via :meth:`trace_span`.  Off by
            default — when off, :meth:`trace_span` returns a shared no-op
            context manager and records nothing.
        max_spans: span ring-buffer capacity (see :func:`max_trace_spans`).
    """

    def __init__(
        self,
        sink: IO[str] | None = None,
        trace: bool = False,
        max_spans: int | None = None,
    ):
        self.counters: Counter[str] = Counter()
        self.process_counters: Counter[str] = Counter()
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [seconds, calls]
        self.histograms: dict[str, LatencyHistogram] = {}
        self.trace_enabled = bool(trace)
        self.max_spans = max_trace_spans(max_spans)
        self.spans: deque[SpanRecord] = deque()
        self._sink = sink
        self._buffer: list[dict[str, Any]] = []
        self._seq = 0
        self._epoch = time.perf_counter()  # codelint: ignore[R903]
        self._next_span_id = 0
        #: Virtual-timeline cursor for rebased chunk spans (seconds).
        self._trace_cursor = 0.0
        # Span-id allocation, the span ring buffer, and event emission are
        # guarded so concurrent sessions (the policy service's threads) can
        # share one registry; the open-span stack is kept per thread.  The
        # plain counter/gauge/timer paths stay lock-free — they are the
        # campaign hot path, single-threaded by construction, and a lost
        # increment under concurrent writers costs accuracy, not safety.
        self._lock = threading.RLock()
        self._local = threading.local()

    @property
    def _span_stack(self) -> list[int]:
        """This thread's stack of open span ids."""
        stack = getattr(self._local, "span_stack", None)
        if stack is None:
            stack = []
            self._local.span_stack = stack
        return stack

    # -- registry -------------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Increment a deterministic campaign counter."""
        self.counters[name] += delta

    def count_process(self, name: str, delta: int = 1) -> None:
        """Increment a process-local counter (exempt from determinism)."""
        self.process_counters[name] += delta

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of ``name`` (merged by max across chunks)."""
        self.gauges[name] = float(value)

    def observe_latency(self, name: str, seconds: float) -> None:
        """Bucket one duration into the ``name`` latency histogram.

        Buckets are the fixed :data:`LATENCY_BUCKET_EDGES`, so histograms
        of the same name merge additively across chunks and processes.
        Histogram *creation* is guarded by the registry lock (concurrent
        service threads may race the first observation); recording itself
        is a plain list-slot increment, lock-free like the counters.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self.histograms.setdefault(name, LatencyHistogram())
        histogram.record(seconds)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the enclosed block.

        Every span site doubles as a latency-histogram site: the same
        duration that feeds the ``name`` timer is bucketed into the
        ``name`` histogram, so any timed hot path gets its distribution
        (p50/p95/p99) for free.
        """
        started = time.perf_counter()  # codelint: ignore[R903]
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started  # codelint: ignore[R903]
            stat = self.timers.setdefault(name, [0.0, 0])
            stat[0] += elapsed
            stat[1] += 1
            self.observe_latency(name, elapsed)

    def elapsed(self) -> float:
        """Seconds since this registry was created (its trace epoch)."""
        return time.perf_counter() - self._epoch  # codelint: ignore[R903]

    # -- trace spans ----------------------------------------------------------

    def trace_span(self, name: str, category: str = "repro", **args: Any):
        """A context manager recording one hierarchical span.

        The span's parent is whatever span is currently open on this
        registry, so nesting ``with`` blocks produces the call tree.  With
        tracing disabled this returns a shared no-op context manager — one
        attribute test per call site.
        """
        if not self.trace_enabled:
            return _NULL_SPAN
        return _TraceSpan(self, name, category, args)

    def _append_span(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.spans.popleft()
                self.counters[SPANS_DROPPED_COUNTER] += 1
            self.spans.append(record)

    @property
    def events_dropped(self) -> int:
        """Spans dropped by the ring buffer since creation."""
        return self.counters[SPANS_DROPPED_COUNTER]

    # -- events ---------------------------------------------------------------

    def event(self, kind: str, /, **fields: Any) -> None:
        """Record one structured event (written to the sink or buffered)."""
        with self._lock:
            record: dict[str, Any] = {"event": kind, "seq": self._seq}
            record.update(fields)
            self._seq += 1
            if self._sink is not None:
                self._sink.write(json.dumps(record) + "\n")
            else:
                self._buffer.append(record)

    # -- chunk merge protocol -------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Capture the registry plus any buffered events (picklable)."""
        return TelemetrySnapshot(
            counters=dict(self.counters),
            process_counters=dict(self.process_counters),
            gauges=dict(self.gauges),
            timers={name: (stat[0], stat[1]) for name, stat in self.timers.items()},
            histograms={
                name: (tuple(histogram.counts), histogram.sum_seconds)
                for name, histogram in self.histograms.items()
            },
            events=tuple(self._buffer),
            spans=tuple(self.spans),
        )

    def absorb(
        self, snapshot: TelemetrySnapshot, chunk: int | None = None
    ) -> None:
        """Fold a chunk snapshot into this registry.

        Counters add, gauges keep the maximum, timers accumulate, and the
        snapshot's buffered events are re-emitted here (tagged with the
        ``chunk`` index when given) so they reach this telemetry's sink in
        the order the caller absorbs chunks — which the campaign engine
        guarantees is chunk order, independent of the worker count.

        Trace spans are merged the same way: each chunk's spans keep their
        internal hierarchy, get fresh (offset) span ids, are re-parented
        under whatever span is open here (the campaign span, during a
        campaign), and have their timestamps rebased onto this registry's
        virtual timeline — chunk ``c`` starts where chunk ``c-1`` ended.
        Absorbing in chunk order therefore yields a span stream whose
        *structure* (names, nesting, order, counts) is identical whatever
        the worker count; only the wall-clock durations vary, exactly as
        ``algorithm_time`` does.
        """
        self.counters.update(snapshot.counters)
        self.process_counters.update(snapshot.process_counters)
        for name, value in snapshot.gauges.items():
            self.gauges[name] = max(self.gauges.get(name, value), value)
        for name, (seconds, calls) in snapshot.timers.items():
            stat = self.timers.setdefault(name, [0.0, 0])
            stat[0] += seconds
            stat[1] += calls
        # Histograms merge by element-wise bucket addition — commutative
        # and associative, so the aggregate is identical whatever the
        # chunking (asserted worker-count invariant in tests, the same
        # contract as the counters above).
        for name, (counts, sum_seconds) in snapshot.histograms.items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms.setdefault(name, LatencyHistogram())
            histogram.merge(counts, sum_seconds)
        for record in snapshot.events:
            fields = {
                key: value
                for key, value in record.items()
                if key not in ("event", "seq")
            }
            if chunk is not None:
                fields["chunk"] = chunk
            self.event(record["event"], **fields)
        if snapshot.spans:
            self._absorb_spans(snapshot.spans, chunk)

    def _absorb_spans(
        self, spans: tuple[SpanRecord, ...], chunk: int | None
    ) -> None:
        with self._lock:
            self._absorb_spans_locked(spans, chunk)

    def _absorb_spans_locked(
        self, spans: tuple[SpanRecord, ...], chunk: int | None
    ) -> None:
        id_offset = self._next_span_id
        stack = self._span_stack
        reparent = stack[-1] if stack else None
        t0 = min(record.t_start for record in spans)
        extent = max(record.t_start + record.seconds for record in spans) - t0
        base = self._trace_cursor
        max_id = 0
        chunk_tag = () if chunk is None else (("chunk", chunk),)
        for record in spans:
            max_id = max(max_id, record.span_id)
            self._append_span(
                SpanRecord(
                    span_id=record.span_id + id_offset,
                    parent_id=(
                        reparent
                        if record.parent_id is None
                        else record.parent_id + id_offset
                    ),
                    name=record.name,
                    category=record.category,
                    t_start=record.t_start - t0 + base,
                    seconds=record.seconds,
                    args=record.args + chunk_tag,
                )
            )
        self._next_span_id = id_offset + max_id + 1
        self._trace_cursor = base + extent

    def summary_fields(self) -> dict[str, Any]:
        """The aggregate registry as the ``summary`` event's payload."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "process_counters": dict(sorted(self.process_counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: {"seconds": round(stat[0], 6), "calls": stat[1]}
                for name, stat in sorted(self.timers.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"events_buffered={len(self._buffer)}, "
            f"spans={len(self.spans)}, "
            f"sink={'attached' if self._sink is not None else 'buffer'})"
        )


# -- process-local activation -------------------------------------------------

_ACTIVE: Telemetry | None = None


def active() -> Telemetry | None:
    """The currently activated telemetry, or ``None`` when disabled.

    This is the hot-path accessor: instrumented code calls it at every
    instrumentation point and skips all work when it returns ``None``.
    """
    return _ACTIVE


def enabled() -> bool:
    """True when a telemetry registry is currently activated."""
    return _ACTIVE is not None


@contextmanager
def activated(telemetry: Telemetry | None) -> Iterator[Telemetry | None]:
    """Temporarily swap the process-active telemetry (``None`` disables).

    Campaign chunks use this to capture episode instrumentation into a
    private buffering registry — and, just as importantly, to *shield* the
    caller's registry from being written twice when chunks run in-process
    (the chunk's snapshot is absorbed at the join step instead).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


@contextmanager
def session(
    path: str | Path | None = None,
    trace: bool = False,
    max_spans: int | None = None,
) -> Iterator[Telemetry]:
    """Activate telemetry for a ``with`` block, optionally writing JSONL.

    Opens ``path`` (when given) as the event sink, emits ``session_start``,
    runs the block with the registry activated, and on exit emits the
    aggregate ``summary`` event followed by ``session_end`` before closing
    the file.  Without a path, events are buffered in memory and available
    via :meth:`Telemetry.snapshot`.

    With ``trace=True``, hierarchical spans are recorded (ring-buffered at
    ``max_spans``) and serialised as ``span`` events just before the
    summary, so the JSONL stream is self-contained for the exporters of
    :mod:`repro.obs.trace`; the spans also stay available on the yielded
    registry's :attr:`Telemetry.spans` for in-process export.
    """
    sink: IO[str] | None = None
    if path is not None:
        sink = open(path, "w", encoding="utf-8")
    telemetry = Telemetry(sink=sink, trace=trace, max_spans=max_spans)
    telemetry.event("session_start", schema=SCHEMA_VERSION)
    try:
        with activated(telemetry):
            yield telemetry
    finally:
        for record in telemetry.spans:
            telemetry.event("span", **record.event_fields())
        telemetry.event("summary", **telemetry.summary_fields())
        telemetry.event("session_end")
        if sink is not None:
            sink.close()
