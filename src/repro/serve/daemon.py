"""Unix-socket daemon and supervisor loop for the policy service.

:class:`PolicyDaemon` wraps one :class:`~repro.serve.service.PolicyService`
in a threaded ``socketserver`` unix-stream server and the process-level
machinery around it: signal-driven graceful shutdown (SIGTERM/SIGINT →
drain live sessions → final checkpoint → unlink the socket), an interval
checkpoint thread, and a supervisor ``run()`` loop that blocks until
shutdown completes.

Each client connection is handled by its own thread reading line-delimited
JSON requests (:mod:`repro.serve.protocol`).  Sessions a connection opened
and never closed are released when the connection drops, so a crashed
client cannot pin the live-session gauge (or block drain) forever.

While serving, the service's telemetry registry is *activated*
process-wide, so the deep layers (controller decisions, bound refinement,
solver calls, cache lookups) record into the same registry the ``metrics``
op snapshots.  With ``metrics_path``/``metrics_interval`` configured, a
flusher thread appends one ``metrics_snapshot`` JSONL event per interval
(plus a final one at teardown) — a truncated-but-valid ``repro-obs/v3``
stream whatever instant the process dies at.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socketserver
import threading
from typing import IO

from repro.obs.live import snapshot_event
from repro.obs.schema import SCHEMA_VERSION
from repro.obs.telemetry import activated
from repro.serve.protocol import encode_response, handle_line
from repro.serve.service import PolicyService

__all__ = ["PolicyDaemon"]


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request line → response line."""

    def handle(self) -> None:
        daemon: PolicyDaemon = self.server.daemon  # type: ignore[attr-defined]
        opened: set[str] = set()
        try:
            for line in self.rfile:
                if not line.strip():
                    continue
                response = handle_line(daemon.service, line, opened)
                self.wfile.write(encode_response(response))
                self.wfile.flush()
                if response.get("draining") and response.get("ok"):
                    daemon.request_shutdown()
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            for session_id in opened:
                with contextlib.suppress(Exception):
                    daemon.service.close_session(session_id)


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class PolicyDaemon:
    """Serve a :class:`PolicyService` on a unix socket until shutdown.

    Args:
        service: the warmed-up service to expose.
        socket_path: overrides ``service.config.socket_path``.
    """

    def __init__(self, service: PolicyService, socket_path: str | None = None):
        self.service = service
        self.socket_path = (
            service.config.socket_path if socket_path is None else socket_path
        )
        self._shutdown = threading.Event()
        self._server: _Server | None = None
        self._checkpointer: threading.Thread | None = None
        self._metrics_flusher: threading.Thread | None = None
        self._metrics_stream: IO[str] | None = None
        self._metrics_seq = 0

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent; safe from any thread)."""
        self._shutdown.set()

    def _handle_signal(self, signum, frame) -> None:
        self.request_shutdown()

    def _checkpoint_loop(self) -> None:
        interval = self.service.config.checkpoint_interval
        while not self._shutdown.wait(interval):
            with contextlib.suppress(Exception):
                self.service.checkpoint()

    # -- metrics flusher ------------------------------------------------------

    def _write_metrics_line(self, record: dict) -> None:
        stream = self._metrics_stream
        if stream is None:
            return
        stream.write(json.dumps(record) + "\n")
        stream.flush()

    def _flush_metrics_snapshot(self) -> None:
        self._metrics_seq += 1
        self._write_metrics_line(
            snapshot_event(
                self.service.telemetry,
                self._metrics_seq,
                self.service.telemetry.elapsed(),
            )
        )

    def _metrics_loop(self) -> None:
        interval = self.service.config.metrics_interval
        while not self._shutdown.wait(interval):
            with contextlib.suppress(Exception):
                self._flush_metrics_snapshot()

    def _open_metrics_stream(self) -> None:
        config = self.service.config
        if config.metrics_path is None or config.metrics_interval <= 0:
            return
        self._metrics_stream = open(
            config.metrics_path, "w", encoding="utf-8"
        )
        # A flusher stream is a session_start header followed by nothing
        # but metrics_snapshot lines — valid at any truncation point (the
        # v3 framing rule exempts snapshot lines).
        self._write_metrics_line(
            {"event": "session_start", "seq": 0, "schema": SCHEMA_VERSION}
        )
        self._metrics_flusher = threading.Thread(
            target=self._metrics_loop, name="serve-metrics", daemon=True
        )
        self._metrics_flusher.start()

    def _bind(self) -> _Server:
        # A previous unclean exit can leave a stale socket file; binding
        # over it requires the unlink (connect() to it would have failed,
        # so nothing live is displaced).
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        server = _Server(self.socket_path, _ConnectionHandler)
        server.daemon = self  # type: ignore[attr-defined]
        return server

    def run(self, install_signals: bool = True) -> int:
        """Supervisor loop: serve until shutdown, then drain and persist.

        Returns the number of sessions still live when the drain timed
        out — 0 is the graceful exit code the smoke check asserts.
        """
        self._server = self._bind()
        if install_signals:
            signal.signal(signal.SIGTERM, self._handle_signal)
            signal.signal(signal.SIGINT, self._handle_signal)
        server_thread = threading.Thread(
            target=self._server.serve_forever, name="serve-accept", daemon=True
        )
        # Activating the service registry here (not per connection) means
        # every layer below — controller, bounds, solver, cache — records
        # into the registry the metrics op snapshots, for the whole serve
        # lifetime including teardown's final flush.
        with activated(self.service.telemetry):
            server_thread.start()
            if self.service.config.checkpoint_interval > 0:
                self._checkpointer = threading.Thread(
                    target=self._checkpoint_loop,
                    name="serve-checkpoint",
                    daemon=True,
                )
                self._checkpointer.start()
            self._open_metrics_stream()
            try:
                self._shutdown.wait()
            finally:
                stragglers = self._teardown(server_thread)
        return stragglers

    def _teardown(self, server_thread: threading.Thread) -> int:
        """Drain, final-checkpoint, stop accepting, remove the socket."""
        self._shutdown.set()
        # Refuse new sessions first, then give in-flight recoveries their
        # drain budget before the final checkpoint freezes the bound set.
        stragglers = self.service.drain()
        with contextlib.suppress(Exception):
            self.service.checkpoint()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        server_thread.join(timeout=5.0)
        if self._checkpointer is not None:
            self._checkpointer.join(timeout=5.0)
        if self._metrics_flusher is not None:
            self._metrics_flusher.join(timeout=5.0)
        if self._metrics_stream is not None:
            with contextlib.suppress(Exception):
                self._flush_metrics_snapshot()
            self._metrics_stream.close()
            self._metrics_stream = None
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        return stragglers
