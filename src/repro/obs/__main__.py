"""Command-line interface for the observability layer.

Examples::

    python -m repro.obs report run.jsonl        # aggregate + render a run
    python -m repro.obs report run.jsonl --session s3   # one session only
    python -m repro.obs validate run.jsonl      # schema-check a run (CI)
    python -m repro.obs watch /tmp/repro.sock   # live view of a daemon
    python -m repro.obs trace run.jsonl --chrome trace.json \
        --collapsed stacks.txt                  # export trace spans
    python -m repro.obs convergence run.jsonl [--png gap.png]
    python -m repro.obs bench compare OLD NEW --threshold 25
    python -m repro.obs bench store results/ --snapshot BENCH.json

Exit codes follow the ``repro.analysis`` convention throughout: 0 — clean;
1 — diagnostics found (schema problems, benchmark regressions); 2 — usage
or I/O errors (missing file, unknown snapshot schema).  Empty and
header-only telemetry streams are *clean*: a run killed before its summary
leaves a truncated-but-valid file behind, and both ``report`` and
``validate`` treat it as an empty run rather than a corrupt one.
"""

from __future__ import annotations

import argparse
from pathlib import Path


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import aggregate_stream, format_report

    try:
        aggregate = aggregate_stream(args.run, session=args.session)
    except OSError as error:
        print(f"cannot read {args.run}: {error}")
        return 2
    print(format_report(aggregate))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.obs.schema import validate_stream

    try:
        problems = validate_stream(args.run)
    except OSError as error:
        print(f"cannot read {args.run}: {error}")
        return 2
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print(f"{args.run}: schema-valid telemetry stream")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import (
        read_spans,
        to_collapsed_stacks,
        write_chrome_trace,
    )

    try:
        spans = read_spans(args.run)
    except OSError as error:
        print(f"cannot read {args.run}: {error}")
        return 2
    if not spans:
        print(f"{args.run}: no span events (was the run traced with --trace?)")
        return 1
    print(f"{args.run}: {len(spans)} spans")
    if args.chrome is not None:
        write_chrome_trace(args.chrome, spans)
        print(f"wrote Chrome trace_event JSON to {args.chrome}")
    if args.collapsed is not None:
        lines = to_collapsed_stacks(spans)
        args.collapsed.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {len(lines)} collapsed stacks to {args.collapsed}")
    return 0


def _cmd_convergence(args: argparse.Namespace) -> int:
    from repro.obs.convergence import format_report, read_refinements, save_png

    try:
        records = read_refinements(args.run)
    except OSError as error:
        print(f"cannot read {args.run}: {error}")
        return 2
    print(format_report(records), end="")
    if args.png is not None:
        if not records:
            print(f"skipping {args.png}: no refine events to plot")
        elif save_png(records, args.png):
            print(f"wrote convergence plot to {args.png}")
        else:
            print(
                f"skipping {args.png}: matplotlib is not installed "
                "(text report above is complete)"
            )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        BenchFormatError,
        compare,
        format_comparison,
        load_snapshot,
    )

    if args.bench_command == "store":
        return _cmd_bench_store(args)
    try:
        old = load_snapshot(args.old)
        new = load_snapshot(args.new)
    except BenchFormatError as error:
        print(str(error))
        return 2
    result = compare(old, new, threshold_pct=args.threshold)
    print(format_comparison(result), end="")
    return 0 if result.ok else 1


def _cmd_bench_store(args: argparse.Namespace) -> int:
    import json

    from repro.obs.bench import canonical_document, format_store, store_snapshot

    if not args.store.is_dir():
        print(f"{args.store}: not a results-store directory")
        return 2
    print(format_store(args.store), end="")
    if args.snapshot is not None:
        snapshot = store_snapshot(args.store)
        document = canonical_document(
            snapshot.metrics,
            generated_by=f"python -m repro.obs bench store {args.store}",
            source_schemas=["repro-grid/v1"],
        )
        args.snapshot.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote canonical snapshot to {args.snapshot} "
            f"(gate future sweeps with 'bench compare')"
        )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import sys
    import time

    from repro.exceptions import ServeError
    from repro.obs.live import SnapshotRing, format_watch
    from repro.serve.client import ServiceClient

    ring = SnapshotRing()
    count = 1 if args.once else args.count
    try:
        client = ServiceClient(args.socket, timeout=args.interval + 30.0)
    except OSError as error:
        print(f"cannot connect to {args.socket}: {error}")
        return 2
    polls = 0
    clear = sys.stdout.isatty()
    with client:
        while True:
            try:
                metrics = client.metrics()
                stats = client.stats()
            except (OSError, ServeError) as error:
                print(f"lost the daemon at {args.socket}: {error}")
                return 2
            # One clock, read only here at the CLI edge, stamps the ring.
            ring.push(time.monotonic(), metrics)  # codelint: ignore[R903]
            screen = format_watch(metrics, stats, ring)
            if clear:
                # ANSI clear+home between frames; plain stdout otherwise
                # (piped output stays a readable frame-per-poll log).
                sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(screen)
            sys.stdout.flush()
            polls += 1
            if count is not None and polls >= count:
                return 0
            time.sleep(args.interval)


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Inspect telemetry JSONL runs and benchmark snapshots "
            "(report / validate / trace / convergence / bench)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="aggregate and render a run")
    report.add_argument("run", type=Path, help="telemetry JSONL file")
    report.add_argument(
        "--session",
        default=None,
        metavar="ID",
        help="narrow a multi-session daemon stream to one session's "
        "events (unlabelled shared-state events are kept)",
    )

    validate = subparsers.add_parser(
        "validate", help="schema-check a run (exit 1 on problems)"
    )
    validate.add_argument("run", type=Path, help="telemetry JSONL file")

    trace = subparsers.add_parser(
        "trace", help="export recorded spans (Chrome trace / flamegraph)"
    )
    trace.add_argument("run", type=Path, help="telemetry JSONL file")
    trace.add_argument(
        "--chrome",
        type=Path,
        default=None,
        metavar="PATH",
        help="write Chrome trace_event JSON (chrome://tracing, Perfetto)",
    )
    trace.add_argument(
        "--collapsed",
        type=Path,
        default=None,
        metavar="PATH",
        help="write collapsed-stack flamegraph lines (flamegraph.pl input)",
    )

    convergence = subparsers.add_parser(
        "convergence", help="bound-convergence report from refine events"
    )
    convergence.add_argument("run", type=Path, help="telemetry JSONL file")
    convergence.add_argument(
        "--png",
        type=Path,
        default=None,
        metavar="PATH",
        help="additionally write a gap plot (requires matplotlib)",
    )

    bench = subparsers.add_parser(
        "bench", help="benchmark snapshot operations"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_compare = bench_sub.add_parser(
        "compare", help="compare two snapshots for regressions"
    )
    bench_compare.add_argument("old", type=Path, help="baseline snapshot")
    bench_compare.add_argument("new", type=Path, help="candidate snapshot")
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="allowed directional drift in percent (default: 25)",
    )
    bench_store = bench_sub.add_parser(
        "store",
        help="render a campaign-grid results store as a benchmark "
        "trajectory; --snapshot exports it for 'bench compare'",
    )
    bench_store.add_argument(
        "store", type=Path, help="results-store directory (cells.jsonl)"
    )
    bench_store.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="PATH",
        help="additionally write a canonical repro-bench/v1 snapshot "
        "(cell fingerprints as exact metrics)",
    )

    watch = subparsers.add_parser(
        "watch",
        help="live terminal view of a running policy daemon "
        "(plain stdout, no curses)",
    )
    watch.add_argument("socket", help="the daemon's unix-socket path")
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between polls (default: 2)",
    )
    watch.add_argument(
        "--count",
        type=int,
        default=None,
        metavar="N",
        help="stop after N polls (default: poll until interrupted)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (same as --count 1)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "report": _cmd_report,
        "validate": _cmd_validate,
        "trace": _cmd_trace,
        "convergence": _cmd_convergence,
        "bench": _cmd_bench,
        "watch": _cmd_watch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
