"""Point-based value iteration (Perseus-style) for discounted POMDPs.

A modern approximate solver included as an extension: where Monahan
enumeration (:mod:`repro.pomdp.exact`) is exact but explodes
combinatorially, PBVI performs exact Bellman backups only at a sampled set
of reachable beliefs, producing a set of alpha vectors whose PWLC function
lower-bounds the true value and converges to it as the point set densifies.
Useful for discounted recovery models too large for Monahan, and as an
independent cross-check on the incremental lower-bound machinery (a PBVI
backup at a point is exactly Eq. 7's update).

The randomised (Perseus) sweep only backs up points whose value still
improves, which keeps the vector count small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.incremental import incremental_update
from repro.exceptions import ModelError
from repro.pomdp import alpha
from repro.pomdp.belief import GAMMA_EPSILON
from repro.pomdp.model import POMDP
from repro.util.rng import as_generator


@dataclass(frozen=True)
class PBVISolution:
    """Result of a PBVI run.

    Attributes:
        vectors: alpha-vector stack; the PWLC value is a lower bound on the
            optimal value function.
        points: the belief set backups were performed on.
        iterations: sweeps performed.
        residual: max value change at the points in the final sweep.
    """

    vectors: np.ndarray
    points: np.ndarray
    iterations: int
    residual: float

    def value(self, belief: np.ndarray) -> float:
        """The PBVI value at ``belief``."""
        return alpha.evaluate(self.vectors, np.asarray(belief, dtype=float))

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        return alpha.evaluate_batch(
            self.vectors, np.asarray(beliefs, dtype=float)
        )


def sample_belief_points(
    pomdp: POMDP,
    initial: np.ndarray,
    count: int,
    seed=None,
) -> np.ndarray:
    """Sample ``count`` beliefs by random exploration from ``initial``.

    Random actions and sampled observations, restarting at the initial
    belief whenever the walk reaches a deterministic absorbing posterior.
    """
    rng = as_generator(seed)
    initial = np.asarray(initial, dtype=float)
    points = [initial]
    belief = initial
    while len(points) < count:
        action = int(rng.integers(pomdp.n_actions))
        predicted = belief @ pomdp.transitions[action]
        joint = predicted[:, None] * pomdp.observations[action]
        gamma = joint.sum(axis=0)
        observation = int(rng.choice(pomdp.n_observations, p=gamma / gamma.sum()))
        if gamma[observation] <= GAMMA_EPSILON:
            belief = initial
            continue
        belief = joint[:, observation] / gamma[observation]
        points.append(belief)
        if np.max(belief) > 1.0 - 1e-9 and rng.random() < 0.5:
            belief = initial  # restart out of absorbing corners
    return np.array(points)


def solve_pbvi(
    pomdp: POMDP,
    points: np.ndarray | None = None,
    initial: np.ndarray | None = None,
    n_points: int = 64,
    tol: float = 1e-6,
    max_iterations: int = 500,
    seed=None,
) -> PBVISolution:
    """Run Perseus-style PBVI on a *discounted* POMDP.

    Args:
        pomdp: the model (``discount < 1`` required; see module docstring).
        points: explicit belief set; sampled from ``initial`` when None.
        initial: start belief for sampling (uniform when None).
        n_points: sampled-point count when ``points`` is None.
        tol: stop when no point's value improves by more than this.
        max_iterations: sweep budget.
        seed: RNG seed for sampling and sweep order.
    """
    if pomdp.discount >= 1.0:
        raise ModelError(
            "PBVI requires discount < 1 (undiscounted models go through the "
            "recovery-model bounds instead)"
        )
    rng = as_generator(seed)
    if points is None:
        if initial is None:
            initial = np.full(pomdp.n_states, 1.0 / pomdp.n_states)
        points = sample_belief_points(pomdp, initial, n_points, seed=rng)
    points = np.atleast_2d(np.asarray(points, dtype=float))

    # Valid pessimistic initialisation: the all-worst constant vector.
    worst = float(pomdp.rewards.min()) / (1.0 - pomdp.discount)
    vectors = np.full((1, pomdp.n_states), worst)

    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        values = alpha.evaluate_batch(vectors, points)
        pending = list(rng.permutation(points.shape[0]))
        new_vectors: list[np.ndarray] = []
        improvements = np.zeros(points.shape[0])
        while pending:
            index = pending.pop(0)
            stack = (
                np.vstack([vectors] + new_vectors) if new_vectors else vectors
            )
            candidate, _ = incremental_update(pomdp, stack, points[index])
            improvement = float(candidate @ points[index]) - values[index]
            improvements[index] = max(improvements[index], improvement)
            if improvement > 1e-12:
                new_vectors.append(candidate)
                # Perseus: drop every still-pending point the new vector
                # already improves; one backup can serve many points.
                improved = [
                    i
                    for i in pending
                    if float(candidate @ points[i]) > values[i] + 1e-12
                ]
                for i in improved:
                    improvements[i] = max(
                        improvements[i],
                        float(candidate @ points[i]) - values[i],
                    )
                pending = [i for i in pending if i not in improved]
        if new_vectors:
            vectors = alpha.prune_pointwise(np.vstack([vectors] + new_vectors))
        residual = float(improvements.max()) if improvements.size else 0.0
        if residual < tol:
            return PBVISolution(
                vectors=vectors,
                points=points,
                iterations=iteration,
                residual=residual,
            )
    return PBVISolution(
        vectors=vectors,
        points=points,
        iterations=max_iterations,
        residual=residual,
    )
