"""``repro.obs`` — campaign-wide observability (telemetry + event stream).

The observability layer answers the questions the Table 1 aggregates and
single-episode traces cannot: where a campaign spends its time, how the
bound-vector set grows (Figure 5(b)'s storage story), why controllers
terminated, and whether the solver/cache routing behaves as designed.

Three pieces:

* :mod:`repro.obs.telemetry` — the process-local registry (counters,
  gauges, span timers) and JSONL event sink, activated with
  :func:`session` and read from hot paths with :func:`active`;
* :mod:`repro.obs.schema` — the event schema and stream validator;
* :mod:`repro.obs.report` — offline aggregation of a recorded run
  (``python -m repro.obs report run.jsonl``).

Instrumentation is off by default; ``python -m repro.experiments
--telemetry PATH ...`` turns it on for one experiment run.
"""

from repro.obs.schema import SCHEMA_VERSION, validate_event, validate_stream
from repro.obs.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    activated,
    active,
    enabled,
    session,
)

__all__ = [
    "SCHEMA_VERSION",
    "Telemetry",
    "TelemetrySnapshot",
    "activated",
    "active",
    "enabled",
    "session",
    "validate_event",
    "validate_stream",
]
