"""Policy-daemon smoke: SIGTERM mid-session, warm restart, identical decisions.

The CI guard for the serve-layer contract of :mod:`repro.serve`:

1. save a tiered model archive and start ``python -m repro.serve`` on it
   (cold start: RA-Bound seeding, no bound archive yet);
2. drive 8 concurrent refining sessions to completion over the unix
   socket, so the shared bound set accumulates online refinements;
3. open a read-only (``refine: false``) session, drive it halfway,
   deliver ``SIGTERM`` *mid-session*, then finish driving it through the
   draining daemon, recording every decision;
4. fail unless the daemon exits 0 (graceful drain), checkpoints the
   refined set, and unlinks its socket;
5. restart the daemon from the checkpoint (warm start, R3xx-certified
   via the digest sidecar), replay the same observation sequence in a
   fresh read-only session, and fail on any decision drift;
6. fail if the run leaked ``/dev/shm`` entries, socket files, or
   ``*.tmp`` archives anywhere in the work tree.

Usage::

    python -m benchmarks.serve_smoke [--tiers N] [--keep DIR]

Exit codes: 0 — contract holds; 1 — drift, leak, or unclean shutdown;
2 — harness failure (daemon died for another reason).
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.io import TEMP_SUFFIX, save_recovery_model
from repro.serve.client import ServiceClient
from repro.systems.tiered import build_tiered_system

CONCURRENT_SESSIONS = 8
REPLAY_STEPS = 12
SIGTERM_AFTER = 1


def _start_daemon(model: Path, socket_path: Path, bounds: Path) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--model",
            str(model),
            "--socket",
            str(socket_path),
            "--bounds",
            str(bounds),
            "--checkpoint-interval",
            "1",
            "--drain-timeout",
            "30",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 120.0  # codelint: ignore[R903] -- harness timeout
    while not socket_path.exists():  # codelint: ignore[R903]
        if process.poll() is not None:
            print(process.stdout.read() if process.stdout else "")
            print(f"serve_smoke: daemon died on startup (rc={process.returncode})")
            raise SystemExit(2)
        if time.monotonic() > deadline:  # codelint: ignore[R903]
            process.kill()
            raise SystemExit(2)
        time.sleep(0.05)
    return process


def _drive_refining_sessions(socket_path: Path, failures: list[str]) -> None:
    """8 concurrent refining sessions, each one short recovery episode."""
    errors: list[str] = []

    def worker(index: int) -> None:
        try:
            with ServiceClient(str(socket_path), timeout=120.0) as client:
                sid = client.open_session(session_id=f"refine-{index}")
                for _ in range(10):
                    decision = client.decide(sid)
                    if decision["terminate"]:
                        break
                    client.observe(sid, decision["action"], index % 2)
                client.close_session(sid)
        except Exception as error:  # noqa: BLE001 — collected for the report
            errors.append(f"session {index}: {error}")

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(CONCURRENT_SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    failures.extend(errors)


def _replay(
    client: ServiceClient,
    session_id: str,
    on_step=None,
) -> list[tuple[int, bool]]:
    """Drive one read-only session on a fixed observation schedule."""
    sid = client.open_session(session_id=session_id, refine=False)
    decisions: list[tuple[int, bool]] = []
    for step in range(REPLAY_STEPS):
        decision = client.decide(sid)
        decisions.append((decision["action"], decision["terminate"]))
        if on_step is not None:
            on_step(step)
        if decision["terminate"]:
            break
        client.observe(sid, decision["action"], step % 2)
    client.close_session(sid)
    return decisions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiers",
        type=int,
        nargs=2,
        default=(2, 2),
        metavar=("FRONT", "BACK"),
        help="tiered-system shape (default 2 2)",
    )
    parser.add_argument(
        "--keep",
        type=Path,
        default=None,
        metavar="DIR",
        help="run inside DIR and keep it (default: fresh temp dir)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    shm_before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()

    with tempfile.TemporaryDirectory() as scratch:
        workdir = args.keep or Path(scratch)
        workdir.mkdir(parents=True, exist_ok=True)
        model_path = workdir / "model.npz"
        socket_path = workdir / "serve.sock"
        bounds_path = workdir / "bounds.npz"

        system = build_tiered_system(tuple(args.tiers), backend="sparse")
        save_recovery_model(model_path, system.model)

        # -- cold run: refine concurrently, then SIGTERM mid-replay --------
        daemon = _start_daemon(model_path, socket_path, bounds_path)
        try:
            _drive_refining_sessions(socket_path, failures)
            with ServiceClient(str(socket_path), timeout=120.0) as client:
                stats = client.stats()
                if stats["started_warm"]:
                    failures.append("first launch reported a warm start")
                print(
                    f"cold daemon: {stats['decisions']} decisions, "
                    f"{stats['bound_vectors']} bound vectors after "
                    f"{CONCURRENT_SESSIONS} concurrent sessions"
                )

                fired = threading.Event()

                def fire_sigterm(step: int) -> None:
                    # Mid-session: the replay session is open and half
                    # driven when the signal lands; the remaining steps go
                    # through the draining daemon.
                    if step >= SIGTERM_AFTER and not fired.is_set():
                        fired.set()
                        daemon.send_signal(signal.SIGTERM)

                reference = _replay(client, "replay", on_step=fire_sigterm)
                if not fired.is_set():  # replay terminated before the mark
                    daemon.send_signal(signal.SIGTERM)
            returncode = daemon.wait(timeout=120)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        print(
            f"SIGTERM at replay step {SIGTERM_AFTER}: daemon exited "
            f"{returncode}; {len(reference)} reference decisions recorded"
        )
        if returncode != 0:
            failures.append(f"daemon exited {returncode} after SIGTERM drain")
        if socket_path.exists():
            failures.append("socket file survived shutdown")
        if not bounds_path.exists():
            failures.append("no bound-set checkpoint written on SIGTERM")

        # -- warm restart: same observations must give same decisions ------
        if bounds_path.exists():
            daemon = _start_daemon(model_path, socket_path, bounds_path)
            try:
                with ServiceClient(str(socket_path), timeout=120.0) as client:
                    stats = client.stats()
                    if not stats["started_warm"]:
                        failures.append("restart did not warm-start from checkpoint")
                    print(
                        f"warm daemon: started_warm={stats['started_warm']}, "
                        f"{stats['bound_vectors']} bound vectors, "
                        f"startup {stats['startup_seconds']:.3f}s"
                    )
                    resumed = _replay(client, "replay")
                    client.shutdown()
                returncode = daemon.wait(timeout=120)
            finally:
                if daemon.poll() is None:
                    daemon.kill()
                    daemon.wait()
            if returncode != 0:
                failures.append(f"daemon exited {returncode} after shutdown op")
            if resumed != reference:
                failures.append(
                    f"decision drift after restart: {resumed} != {reference}"
                )
            else:
                print(f"replay identical across restart ({len(resumed)} decisions)")

        if socket_path.exists():
            failures.append("socket file survived final shutdown")
        leftovers = sorted(str(p) for p in workdir.rglob(f"*{TEMP_SUFFIX}"))
        if leftovers:
            failures.append(f"leftover temp files: {leftovers}")

    if os.path.isdir("/dev/shm"):
        leaked = set(os.listdir("/dev/shm")) - shm_before
        if leaked:
            failures.append(f"leaked /dev/shm entries: {sorted(leaked)}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "serve contract holds: graceful drain on SIGTERM, warm restart "
        "from checkpoint, decisions bit-identical, no leaks"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
