"""Stationary deterministic Markov policies and their evaluation.

Section 2 of the paper: "a stationary deterministic, Markov policy rho(s) is
a mapping from states to the actions that should be chosen when the system is
in those states" — exactly what a fully-observable recovery controller would
need.  Policy evaluation reuses the chain solvers from
:mod:`repro.mdp.linear_solvers`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.mdp.linear_solvers import solve_markov_reward
from repro.mdp.model import MDP


@dataclass(frozen=True)
class Policy:
    """A deterministic stationary policy over an MDP's states.

    Attributes:
        actions: array of shape ``(|S|,)``; ``actions[s]`` is the index of
            the action chosen in state ``s``.
        action_labels: optional labels used for pretty-printing.
    """

    actions: np.ndarray
    action_labels: tuple[str, ...] = ()

    def __post_init__(self):
        actions = np.asarray(self.actions, dtype=int)
        if actions.ndim != 1:
            raise ModelError(f"policy actions must be 1-D, got {actions.shape}")
        object.__setattr__(self, "actions", actions)
        object.__setattr__(self, "action_labels", tuple(self.action_labels))

    def __getitem__(self, state: int) -> int:
        return int(self.actions[state])

    def __len__(self) -> int:
        return self.actions.shape[0]

    def label(self, state: int) -> str:
        """Human-readable name of the action chosen in ``state``."""
        action = self[state]
        if self.action_labels:
            return self.action_labels[action]
        return f"a{action}"

    def describe(self, state_labels: tuple[str, ...] | None = None) -> str:
        """A multi-line "state -> action" rendering of the policy."""
        lines = []
        for s in range(len(self)):
            state_name = state_labels[s] if state_labels else f"s{s}"
            lines.append(f"{state_name} -> {self.label(s)}")
        return "\n".join(lines)


def evaluate_policy(
    mdp: MDP,
    policy: Policy | np.ndarray,
    method: str = "gauss-seidel",
    tol: float = 1e-10,
) -> np.ndarray:
    """Expected accumulated reward of ``policy`` from every state.

    For undiscounted models this converges only when the policy's chain
    accrues zero reward on its recurrent classes; otherwise the underlying
    solver raises :class:`~repro.exceptions.DivergenceError`, which is the
    behaviour Section 3.1 relies on when comparing bounds.
    """
    actions = policy.actions if isinstance(policy, Policy) else np.asarray(policy)
    chain, reward = mdp.policy_chain(actions)
    return solve_markov_reward(
        chain, reward, discount=mdp.discount, method=method, tol=tol
    )


def greedy_policy(mdp: MDP, value: np.ndarray) -> Policy:
    """The policy that is greedy with respect to ``value``.

    Implements the argmax of Eq. 1: for each state pick the action
    maximising ``r(s,a) + beta * sum_s' p(s'|s,a) value(s')``.
    """
    value = np.asarray(value, dtype=float)
    q_values = mdp.rewards + mdp.discount * (mdp.transitions @ value)
    return Policy(
        actions=np.argmax(q_values, axis=0), action_labels=mdp.action_labels
    )
