"""The policy service and daemon: sessions, persistence, protocol, shutdown."""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.io import load_bound_set
from repro.obs import telemetry as obs
from repro.obs.trace import span_tree
from repro.serve import PolicyDaemon, PolicyService, ServiceClient, ServiceConfig
from repro.serve.protocol import decode_request, handle_line


@pytest.fixture()
def service(simple_system, tmp_path):
    config = ServiceConfig(
        socket_path=str(tmp_path / "repro.sock"),
        bounds_path=str(tmp_path / "bounds.npz"),
        checkpoint_interval=0,
        drain_timeout=1.0,
    )
    return PolicyService(config, model=simple_system.model)


def _drive_to_termination(service, session_id, env_seed=3):
    """Run one recovery to the terminate decision via the service API."""
    from repro.sim.environment import RecoveryEnvironment

    environment = RecoveryEnvironment(service.model, seed=env_seed)
    environment.inject(int(np.flatnonzero(service.model.fault_states)[0]))
    passive = np.flatnonzero(service.model.passive_actions)
    service.observe(session_id, int(passive[0]), environment.initial_observation())
    for _ in range(50):
        decision = service.decide(session_id)
        if decision["terminate"]:
            return decision
        result = environment.execute(decision["action"])
        service.observe(session_id, decision["action"], result.observation)
    raise AssertionError("recovery did not terminate")


class TestPolicyService:
    def test_session_lifecycle(self, service):
        sid = service.open_session()
        assert service.live_sessions == 1
        decision = _drive_to_termination(service, sid)
        assert decision["done"] is True
        service.close_session(sid)
        assert service.live_sessions == 0

    def test_unknown_and_duplicate_sessions(self, service):
        with pytest.raises(ServeError, match="unknown session"):
            service.decide("nope")
        service.open_session(session_id="mine")
        with pytest.raises(ServeError, match="already open"):
            service.open_session(session_id="mine")
        service.close_session("mine")
        with pytest.raises(ServeError, match="unknown session"):
            service.close_session("mine")

    def test_sessions_isolated(self, service):
        a = service.open_session()
        b = service.open_session()
        passive = int(np.flatnonzero(service.model.passive_actions)[0])
        service.observe(a, passive, 0)
        left = service._session(a).belief
        right = service._session(b).belief
        assert not np.array_equal(left, right)

    def test_refine_false_session_freezes_bounds(self, service):
        sid = service.open_session(refine=False)
        before = service.engine.bound_set.vectors.shape[0]
        _drive_to_termination(service, sid)
        assert service.engine.bound_set.vectors.shape[0] == before

    def test_checkpoint_and_warm_start(self, service, simple_system):
        sid = service.open_session()
        _drive_to_termination(service, sid)
        path = service.checkpoint()
        assert path is not None
        reloaded = load_bound_set(path, model=simple_system.model)
        np.testing.assert_array_equal(
            reloaded.vectors, service.engine.bound_set.vectors
        )
        warm = PolicyService(service.config, model=simple_system.model)
        assert warm.started_warm
        np.testing.assert_array_equal(
            warm.engine.bound_set.vectors, service.engine.bound_set.vectors
        )

    def test_warm_decisions_match_checkpoint_state(self, service, simple_system):
        """A read-only session on a warm restart decides exactly as a
        read-only session on the original service after the checkpoint —
        the smoke check's resume-identical property."""
        sid = service.open_session()
        _drive_to_termination(service, sid)
        service.checkpoint()
        warm = PolicyService(service.config, model=simple_system.model)
        old = service.open_session(refine=False)
        new = warm.open_session(refine=False)
        passive = int(np.flatnonzero(service.model.passive_actions)[0])
        service.observe(old, passive, 0)
        warm.observe(new, passive, 0)
        for _ in range(10):
            left = service.decide(old)
            right = warm.decide(new)
            assert left == right
            if left["terminate"]:
                break
            service.observe(old, left["action"], 1)
            warm.observe(new, right["action"], 1)

    def test_drain_rejects_new_sessions(self, service):
        sid = service.open_session()
        closer = threading.Timer(0.1, service.close_session, args=(sid,))
        closer.start()
        try:
            assert service.drain(timeout=5.0) == 0
        finally:
            closer.cancel()
        with pytest.raises(ServeError, match="draining"):
            service.open_session()

    def test_drain_times_out_on_stuck_session(self, service):
        service.open_session()
        assert service.drain(timeout=0.05) == 1

    def test_stats_shape(self, service):
        sid = service.open_session()
        service.decide(sid)
        stats = service.stats()
        assert stats["live_sessions"] == 1
        assert stats["decisions"] == 1
        assert stats["bound_vectors"] >= 1
        assert stats["started_warm"] is False

    def test_live_session_gauge_and_span_labels(self, service):
        with obs.session(trace=True) as telemetry:
            a = service.open_session()
            b = service.open_session()
            assert telemetry.gauges["serve.live_sessions"] == 2.0
            service.decide(a)
            service.decide(b)
            service.close_session(a)
            assert telemetry.gauges["serve.live_sessions"] == 1.0
            forests = span_tree(telemetry.spans, by_session=True)
        assert a in forests and b in forests
        assert forests[a][0]["name"] == "controller.decision"
        assert forests[a][0]["args"]["session"] == a


class TestProtocol:
    def test_decode_rejects_garbage(self):
        with pytest.raises(ServeError):
            decode_request("not json")
        with pytest.raises(ServeError):
            decode_request("[1,2]")
        with pytest.raises(ServeError):
            decode_request('{"no_op": 1}')

    def test_handle_line_error_codes(self, service):
        opened: set[str] = set()
        bad = handle_line(service, "garbage", opened)
        assert (bad["ok"], bad["error"]) == (False, "bad-request")
        unknown = handle_line(service, '{"op": "frobnicate"}', opened)
        assert unknown["error"] == "bad-request"
        missing = handle_line(service, '{"op": "decide"}', opened)
        assert missing["error"] == "bad-request"
        stale = handle_line(service, '{"op": "decide", "session": "x"}', opened)
        assert stale["error"] == "serve-error"

    def test_handle_line_tracks_opened_sessions(self, service):
        opened: set[str] = set()
        response = handle_line(service, '{"op": "open"}', opened)
        assert response["ok"] and opened == {response["session"]}
        handle_line(
            service, json.dumps({"op": "close", "session": response["session"]}), opened
        )
        assert opened == set()


@pytest.fixture()
def daemon(service):
    daemon = PolicyDaemon(service)
    thread = threading.Thread(
        target=lambda: daemon.run(install_signals=False), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(service.config.socket_path)
            probe.close()
            break
        except OSError:
            time.sleep(0.02)
    yield daemon
    daemon.request_shutdown()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestDaemon:
    def test_round_trip(self, daemon, service):
        with ServiceClient(service.config.socket_path) as client:
            assert client.ping()
            sid = client.open_session()
            decision = client.decide(sid)
            assert isinstance(decision["action"], int)
            client.observe(sid, decision["action"], 0)
            stats = client.stats()
            assert stats["live_sessions"] == 1
            client.close_session(sid)

    def test_concurrent_clients(self, daemon, service):
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                with ServiceClient(service.config.socket_path) as client:
                    sid = client.open_session(session_id=f"c{index}")
                    for _ in range(5):
                        decision = client.decide(sid)
                        if decision["terminate"]:
                            break
                        client.observe(sid, decision["action"], 0)
                    client.close_session(sid)
            except Exception as error:  # noqa: BLE001 — collected for the assert
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == []
        assert service.live_sessions == 0

    def test_disconnect_releases_sessions(self, daemon, service):
        client = ServiceClient(service.config.socket_path)
        client.open_session(session_id="leaky")
        assert service.live_sessions == 1
        client.close()
        deadline = time.monotonic() + 5.0
        while service.live_sessions and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service.live_sessions == 0

    def test_shutdown_op_checkpoints_and_unlinks(self, daemon, service, tmp_path):
        with ServiceClient(service.config.socket_path) as client:
            sid = client.open_session()
            client.decide(sid)
            client.close_session(sid)
            client.shutdown()
        deadline = time.monotonic() + 10.0
        import os

        while os.path.exists(service.config.socket_path):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert os.path.exists(service.config.bounds_path)


class TestLiveOps:
    """The obs v3 surface of the service: metrics, health, ready, slow log."""

    def test_metrics_counts_service_activity(self, service):
        sid = service.open_session()
        service.decide(sid)
        metrics = service.metrics()
        assert metrics["process_counters"]["serve.sessions_opened"] == 1
        assert metrics["process_counters"]["serve.decisions"] >= 1
        histogram = metrics["histograms"]["serve.session_decide"]
        assert histogram["count"] >= 1
        assert histogram["p99_ms"] is not None
        assert metrics["gauges"]["serve.live_sessions"] == 1.0

    def test_health_and_ready_flip_on_drain(self, service):
        assert service.health()["healthy"] is True
        ready = service.ready()
        assert ready == {
            "ready": True,
            "model_loaded": True,
            "bounds_certified": True,
            "draining": False,
        }
        service.drain(timeout=0)
        assert service.ready()["ready"] is False
        assert service.ready()["draining"] is True
        # Health stays true while draining: the process is still alive.
        assert service.health()["healthy"] is True
        assert service.health()["draining"] is True

    def test_per_session_stats_table(self, service):
        a = service.open_session(session_id="alpha")
        b = service.open_session(session_id="beta", refine=False)
        service.decide(a)
        stats = service.stats()
        assert set(stats["sessions"]) == {"alpha", "beta"}
        assert stats["sessions"]["alpha"]["steps"] >= 0
        # alpha has no per-session override: the table reports the
        # engine's effective refine_online default, not None.
        assert stats["sessions"]["alpha"]["refine"] is True
        assert stats["sessions"]["beta"]["refine"] is False
        assert stats["live_sessions"] == len(stats["sessions"])

    def test_slow_decision_event_with_span_subtree(self, simple_system, tmp_path):
        config = ServiceConfig(
            socket_path=str(tmp_path / "slow.sock"),
            checkpoint_interval=0,
            slow_decision_seconds=0.0,  # every decision is "slow"
            trace=True,
        )
        slow_service = PolicyService(config, model=simple_system.model)
        with obs.activated(slow_service.telemetry):
            sid = slow_service.open_session()
            slow_service.decide(sid)
        events = [
            record
            for record in slow_service.telemetry.snapshot().events
            if record["event"] == "slow_decision"
        ]
        assert len(events) == 1
        (event,) = events
        assert event["session"] == sid
        assert event["seconds"] > 0.0
        assert event["threshold"] == 0.0
        names = {span["name"] for span in event["spans"]}
        assert "controller.decision" in names
        from repro.obs.schema import validate_event

        assert validate_event(event) == []

    def test_slow_log_disabled_by_default(self, service):
        sid = service.open_session()
        service.decide(sid)
        kinds = [
            record["event"] for record in service.telemetry.snapshot().events
        ]
        assert "slow_decision" not in kinds


class TestLiveProtocolOps:
    def test_metrics_op_json_and_prometheus(self, service):
        opened: set[str] = set()
        handle_line(service, '{"op": "open"}', opened)
        response = handle_line(service, '{"op": "metrics"}', opened)
        assert response["ok"]
        assert "serve.sessions_opened" in response["metrics"]["process_counters"]
        text = handle_line(
            service, '{"op": "metrics", "format": "prometheus"}', opened
        )
        assert text["ok"]
        assert "# TYPE repro_serve_sessions_opened_total counter" in text["text"]
        bad = handle_line(
            service, '{"op": "metrics", "format": "xml"}', opened
        )
        assert (bad["ok"], bad["error"]) == (False, "bad-request")

    def test_health_and_ready_ops(self, service):
        opened: set[str] = set()
        health = handle_line(service, '{"op": "health"}', opened)
        assert health["ok"] and health["health"]["healthy"] is True
        ready = handle_line(service, '{"op": "ready"}', opened)
        assert ready["ok"] and ready["ready"] is True
        service.drain(timeout=0)
        assert handle_line(service, '{"op": "ready"}', opened)["ready"] is False


class TestConcurrentStats:
    """Satellite: hammer decide from N threads while polling stats/metrics."""

    WORKERS = 4
    DECISIONS_EACH = 6

    def test_stats_and_metrics_stay_consistent_under_load(self, service):
        errors: list[Exception] = []
        inconsistencies: list[str] = []
        stop = threading.Event()

        def hammer(index: int) -> None:
            try:
                sid = service.open_session(session_id=f"h{index}")
                for _ in range(self.DECISIONS_EACH):
                    service.decide(sid)
                    service._sessions[sid].reset()  # keep deciding forever
                service.close_session(sid)
            except Exception as error:  # noqa: BLE001 — collected for the assert
                errors.append(error)

        def poll() -> None:
            try:
                while not stop.is_set():
                    stats = service.stats()
                    if stats["live_sessions"] != len(stats["sessions"]):
                        inconsistencies.append(
                            f"live={stats['live_sessions']} "
                            f"table={len(stats['sessions'])}"
                        )
                    metrics = service.metrics()
                    if not isinstance(metrics["histograms"], dict):
                        inconsistencies.append("torn metrics snapshot")
            except Exception as error:  # noqa: BLE001 — collected for the assert
                errors.append(error)

        workers = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(self.WORKERS)
        ]
        poller = threading.Thread(target=poll)
        poller.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60.0)
        stop.set()
        poller.join(timeout=10.0)
        assert errors == []
        assert inconsistencies == []
        # Session counts match the registry once the dust settles.
        assert service.live_sessions == 0
        stats = service.stats()
        assert stats["sessions"] == {}
        assert stats["decisions"] == self.WORKERS * self.DECISIONS_EACH
        histogram = service.metrics()["histograms"]["serve.session_decide"]
        assert 0 < histogram["count"] <= self.WORKERS * self.DECISIONS_EACH


@pytest.fixture()
def live_daemon(simple_system, tmp_path):
    """A daemon with the full obs v3 wiring: flusher, slow log, trace."""
    config = ServiceConfig(
        socket_path=str(tmp_path / "live.sock"),
        checkpoint_interval=0,
        drain_timeout=1.0,
        slow_decision_seconds=0.0,
        metrics_path=str(tmp_path / "metrics.jsonl"),
        metrics_interval=0.05,
        trace=True,
    )
    service = PolicyService(config, model=simple_system.model)
    daemon = PolicyDaemon(service)
    thread = threading.Thread(
        target=lambda: daemon.run(install_signals=False), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(config.socket_path)
            probe.close()
            break
        except OSError:
            time.sleep(0.02)
    yield daemon, service
    daemon.request_shutdown()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestDaemonLiveOps:
    def test_client_typed_wrappers(self, live_daemon):
        daemon, service = live_daemon
        with ServiceClient(service.config.socket_path) as client:
            assert client.ready() is True
            health = client.health()
            assert health["healthy"] is True and health["draining"] is False
            sid = client.open_session()
            client.decide(sid)
            metrics = client.metrics()
            assert metrics["histograms"]["serve.session_decide"]["count"] >= 1
            # Deep layers record into the same registry because the daemon
            # activated the service telemetry process-wide.
            assert metrics["counters"]["controller.decisions"] >= 1
            text = client.metrics_text()
            assert "repro_controller_decisions_total" in text
            assert 'le="+Inf"' in text
            client.close_session(sid)

    def test_watch_renders_against_daemon(self, live_daemon, capsys):
        daemon, service = live_daemon
        with ServiceClient(service.config.socket_path) as client:
            sid = client.open_session(session_id="watched")
            client.decide(sid)
            from repro.obs.__main__ import main as obs_main

            code = obs_main(
                ["watch", service.config.socket_path, "--once", "--interval", "0.1"]
            )
            client.close_session(sid)
        assert code == 0
        screen = capsys.readouterr().out
        assert "repro.serve [serving]" in screen
        assert "serve.session_decide" in screen
        assert "watched" in screen

    def test_metrics_flusher_writes_valid_v3_stream(self, live_daemon):
        import os

        daemon, service = live_daemon
        with ServiceClient(service.config.socket_path) as client:
            sid = client.open_session()
            client.decide(sid)
            client.close_session(sid)
            time.sleep(0.2)  # let the flusher tick at least once
            client.shutdown()
        deadline = time.monotonic() + 10.0
        while os.path.exists(service.config.socket_path):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        from repro.obs.schema import validate_stream

        path = service.config.metrics_path
        assert validate_stream(path) == []
        with open(path, encoding="utf-8") as stream:
            records = [json.loads(line) for line in stream if line.strip()]
        assert records[0]["event"] == "session_start"
        assert records[0]["schema"] == "repro-obs/v3"
        snapshots = [r for r in records if r["event"] == "metrics_snapshot"]
        assert len(snapshots) >= 2  # interval ticks plus the final flush
        last = snapshots[-1]
        assert last["process_counters"]["serve.decisions"] >= 1
        assert "serve.session_decide" in last["histograms"]
        assert last["t"] >= 0.0
