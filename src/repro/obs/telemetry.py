"""Process-local telemetry registry and JSONL event stream.

The observability layer has three kinds of state, mirroring the usual
metrics taxonomy:

* **counters** — monotonically increasing integers ("decisions made",
  "bound vectors added").  Split into two namespaces: :attr:`Telemetry.counters`
  holds *deterministic* counters, guaranteed by the campaign engine to be
  identical for serial and sharded runs of the same seeded campaign (the
  same contract :func:`repro.sim.metrics.campaign_fingerprint` states for
  metrics); :attr:`Telemetry.process_counters` holds process-local facts —
  cache builds, which happen once per worker process — that legitimately
  vary with the worker count, exactly as ``algorithm_time`` does.
* **gauges** — last-written floats ("bound-set size"), merged across
  campaign chunks by maximum (the storage story of Figure 5(b) cares about
  the high-water mark).
* **timers** — accumulated wall-clock spans with call counts, recorded via
  :meth:`Telemetry.span`.  Wall-clock, hence never part of the determinism
  contract.

Events are dictionaries with an ``event`` kind (see
:mod:`repro.obs.schema`) appended to a JSONL sink when one is attached, or
buffered in memory otherwise (campaign chunks buffer; the coordinating
process owns the file).

Instrumentation is **off by default**.  Hot paths guard with::

    telemetry = active()
    if telemetry is not None:
        telemetry.count("controller.decisions")

which costs one function call and a ``None`` test when disabled — far below
the noise floor of any measured path (see EXPERIMENTS.md for numbers).
"""

from __future__ import annotations

import json
import time
from collections import Counter
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.obs.schema import SCHEMA_VERSION


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A picklable capture of one :class:`Telemetry`'s accumulated state.

    Campaign chunks run episodes against a private buffering telemetry and
    hand a snapshot back to the join step (:mod:`repro.sim.parallel`), which
    absorbs snapshots in chunk order — so the aggregated registry never
    depends on which worker ran which chunk.
    """

    counters: dict[str, int] = field(default_factory=dict)
    process_counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    timers: dict[str, tuple[float, int]] = field(default_factory=dict)
    events: tuple[dict[str, Any], ...] = ()


class Telemetry:
    """One process-local registry plus an optional JSONL event sink.

    Args:
        sink: an open text stream to write events to as JSONL, one object
            per line.  ``None`` buffers events in memory instead (the mode
            campaign chunks use; :meth:`snapshot` carries the buffer back to
            the coordinating process).
    """

    def __init__(self, sink: IO[str] | None = None):
        self.counters: Counter[str] = Counter()
        self.process_counters: Counter[str] = Counter()
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [seconds, calls]
        self._sink = sink
        self._buffer: list[dict[str, Any]] = []
        self._seq = 0

    # -- registry -------------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Increment a deterministic campaign counter."""
        self.counters[name] += delta

    def count_process(self, name: str, delta: int = 1) -> None:
        """Increment a process-local counter (exempt from determinism)."""
        self.process_counters[name] += delta

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of ``name`` (merged by max across chunks)."""
        self.gauges[name] = float(value)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the enclosed block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            stat = self.timers.setdefault(name, [0.0, 0])
            stat[0] += elapsed
            stat[1] += 1

    # -- events ---------------------------------------------------------------

    def event(self, kind: str, /, **fields: Any) -> None:
        """Record one structured event (written to the sink or buffered)."""
        record: dict[str, Any] = {"event": kind, "seq": self._seq}
        record.update(fields)
        self._seq += 1
        if self._sink is not None:
            self._sink.write(json.dumps(record) + "\n")
        else:
            self._buffer.append(record)

    # -- chunk merge protocol -------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Capture the registry plus any buffered events (picklable)."""
        return TelemetrySnapshot(
            counters=dict(self.counters),
            process_counters=dict(self.process_counters),
            gauges=dict(self.gauges),
            timers={name: (stat[0], stat[1]) for name, stat in self.timers.items()},
            events=tuple(self._buffer),
        )

    def absorb(
        self, snapshot: TelemetrySnapshot, chunk: int | None = None
    ) -> None:
        """Fold a chunk snapshot into this registry.

        Counters add, gauges keep the maximum, timers accumulate, and the
        snapshot's buffered events are re-emitted here (tagged with the
        ``chunk`` index when given) so they reach this telemetry's sink in
        the order the caller absorbs chunks — which the campaign engine
        guarantees is chunk order, independent of the worker count.
        """
        self.counters.update(snapshot.counters)
        self.process_counters.update(snapshot.process_counters)
        for name, value in snapshot.gauges.items():
            self.gauges[name] = max(self.gauges.get(name, value), value)
        for name, (seconds, calls) in snapshot.timers.items():
            stat = self.timers.setdefault(name, [0.0, 0])
            stat[0] += seconds
            stat[1] += calls
        for record in snapshot.events:
            fields = {
                key: value
                for key, value in record.items()
                if key not in ("event", "seq")
            }
            if chunk is not None:
                fields["chunk"] = chunk
            self.event(record["event"], **fields)

    def summary_fields(self) -> dict[str, Any]:
        """The aggregate registry as the ``summary`` event's payload."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "process_counters": dict(sorted(self.process_counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: {"seconds": round(stat[0], 6), "calls": stat[1]}
                for name, stat in sorted(self.timers.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"events_buffered={len(self._buffer)}, "
            f"sink={'attached' if self._sink is not None else 'buffer'})"
        )


# -- process-local activation -------------------------------------------------

_ACTIVE: Telemetry | None = None


def active() -> Telemetry | None:
    """The currently activated telemetry, or ``None`` when disabled.

    This is the hot-path accessor: instrumented code calls it at every
    instrumentation point and skips all work when it returns ``None``.
    """
    return _ACTIVE


def enabled() -> bool:
    """True when a telemetry registry is currently activated."""
    return _ACTIVE is not None


@contextmanager
def activated(telemetry: Telemetry | None) -> Iterator[Telemetry | None]:
    """Temporarily swap the process-active telemetry (``None`` disables).

    Campaign chunks use this to capture episode instrumentation into a
    private buffering registry — and, just as importantly, to *shield* the
    caller's registry from being written twice when chunks run in-process
    (the chunk's snapshot is absorbed at the join step instead).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


@contextmanager
def session(path: str | Path | None = None) -> Iterator[Telemetry]:
    """Activate telemetry for a ``with`` block, optionally writing JSONL.

    Opens ``path`` (when given) as the event sink, emits ``session_start``,
    runs the block with the registry activated, and on exit emits the
    aggregate ``summary`` event followed by ``session_end`` before closing
    the file.  Without a path, events are buffered in memory and available
    via :meth:`Telemetry.snapshot`.
    """
    sink: IO[str] | None = None
    if path is not None:
        sink = open(path, "w", encoding="utf-8")
    telemetry = Telemetry(sink=sink)
    telemetry.event("session_start", schema=SCHEMA_VERSION)
    try:
        with activated(telemetry):
            yield telemetry
    finally:
        telemetry.event("summary", **telemetry.summary_fields())
        telemetry.event("session_end")
        if sink is not None:
            sink.close()
