"""The simulated target system.

The environment is the ground-truth side of an episode: it knows the true
fault state (the controller never sees it), executes the controller's
actions by sampling the model's transition function, keeps wall-clock time
and accumulated cost, and runs the monitors — sampling the observation
function ``q`` — after every action, exactly as the paper's simulation-based
evaluation does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ControllerError
from repro.linalg.ops import reward_scalar
from repro.pomdp.simulator import POMDPSimulator
from repro.recovery.model import RecoveryModel
from repro.util.rng import as_generator

#: Observation sentinel for executions that sample no monitors (the
#: terminate action is a controller decision, not a physical action).  It
#: must never be fed back into a belief update; see
#: :meth:`repro.controllers.base.RecoveryController.observe`, which rejects
#: it loudly.
NO_OBSERVATION = -1


@dataclass(frozen=True)
class ExecutionResult:
    """Ground-truth outcome of one executed action.

    Attributes:
        observation: sampled monitor outputs (index into the observation
            space), or :data:`NO_OBSERVATION` when no monitors ran; the
            campaign forwards real observations to monitor-using
            controllers and never forwards the sentinel.
        reward: the model reward actually incurred (non-positive).
        state: the true post-action state (for the oracle hook and metrics).
    """

    observation: int
    reward: float
    state: int


class RecoveryEnvironment:
    """One fault-injection episode's worth of simulated system.

    Args:
        model: the recovery model (shared with the controller — the paper
            evaluates the controller under a *correct* model; model-mismatch
            experiments can pass the controller a different model).
        seed: RNG seed for transition and monitor sampling.
        monitor_tail: seconds of monitor execution folded into the tail of
            every action's duration (5 s in the EMN model).  Used only to
            back the repair instant out of the action duration when
            computing residual time; it does not change costs, which come
            from the model's rewards.
    """

    def __init__(self, model: RecoveryModel, seed=None, monitor_tail: float = 0.0):
        if monitor_tail < 0:
            raise ControllerError("monitor_tail must be >= 0")
        self.model = model
        self.monitor_tail = monitor_tail
        self._simulator = POMDPSimulator(model.pomdp, seed=as_generator(seed))
        self._injected = False
        self.time = 0.0
        self.cost = 0.0
        self.termination_penalty = 0.0
        self.recovered_at: float | None = None

    @property
    def state(self) -> int:
        """The true system state (ground truth; not for controllers)."""
        return self._simulator.state

    @property
    def recovered(self) -> bool:
        """True once the system is in a null-fault state."""
        return self.model.is_recovered(self.state)

    def inject(self, fault_state: int) -> None:
        """Start an episode with ``fault_state`` active at time zero."""
        if not self.model.fault_states[fault_state]:
            raise ControllerError(
                f"state {fault_state} is not an injectable fault state"
            )
        self._simulator.reset(fault_state)
        self._injected = True
        self.time = 0.0
        self.cost = 0.0
        self.termination_penalty = 0.0
        self.recovered_at = None

    def initial_observation(self) -> int:
        """Monitor outputs available at detection time (free of charge).

        The controller is invoked *because* monitors flagged a problem; the
        outputs that triggered the invocation are handed to it without
        advancing time, and are not counted as a monitor call in Table 1's
        sense.
        """
        if not self._injected:
            raise ControllerError("initial_observation() before inject()")
        passive = np.flatnonzero(self.model.passive_actions)
        if passive.size == 0:
            raise ControllerError(
                "the model has no passive action to sample detection "
                "observations with"
            )
        return self._simulator.observe(int(passive[0]))

    def execute(self, action: int) -> ExecutionResult:
        """Run ``action`` against the true system.

        Advances time by the action's duration, accrues the model's reward
        as cost, performs the state transition, samples the post-action
        monitor outputs, and pins down the repair instant for the
        residual-time metric.
        """
        if not self._injected:
            raise ControllerError("execute() before inject()")
        was_recovered = self.recovered
        if action == self.model.terminate_action:
            # Terminating is a controller decision, not a physical action:
            # the true system stays where it is.  The model's termination
            # reward — the cost of leaving a live fault to the operator
            # (zero once recovered, by construction of r(s, a_T)) — is
            # charged exactly once here; no transition or monitor sampling
            # happens, and the loop below never sees a_T.
            reward = reward_scalar(self.model.pomdp.rewards, action, self.state)
            self.cost += -reward
            if not was_recovered:
                self.termination_penalty += -reward
            return ExecutionResult(
                observation=NO_OBSERVATION, reward=reward, state=self.state
            )
        step = self._simulator.step(action)
        self.time += float(self.model.durations[action])
        self.cost += -step.reward
        if not was_recovered and self.model.is_recovered(step.state):
            # The repair lands when the action's work completes, before the
            # trailing monitor execution folded into its duration.
            self.recovered_at = max(self.time - self.monitor_tail, 0.0)
        return ExecutionResult(
            observation=step.observation, reward=step.reward, state=step.state
        )

    def residual_time(self) -> float:
        """Wall-clock seconds the fault has been (or will be) present.

        After a successful repair this is the repair instant.  If the
        episode ended unrecovered, the fault stays live until the human
        operator responds, ``t_op`` after the controller walked away.
        """
        if self.recovered_at is not None:
            return self.recovered_at
        extra = self.model.operator_response_time or 0.0
        return self.time + extra
