"""Hierarchical span tracing: recording, merge determinism, exporters."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.controllers.bounded import BoundedController
from repro.obs import session
from repro.obs.telemetry import (
    SPANS_DROPPED_COUNTER,
    SpanRecord,
    Telemetry,
)
from repro.obs.trace import (
    read_spans,
    span_tree,
    to_chrome_trace,
    to_collapsed_stacks,
    write_chrome_trace,
)
from repro.sim.campaign import run_campaign


class TestSpanRecording:
    def test_nesting_produces_parent_ids(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("outer"):
            with telemetry.trace_span("inner"):
                pass
        spans = {span.name: span for span in telemetry.spans}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_children_close_before_parents(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("outer"):
            with telemetry.trace_span("inner"):
                pass
        assert [span.name for span in telemetry.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("root"):
            with telemetry.trace_span("a"):
                pass
            with telemetry.trace_span("b"):
                pass
        spans = {span.name: span for span in telemetry.spans}
        assert spans["a"].parent_id == spans["b"].parent_id == spans["root"].span_id

    def test_args_are_recorded_sorted(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("s", zeta=1, alpha=2):
            pass
        (span,) = telemetry.spans
        assert span.args == (("alpha", 2), ("zeta", 1))

    def test_durations_nest(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("outer"):
            with telemetry.trace_span("inner"):
                pass
        spans = {span.name: span for span in telemetry.spans}
        assert spans["inner"].seconds <= spans["outer"].seconds
        assert spans["inner"].t_start >= spans["outer"].t_start

    def test_disabled_tracing_records_nothing(self):
        telemetry = Telemetry()  # trace off
        with telemetry.trace_span("outer"):
            pass
        assert len(telemetry.spans) == 0

    def test_disabled_trace_span_is_shared_noop(self):
        telemetry = Telemetry()
        assert telemetry.trace_span("a") is telemetry.trace_span("b")


class TestRingBuffer:
    def test_oldest_spans_dropped_at_capacity(self):
        telemetry = Telemetry(trace=True, max_spans=3)
        for index in range(5):
            with telemetry.trace_span(f"s{index}"):
                pass
        assert [span.name for span in telemetry.spans] == ["s2", "s3", "s4"]
        assert telemetry.events_dropped == 2
        assert telemetry.counters[SPANS_DROPPED_COUNTER] == 2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_TRACE_SPANS", "2")
        telemetry = Telemetry(trace=True)
        assert telemetry.max_spans == 2

    def test_no_drops_below_capacity(self):
        telemetry = Telemetry(trace=True, max_spans=10)
        for _ in range(5):
            with telemetry.trace_span("s"):
                pass
        assert telemetry.events_dropped == 0


class TestAbsorbMerge:
    def _chunk(self, episode: int) -> Telemetry:
        chunk = Telemetry(trace=True)
        with chunk.trace_span("episode", episode=episode):
            with chunk.trace_span("decision"):
                pass
        return chunk

    def test_chunk_roots_reparent_under_open_span(self):
        aggregate = Telemetry(trace=True)
        with aggregate.trace_span("campaign"):
            aggregate.absorb(self._chunk(0).snapshot(), chunk=0)
        spans = {span.name: span for span in aggregate.spans}
        assert spans["episode"].parent_id == spans["campaign"].span_id
        assert spans["decision"].parent_id == spans["episode"].span_id

    def test_span_ids_stay_unique_across_chunks(self):
        aggregate = Telemetry(trace=True)
        with aggregate.trace_span("campaign"):
            for index in range(3):
                aggregate.absorb(self._chunk(index).snapshot(), chunk=index)
        ids = [span.span_id for span in aggregate.spans]
        assert len(ids) == len(set(ids))

    def test_timestamps_rebase_end_to_end(self):
        aggregate = Telemetry(trace=True)
        with aggregate.trace_span("campaign"):
            for index in range(2):
                aggregate.absorb(self._chunk(index).snapshot(), chunk=index)
        episodes = sorted(
            (span for span in aggregate.spans if span.name == "episode"),
            key=lambda span: span.span_id,
        )
        # Chunk 1's episode starts at or after chunk 0's extent.
        first_end = episodes[0].t_start + episodes[0].seconds
        assert episodes[1].t_start >= first_end - 1e-9

    def test_chunk_tag_appended_to_args(self):
        aggregate = Telemetry(trace=True)
        aggregate.absorb(self._chunk(0).snapshot(), chunk=7)
        for span in aggregate.spans:
            assert ("chunk", 7) in span.args


class TestSpanTree:
    def test_canonical_structure(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("root"):
            with telemetry.trace_span("a", k=1):
                pass
            with telemetry.trace_span("b"):
                pass
        (root,) = span_tree(list(telemetry.spans))
        assert root["name"] == "root"
        assert [child["name"] for child in root["children"]] == ["a", "b"]
        assert root["children"][0]["args"] == {"k": 1}

    def test_orphaned_spans_become_roots(self):
        spans = [
            SpanRecord(5, 99, "orphan", "repro", 0.0, 1.0),
        ]
        assert [node["name"] for node in span_tree(spans)] == ["orphan"]


class TestExporters:
    def _spans(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("root", phase="x"):
            with telemetry.trace_span("leaf"):
                pass
        return list(telemetry.spans)

    def test_chrome_trace_structure(self):
        document = to_chrome_trace(self._spans())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
        # Sorted by start time: the root opens first.
        assert events[0]["name"] == "root"
        assert events[0]["args"]["phase"] == "x"

    def test_chrome_trace_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._spans())
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == 2

    def test_collapsed_stacks_weights_are_self_time(self):
        spans = [
            SpanRecord(0, None, "root", "repro", 0.0, 2.0),
            SpanRecord(1, 0, "leaf", "repro", 0.5, 0.5),
        ]
        lines = dict(
            line.rsplit(" ", 1) for line in to_collapsed_stacks(spans)
        )
        assert int(lines["root"]) == 1_500_000  # 2.0 s - 0.5 s child
        assert int(lines["root;leaf"]) == 500_000

    def test_identical_stacks_merge(self):
        spans = [
            SpanRecord(0, None, "root", "repro", 0.0, 1.0),
            SpanRecord(1, None, "root", "repro", 1.0, 1.0),
        ]
        (line,) = to_collapsed_stacks(spans)
        assert line == "root 2000000"


class TestSessionIntegration:
    def test_session_emits_span_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with session(path, trace=True) as telemetry:
            with telemetry.trace_span("outer"):
                pass
        kinds = [
            json.loads(line)["event"] for line in path.read_text().splitlines()
        ]
        assert "span" in kinds
        # Spans are flushed between the payload events and the summary.
        assert kinds.index("span") < kinds.index("summary")

    def test_read_spans_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with session(path, trace=True) as telemetry:
            with telemetry.trace_span("outer", k=3):
                with telemetry.trace_span("inner"):
                    pass
        recovered = read_spans(path)
        assert span_tree(recovered) == span_tree(list(telemetry.spans))

    def test_untraced_session_emits_no_span_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with session(path) as telemetry:
            with telemetry.trace_span("outer"):
                pass
            telemetry.count("x")
        kinds = [
            json.loads(line)["event"] for line in path.read_text().splitlines()
        ]
        assert "span" not in kinds


class TestCampaignTraceDeterminism:
    """Satellite: the sim_parallel determinism contract extended to spans —
    serial and sharded campaigns produce the same span tree (modulo the
    rebased timestamps) and identical aggregated counters."""

    INJECTIONS = 24
    SEED = 11

    def _traced_campaign(self, system, parallel):
        controller = BoundedController(system.model, depth=1)
        faults = np.array([system.fault_a, system.fault_b])
        with session(trace=True) as telemetry:
            run_campaign(
                controller,
                fault_states=faults,
                injections=self.INJECTIONS,
                seed=self.SEED,
                parallel=parallel,
            )
        return telemetry

    @pytest.fixture(scope="class")
    def serial(self, simple_system):
        return self._traced_campaign(simple_system, parallel=None)

    @pytest.fixture(scope="class")
    def sharded(self, simple_system):
        return self._traced_campaign(simple_system, parallel=4)

    def test_span_tree_is_worker_count_invariant(self, serial, sharded):
        assert span_tree(list(serial.spans)) == span_tree(list(sharded.spans))

    def test_aggregated_counters_match_with_tracing_on(self, serial, sharded):
        assert dict(serial.counters) == dict(sharded.counters)
        assert serial.gauges == sharded.gauges

    def test_expected_hierarchy_levels_present(self, serial):
        tree = span_tree(list(serial.spans))
        (campaign,) = tree
        assert campaign["name"] == "campaign"
        episodes = campaign["children"]
        assert len(episodes) == self.INJECTIONS
        assert {node["name"] for node in episodes} == {"episode"}
        decision_names = {
            child["name"]
            for episode in episodes
            for child in episode["children"]
        }
        assert decision_names == {"controller.decision"}
        inner = {
            grandchild["name"]
            for episode in episodes
            for child in episode["children"]
            for grandchild in child["children"]
        }
        assert {"bounds.refine", "tree.expand"} <= inner

    def test_episode_spans_carry_chunk_and_episode_args(self, sharded):
        episode_spans = [
            span for span in sharded.spans if span.name == "episode"
        ]
        assert len(episode_spans) == self.INJECTIONS
        for span in episode_spans:
            args = dict(span.args)
            assert "episode" in args
            assert "chunk" in args


class TestSpanTreeBySession:
    """Grouping interleaved multi-session spans into per-session forests."""

    def _multiplexed(self):
        """Two sessions interleaving decisions on one registry, the way the
        policy service's connection threads produce them (serially here —
        allocation order is what matters to the grouping, not timing)."""
        telemetry = Telemetry(trace=True)
        for turn in range(2):
            for label in ("s0", "s1"):
                with telemetry.trace_span(
                    "controller.decision", session=label, turn=turn
                ):
                    with telemetry.trace_span("controller.expand_tree"):
                        pass
        return telemetry

    def test_groups_by_session_label(self):
        forests = span_tree(list(self._multiplexed().spans), by_session=True)
        assert set(forests) == {"s0", "s1"}
        for label, forest in forests.items():
            assert [node["name"] for node in forest] == [
                "controller.decision",
                "controller.decision",
            ]
            assert [node["args"]["turn"] for node in forest] == [0, 1]
            assert all(node["args"]["session"] == label for node in forest)

    def test_children_inherit_parent_session(self):
        forests = span_tree(list(self._multiplexed().spans), by_session=True)
        for forest in forests.values():
            for node in forest:
                assert [child["name"] for child in node["children"]] == [
                    "controller.expand_tree"
                ]

    def test_unlabelled_spans_group_under_none(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("warmup"):
            pass
        with telemetry.trace_span("controller.decision", session="s0"):
            pass
        forests = span_tree(list(telemetry.spans), by_session=True)
        assert [node["name"] for node in forests[None]] == ["warmup"]
        assert [node["name"] for node in forests["s0"]] == ["controller.decision"]

    def test_cross_session_child_roots_its_own_forest(self):
        telemetry = Telemetry(trace=True)
        with telemetry.trace_span("controller.decision", session="s0"):
            with telemetry.trace_span("controller.decision", session="s1"):
                pass
        forests = span_tree(list(telemetry.spans), by_session=True)
        assert forests["s0"][0]["children"] == []
        assert [node["name"] for node in forests["s1"]] == ["controller.decision"]

    def test_flat_tree_unchanged_by_default(self):
        spans = list(self._multiplexed().spans)
        flat = span_tree(spans)
        assert isinstance(flat, list)
        assert len(flat) == 4  # the braided timeline, unchanged
