"""Tests for the model-mismatch robustness experiment and weighted faults."""

import numpy as np
import pytest

from repro.controllers.oracle import OracleController
from repro.experiments.robustness import format_mismatch, run_mismatch_sweep
from repro.sim.campaign import run_campaign


class TestMismatchSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return run_mismatch_sweep(
            environment_coverages=(1.0, 0.5), injections=25, seed=3
        )

    def test_matched_point_recovers_cleanly(self, points):
        matched = points[0]
        assert matched.environment_coverage == 1.0
        assert matched.summary.unrecovered == 0

    def test_degraded_environment_costs_more(self, points):
        matched, degraded = points
        assert degraded.summary.cost >= matched.summary.cost * 0.8
        # Weaker real monitors mean slower diagnosis.
        assert (
            degraded.summary.residual_time
            >= matched.summary.residual_time * 0.8
        )

    def test_mismatch_finding_overtrust_causes_early_termination(self, points):
        """The sweep's headline finding: a controller whose model claims
        perfect probe coverage treats an all-clear as near-proof of
        recovery, so when the real monitors miss (coverage 0.5) it
        sometimes terminates with the fault still live.  The metrics layer
        must surface those as early terminations, not hide them."""
        degraded = points[-1]
        assert degraded.environment_coverage == 0.5
        assert (
            degraded.summary.early_terminations
            == degraded.summary.unrecovered
        )
        assert degraded.summary.early_terminations > 0

    def test_formatting(self, points):
        text = format_mismatch(points)
        assert "Model cov." in text
        assert "Unrecovered" in text


class TestWeightedFaultLoad:
    def test_weights_respected(self, simple_system):
        controller = OracleController(simple_system.model)
        faults = np.array([simple_system.fault_a, simple_system.fault_b])
        result = run_campaign(
            controller,
            fault_states=faults,
            injections=300,
            seed=0,
            fault_probabilities=np.array([0.9, 0.1]),
        )
        drawn_a = sum(
            1
            for episode in result.episodes
            if episode.fault_state == simple_system.fault_a
        )
        assert 240 <= drawn_a <= 295  # ~270 expected

    def test_mismatched_weight_shape_rejected(self, simple_system):
        controller = OracleController(simple_system.model)
        with pytest.raises(ValueError, match="align"):
            run_campaign(
                controller,
                fault_states=np.array([simple_system.fault_a]),
                injections=1,
                fault_probabilities=np.array([0.5, 0.5]),
            )

    def test_non_distribution_weights_rejected(self, simple_system):
        controller = OracleController(simple_system.model)
        with pytest.raises(ValueError, match="distribution"):
            run_campaign(
                controller,
                fault_states=np.array(
                    [simple_system.fault_a, simple_system.fault_b]
                ),
                injections=1,
                fault_probabilities=np.array([0.9, 0.9]),
            )
