"""`repro.serve` — the persistent recovery-policy service.

The batch campaign harness answers "how good is this policy over 10,000
injections?"; this package answers the deployment question: a long-running
daemon that loads a model archive *once*, keeps the RA-Bound-seeded (and
online-refined) :class:`~repro.bounds.vector_set.BoundVectorSet` and the
joint-factor cache warm, and multiplexes many concurrent recovery sessions
over a line-delimited JSON protocol on a unix socket.  Refined bounds are
checkpointed atomically — on an interval and on SIGTERM — so the Section
4.1 amortization argument ("bounds improve along beliefs naturally
generated during recovery") survives restarts: the next daemon warm-starts
from the persisted set via :func:`repro.io.load_bound_set` instead of
re-paying RA-Bound seeding and bootstrap refinement.

* :mod:`repro.serve.service` — :class:`PolicyService`: engine warm-up,
  the session registry, checkpointing, drain.
* :mod:`repro.serve.protocol` — request/response schema and dispatch.
* :mod:`repro.serve.daemon` — unix-socket server, supervisor loop, signal
  handling, interval checkpointing.
* :mod:`repro.serve.client` — a small blocking client for tests, smoke
  checks, and ad-hoc operation.

Run it with ``python -m repro.serve --model model.npz --socket /tmp/repro.sock``.
"""

from repro.serve.client import ServiceClient
from repro.serve.daemon import PolicyDaemon
from repro.serve.service import PolicyService, ServiceConfig

__all__ = [
    "PolicyDaemon",
    "PolicyService",
    "ServiceClient",
    "ServiceConfig",
]
