"""Tests for repro.mdp.model."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.mdp.model import MDP


def two_state_mdp(discount: float = 1.0) -> MDP:
    """Fault/null toy: action 0 repairs, action 1 idles."""
    transitions = np.array(
        [
            [[0.0, 1.0], [0.0, 1.0]],  # repair: fault -> null, null loops
            [[1.0, 0.0], [0.0, 1.0]],  # idle
        ]
    )
    rewards = np.array([[-0.5, 0.0], [-1.0, 0.0]])
    return MDP(
        transitions=transitions,
        rewards=rewards,
        state_labels=("fault", "null"),
        action_labels=("repair", "idle"),
        discount=discount,
    )


class TestConstruction:
    def test_shapes(self):
        mdp = two_state_mdp()
        assert mdp.n_states == 2
        assert mdp.n_actions == 2

    def test_default_labels_generated(self):
        mdp = MDP(
            transitions=np.array([[[1.0]]]),
            rewards=np.array([[0.0]]),
        )
        assert mdp.state_labels == ("s0",)
        assert mdp.action_labels == ("a0",)

    def test_non_stochastic_rejected(self):
        with pytest.raises(ModelError):
            MDP(
                transitions=np.array([[[0.5, 0.4], [0.0, 1.0]]]),
                rewards=np.array([[0.0, 0.0]]),
            )

    def test_reward_shape_mismatch_rejected(self):
        with pytest.raises(ModelError, match="rewards"):
            MDP(
                transitions=np.array([[[1.0, 0.0], [0.0, 1.0]]]),
                rewards=np.array([[0.0]]),
            )

    def test_bad_discount_rejected(self):
        with pytest.raises(ModelError, match="discount"):
            two_state_mdp(discount=1.5)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ModelError, match="unique"):
            MDP(
                transitions=np.array([[[1.0, 0.0], [0.0, 1.0]]]),
                rewards=np.array([[0.0, 0.0]]),
                state_labels=("x", "x"),
            )

    def test_wrong_label_count_rejected(self):
        with pytest.raises(ModelError, match="state labels"):
            MDP(
                transitions=np.array([[[1.0, 0.0], [0.0, 1.0]]]),
                rewards=np.array([[0.0, 0.0]]),
                state_labels=("only-one",),
            )

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            MDP(
                transitions=np.zeros((0, 1, 1)),
                rewards=np.zeros((0, 1)),
            )


class TestIndices:
    def test_state_index(self):
        mdp = two_state_mdp()
        assert mdp.state_index("null") == 1

    def test_action_index(self):
        mdp = two_state_mdp()
        assert mdp.action_index("repair") == 0

    def test_unknown_label_raises_keyerror(self):
        with pytest.raises(KeyError):
            two_state_mdp().state_index("nope")


class TestChains:
    def test_uniform_chain_is_action_mean(self):
        mdp = two_state_mdp()
        chain, reward = mdp.uniform_chain()
        assert np.allclose(chain[0], [0.5, 0.5])  # mean of repair/idle rows
        assert np.isclose(reward[0], -0.75)

    def test_policy_chain_selects_rows(self):
        mdp = two_state_mdp()
        chain, reward = mdp.policy_chain(np.array([0, 1]))
        assert np.allclose(chain[0], [0.0, 1.0])
        assert np.isclose(reward[0], -0.5)
        assert np.isclose(reward[1], 0.0)

    def test_policy_chain_validates_shape(self):
        with pytest.raises(ModelError):
            two_state_mdp().policy_chain(np.array([0]))

    def test_policy_chain_validates_range(self):
        with pytest.raises(ModelError):
            two_state_mdp().policy_chain(np.array([0, 5]))


class TestWithDiscount:
    def test_returns_new_instance(self):
        mdp = two_state_mdp()
        discounted = mdp.with_discount(0.5)
        assert discounted.discount == 0.5
        assert mdp.discount == 1.0
        assert np.array_equal(discounted.transitions, mdp.transitions)
