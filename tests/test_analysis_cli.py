"""Tests for ``python -m repro.analysis`` (exit codes and rendering)."""

import numpy as np

from repro.analysis.__main__ import main
from repro.io import save_pomdp, save_recovery_model


class TestBuiltinModels:
    def test_emn_clean_exit_zero(self, capsys):
        assert main(["--emn"]) == 0
        out = capsys.readouterr().out
        assert "Static analysis" in out
        assert "R201" in out
        assert "0 error(s)" in out

    def test_all_shipped_systems(self, capsys):
        assert main(["--emn", "--simple", "--tiered"]) == 0
        out = capsys.readouterr().out
        assert out.count("Static analysis") == 3

    def test_no_info_hides_r2xx(self, capsys):
        main(["--simple", "--no-info"])
        out = capsys.readouterr().out
        assert "R201" not in out

    def test_json_output(self, capsys):
        import json

        assert main(["--simple", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["exit_code"] == 0
        assert any(f["code"] == "R201" for f in payload[0]["findings"])

    def test_format_json(self, capsys):
        import json

        assert main(["--simple", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["exit_code"] == 0
        finding = payload[0]["findings"][0]
        # Machine-readable findings carry the full field set.
        assert set(finding) >= {
            "code",
            "severity",
            "message",
            "location",
            "states",
            "actions",
            "fix_hint",
        }

    def test_format_text_is_default(self, capsys):
        assert main(["--simple", "--format", "text"]) == 0
        assert "Static analysis" in capsys.readouterr().out

    def test_codes_table(self, capsys):
        assert main(["--codes"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "R105" in out and "R202" in out
        # The new pass families are registered.
        assert "R302" in out and "R901" in out

    def test_no_target_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "at least one model" in capsys.readouterr().err


class TestArchives:
    def test_saved_model_round_trip(self, tmp_path, simple_system, capsys):
        path = tmp_path / "model.npz"
        save_recovery_model(path, simple_system.model)
        assert main([str(path)]) == 0
        assert str(path) in capsys.readouterr().out

    def test_saved_pomdp_archive(self, tmp_path, simple_system, capsys):
        path = tmp_path / "pomdp.npz"
        save_pomdp(path, simple_system.model.pomdp)
        assert main([str(path)]) == 0
        capsys.readouterr()

    def test_sparse_v2_archive_analyzes_on_native_containers(
        self, tmp_path, simple_system, capsys
    ):
        """A v2 sparse archive loads into a view without densification."""
        from repro.recovery.model import convert_backend

        path = tmp_path / "sparse-model.npz"
        save_recovery_model(path, convert_backend(simple_system.model))
        assert main([str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_broken_model_reports_everything_at_once(self, tmp_path, capsys):
        """Acceptance: positive reward + unrecoverable state => both
        diagnostics in one run, exit code 2 (not fail-fast)."""
        transitions = np.zeros((2, 3, 3))
        transitions[0] = [[1, 0, 0], [1, 0, 0], [0, 0, 1]]  # fault-b stuck
        transitions[1] = np.eye(3)
        observations = np.full((2, 3, 2), 0.5)
        rewards = np.array([[0.0, -1.0, -1.0], [0.0, 0.3, -0.2]])  # positive!
        path = tmp_path / "broken.npz"
        np.savez_compressed(
            path,
            kind=np.array("recovery-model"),
            version=np.array(1),
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            state_labels=np.array(["null", "fault-a", "fault-b"]),
            action_labels=np.array(["repair", "observe"]),
            observation_labels=np.array(["clear", "alarm"]),
            discount=np.array(1.0),
            null_states=np.array([True, False, False]),
            rate_rewards=np.array([0.0, -1.0, -1.0]),
            durations=np.array([10.0, 5.0]),
            passive_actions=np.array([False, True]),
            recovery_notification=np.array(True),
        )
        assert main([str(path)]) == 2
        out = capsys.readouterr().out
        assert "R004" in out  # unrecoverable fault-b
        assert "R005" in out  # positive reward
        assert "fault-b" in out

    def test_unreadable_archive_is_load_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an archive")
        assert main([str(path)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_wrong_kind_rejected(self, tmp_path, capsys):
        path = tmp_path / "bounds.npz"
        np.savez_compressed(path, kind=np.array("bound-set"))
        assert main([str(path)]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestForceFlag:
    def test_force_overrides_size_cutoffs(self, monkeypatch, capsys):
        """--force runs gated passes; without it the R203 skip is reported."""
        import repro.analysis.passes as passes
        from repro.analysis import ModelView, analyze
        from repro.linalg.backends import (
            sparsify_observations,
            sparsify_rewards,
            sparsify_transitions,
        )

        monkeypatch.setattr(passes, "SPARSE_SOLVE_SKIP_STATES", 1)
        rng = np.random.default_rng(0)
        transitions = rng.dirichlet(np.ones(3), size=(2, 3))
        view = ModelView(
            transitions=sparsify_transitions(transitions),
            observations=sparsify_observations(
                rng.dirichlet(np.ones(2), size=(2, 3))
            ),
            rewards=sparsify_rewards(-np.ones((2, 3))),
        )
        gated = analyze(view)
        assert any(d.code == "R203" for d in gated.findings)
        forced = analyze(view, force=True)
        assert not any(d.code == "R203" for d in forced.findings)

    def test_force_flag_accepted_by_cli(self, capsys):
        assert main(["--simple", "--force"]) == 0
        capsys.readouterr()


class TestWarningExitCode:
    def test_warnings_only_exit_one(self, tmp_path, capsys):
        # A clean-but-suspicious pomdp: dead observation symbol.
        transitions = np.zeros((1, 2, 2))
        transitions[0] = [[0.5, 0.5], [0.0, 1.0]]
        observations = np.zeros((1, 2, 3))
        observations[0, :, 0] = 1.0  # symbols 1 and 2 never emitted
        rewards = np.array([[-1.0, 0.0]])
        path = tmp_path / "warn.npz"
        np.savez_compressed(
            path,
            kind=np.array("pomdp"),
            version=np.array(1),
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            state_labels=np.array(["a", "b"]),
            action_labels=np.array(["act"]),
            observation_labels=np.array(["o0", "o1", "o2"]),
            discount=np.array(0.9),
        )
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "R104" in out
