"""Markov decision process substrate.

This package is the fully-observable foundation that Section 2 of the paper
builds on: the MDP model type, exact solvers (value and policy iteration),
stationary policies and their evaluation, the linear-system solvers used for
the RA-Bound (Gauss-Seidel with successive over-relaxation, per Section 3.1),
and the state-classification analysis used to decide whether an undiscounted
chain has a finite expected accumulated reward.
"""

from repro.mdp.classify import (
    ChainClassification,
    SCCSummary,
    classify_chain,
    scc_summary,
)
from repro.mdp.linear_solvers import (
    gauss_seidel,
    jacobi,
    solve_direct,
    solve_markov_reward,
)
from repro.mdp.model import MDP
from repro.mdp.modified_policy_iteration import modified_policy_iteration
from repro.mdp.policy import Policy, evaluate_policy
from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.value_iteration import MDPSolution, value_iteration

__all__ = [
    "MDP",
    "ChainClassification",
    "MDPSolution",
    "Policy",
    "SCCSummary",
    "classify_chain",
    "scc_summary",
    "evaluate_policy",
    "gauss_seidel",
    "jacobi",
    "modified_policy_iteration",
    "policy_iteration",
    "solve_direct",
    "solve_markov_reward",
    "value_iteration",
]
