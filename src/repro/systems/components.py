"""Components, hosts, and deployments.

A deployment is the static architecture the recovery model is generated
from: which software components exist, which host each one runs on, and how
long the available repair actions (component restart, host reboot) take.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelError


@dataclass(frozen=True)
class Host:
    """A physical or virtual machine.

    Attributes:
        name: unique host name.
        reboot_duration: seconds a full reboot takes (all components on the
            host are unavailable throughout).
    """

    name: str
    reboot_duration: float

    def __post_init__(self):
        if self.reboot_duration < 0:
            raise ModelError(
                f"host {self.name!r} has negative reboot duration"
            )


@dataclass(frozen=True)
class Component:
    """A software component pinned to a host.

    Attributes:
        name: unique component name.
        host: name of the host it runs on.
        restart_duration: seconds a restart takes (the component is
            unavailable throughout).
    """

    name: str
    host: str
    restart_duration: float

    def __post_init__(self):
        if self.restart_duration < 0:
            raise ModelError(
                f"component {self.name!r} has negative restart duration"
            )


@dataclass(frozen=True)
class Deployment:
    """The component-to-host architecture of the target system."""

    hosts: tuple[Host, ...]
    components: tuple[Component, ...]

    def __post_init__(self):
        host_names = [host.name for host in self.hosts]
        if len(set(host_names)) != len(host_names):
            raise ModelError(f"duplicate host names in {host_names}")
        component_names = [component.name for component in self.components]
        if len(set(component_names)) != len(component_names):
            raise ModelError(f"duplicate component names in {component_names}")
        known = set(host_names)
        for component in self.components:
            if component.host not in known:
                raise ModelError(
                    f"component {component.name!r} is placed on unknown host "
                    f"{component.host!r}"
                )

    def host(self, name: str) -> Host:
        """The host called ``name``."""
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    def component(self, name: str) -> Component:
        """The component called ``name``."""
        for component in self.components:
            if component.name == name:
                return component
        raise KeyError(name)

    def components_on(self, host_name: str) -> tuple[str, ...]:
        """Names of the components deployed on ``host_name``."""
        if host_name not in {host.name for host in self.hosts}:
            raise KeyError(host_name)
        return tuple(
            component.name
            for component in self.components
            if component.host == host_name
        )

    def host_of(self, component_name: str) -> str:
        """Name of the host that runs ``component_name``."""
        return self.component(component_name).host
