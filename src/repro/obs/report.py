"""Aggregate a telemetry JSONL run into a human-readable report.

``python -m repro.obs report run.jsonl`` renders, from the event stream
alone (no live process needed):

* campaign/episode outcomes — injections, recoveries, early terminations;
* decision statistics — decisions, tie-breaks toward ``a_T``, notification
  exits, lookahead tree size;
* the bound-refinement story — refinements attempted/accepted, the bound
  improvement delivered, and the vector-set size trajectory (the paper's
  Figure 5(b) storage curve, observed on a live campaign);
* solver routing and joint-factor cache effectiveness;
* wall-clock spans (outside the determinism contract, like
  ``algorithm_time``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.util.tables import render_table


def session_of(record: dict[str, Any]) -> str | None:
    """The session label an event carries, or ``None`` for global events.

    Service-labelled sessions tag their ``decision`` and ``slow_decision``
    events with a top-level ``session`` field and their trace spans with a
    ``session`` span argument (see
    :meth:`repro.controllers.engine.RecoverySession.span_attributes`).
    """
    session = record.get("session")
    if session is not None:
        return str(session)
    args = record.get("args")
    if isinstance(args, dict) and args.get("session") is not None:
        return str(args["session"])
    return None


@dataclass
class RunAggregate:
    """Everything the report renders, folded out of one event stream."""

    events: int = 0
    session_filter: str | None = None
    kinds: dict[str, int] = field(default_factory=dict)
    campaigns: list[dict[str, Any]] = field(default_factory=list)
    episodes: int = 0
    recovered: int = 0
    early_terminations: int = 0
    steps: int = 0
    total_cost: float = 0.0
    refinements: int = 0
    refinements_added: int = 0
    refinement_improvement: float = 0.0
    set_size_first: int | None = None
    set_size_max: int = 0
    set_size_last: int | None = None
    belief_update_failures: int = 0
    solver_dispatches: dict[str, int] = field(default_factory=dict)
    summary: dict[str, Any] | None = None


def aggregate_stream(
    path: str | Path, session: str | None = None
) -> RunAggregate:
    """Fold a JSONL run file into a :class:`RunAggregate`.

    With ``session`` set, events labelled with a *different* session id
    are skipped, narrowing a multi-session daemon stream to one
    recovery's story.  Unlabelled events — campaign lifecycle, bound
    refinement, cache outcomes, the summary — are shared state and stay
    in the aggregate.
    """
    aggregate = RunAggregate(session_filter=session)
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            if not line.strip():
                continue
            record = json.loads(line)
            if session is not None:
                label = session_of(record)
                if label is not None and label != session:
                    continue
            kind = record.get("event", "?")
            aggregate.events += 1
            aggregate.kinds[kind] = aggregate.kinds.get(kind, 0) + 1
            if kind == "campaign_start":
                aggregate.campaigns.append(
                    {key: record.get(key) for key in ("controller", "injections")}
                )
            elif kind == "episode_end":
                aggregate.episodes += 1
                aggregate.steps += int(record.get("steps", 0))
                aggregate.total_cost += float(record.get("cost", 0.0))
                if record.get("recovered"):
                    aggregate.recovered += 1
                elif record.get("terminated"):
                    aggregate.early_terminations += 1
            elif kind == "refine":
                aggregate.refinements += 1
                if record.get("added"):
                    aggregate.refinements_added += 1
                    aggregate.refinement_improvement += float(
                        record.get("improvement", 0.0)
                    )
                size = int(record.get("set_size", 0))
                if aggregate.set_size_first is None:
                    aggregate.set_size_first = size
                aggregate.set_size_max = max(aggregate.set_size_max, size)
                aggregate.set_size_last = size
            elif kind == "belief_update_failure":
                aggregate.belief_update_failures += 1
            elif kind == "solver_dispatch":
                method = str(record.get("method"))
                aggregate.solver_dispatches[method] = (
                    aggregate.solver_dispatches.get(method, 0) + 1
                )
            elif kind == "summary":
                aggregate.summary = record
    return aggregate


def _cache_lines(summary: dict[str, Any]) -> list[str]:
    process = summary.get("process_counters", {})
    hits = int(process.get("cache.hits", 0))
    builds = int(process.get("cache.builds", 0))
    declines = int(process.get("cache.declines", 0))
    lookups = hits + builds + declines
    if lookups == 0:
        return []
    ratio = hits / lookups
    return [
        "Joint-factor cache: "
        f"{lookups} lookups, {hits} hits ({ratio:.1%}), "
        f"{builds} builds, {declines} declined (process-local; varies "
        "with worker count)",
    ]


def format_report(aggregate: RunAggregate) -> str:
    """Render the aggregate as the CLI report."""
    sections: list[str] = []

    campaign_rows = [
        [c.get("controller") or "-", c.get("injections") or "-"]
        for c in aggregate.campaigns
    ] or [["-", "-"]]
    title = f"Telemetry report ({aggregate.events} events)"
    if aggregate.session_filter is not None:
        title += f" — session {aggregate.session_filter}"
    sections.append(
        render_table(
            ["Controller", "Injections"],
            campaign_rows,
            title=title,
        )
    )

    sections.append(
        render_table(
            ["Episodes", "Recovered", "Early term.", "Steps", "Total cost"],
            [
                [
                    aggregate.episodes,
                    aggregate.recovered,
                    aggregate.early_terminations,
                    aggregate.steps,
                    aggregate.total_cost,
                ]
            ],
            title="Episode outcomes",
        )
    )

    if aggregate.refinements:
        acceptance = aggregate.refinements_added / aggregate.refinements
        sections.append(
            render_table(
                ["Attempted", "Accepted", "Acceptance", "Improvement",
                 "|B| first", "|B| max", "|B| last"],
                [
                    [
                        aggregate.refinements,
                        aggregate.refinements_added,
                        f"{acceptance:.1%}",
                        aggregate.refinement_improvement,
                        aggregate.set_size_first or 0,
                        aggregate.set_size_max,
                        aggregate.set_size_last or 0,
                    ]
                ],
                title="Bound refinement (Figure 5(b) storage story)",
            )
        )

    if aggregate.solver_dispatches:
        sections.append(
            render_table(
                ["Method", "Dispatches"],
                sorted(aggregate.solver_dispatches.items()),
                title="Linear-solver routing",
            )
        )

    summary = aggregate.summary
    if summary is not None:
        counters = summary.get("counters", {})
        if counters:
            sections.append(
                render_table(
                    ["Counter", "Value"],
                    sorted(counters.items()),
                    title="Deterministic counters (worker-count invariant)",
                )
            )
        timers = summary.get("timers", {})
        if timers:
            sections.append(
                render_table(
                    ["Span", "Seconds", "Calls"],
                    [
                        [name, stat.get("seconds", 0.0), stat.get("calls", 0)]
                        for name, stat in sorted(timers.items())
                    ],
                    title="Wall-clock spans (not part of the determinism "
                    "contract)",
                )
            )
        sections.extend(_cache_lines(summary))

    if aggregate.belief_update_failures:
        sections.append(
            f"Belief-update failures (re-seeded from the initial belief): "
            f"{aggregate.belief_update_failures}"
        )

    return "\n\n".join(sections)
