"""Tests for repro.mdp.classify."""

import numpy as np

from repro.mdp.classify import classify_chain, reachable_set


class TestClassifyChain:
    def test_absorbing_state_detected(self):
        chain = np.array([[0.5, 0.5], [0.0, 1.0]])
        result = classify_chain(chain)
        assert result.absorbing.tolist() == [False, True]
        assert result.recurrent.tolist() == [False, True]
        assert result.transient.tolist() == [True, False]

    def test_cycle_is_recurrent_not_absorbing(self):
        chain = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = classify_chain(chain)
        assert result.recurrent.all()
        assert not result.absorbing.any()
        assert len(result.recurrent_classes) == 1
        assert result.recurrent_classes[0] == frozenset({0, 1})

    def test_two_recurrent_classes(self):
        chain = np.array(
            [
                [0.5, 0.25, 0.25],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        result = classify_chain(chain)
        assert len(result.recurrent_classes) == 2
        assert result.transient.tolist() == [True, False, False]

    def test_identity_chain_all_absorbing(self):
        result = classify_chain(np.eye(3))
        assert result.absorbing.all()
        assert len(result.recurrent_classes) == 3

    def test_near_zero_probabilities_ignored(self):
        chain = np.array([[1.0 - 1e-15, 1e-15], [0.0, 1.0]])
        result = classify_chain(chain)
        # The 1e-15 edge is structural noise: state 0 stays recurrent.
        assert result.recurrent.tolist() == [True, True]


class TestReachableSet:
    def test_simple_path(self):
        chain = np.array(
            [
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
            ]
        )
        reached = reachable_set(chain, np.array([True, False, False]))
        assert reached.all()

    def test_unreachable_island(self):
        chain = np.eye(2)
        reached = reachable_set(chain, np.array([True, False]))
        assert reached.tolist() == [True, False]

    def test_reverse_reachability_pattern(self):
        # reachable_set on the transpose answers "who can reach the mask".
        chain = np.array([[0.0, 1.0], [0.0, 1.0]])
        can_reach_1 = reachable_set(chain.T, np.array([False, True]))
        assert can_reach_1.all()
