"""Fault-injection simulation (the experimental apparatus of Section 5).

* :mod:`repro.sim.environment` — the simulated system: holds the hidden
  true state, applies recovery actions, advances wall-clock time, accrues
  dropped-request cost, and samples monitor outputs.
* :mod:`repro.sim.metrics` — per-fault metrics (Table 1's columns) and
  their aggregation.
* :mod:`repro.sim.campaign` — drives controller-vs-environment episodes
  and whole injection campaigns.
* :mod:`repro.sim.parallel` — the campaign engine: deterministic
  per-episode seeding, chunked dispatch across a worker pool, and
  bound-refinement merge on join.
"""

from repro.sim.campaign import CampaignResult, run_campaign, run_episode
from repro.sim.environment import RecoveryEnvironment
from repro.sim.metrics import (
    EpisodeMetrics,
    MetricSummary,
    campaign_fingerprint,
    summarize,
)
from repro.sim.parallel import CampaignPlan, execute_plan, plan_campaign
from repro.sim.trace import EpisodeTrace, TraceStep, trace_episode

__all__ = [
    "CampaignPlan",
    "CampaignResult",
    "EpisodeMetrics",
    "EpisodeTrace",
    "MetricSummary",
    "RecoveryEnvironment",
    "TraceStep",
    "campaign_fingerprint",
    "execute_plan",
    "plan_campaign",
    "run_campaign",
    "run_episode",
    "summarize",
    "trace_episode",
]
