"""Tests for model and bound-set serialization."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import ModelError
from repro.io import (
    load_bound_set,
    load_pomdp,
    load_recovery_model,
    save_bound_set,
    save_pomdp,
    save_recovery_model,
)
from tests.test_pomdp_model import tiny_pomdp


class TestPOMDPRoundTrip:
    def test_arrays_and_labels_survive(self, tmp_path):
        original = tiny_pomdp(discount=0.9)
        path = tmp_path / "model.npz"
        save_pomdp(path, original)
        loaded = load_pomdp(path)
        assert np.array_equal(loaded.transitions, original.transitions)
        assert np.array_equal(loaded.observations, original.observations)
        assert np.array_equal(loaded.rewards, original.rewards)
        assert loaded.state_labels == original.state_labels
        assert loaded.action_labels == original.action_labels
        assert loaded.observation_labels == original.observation_labels
        assert loaded.discount == original.discount

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bounds.npz"
        save_bound_set(path, BoundVectorSet(np.array([-1.0, 0.0])))
        with pytest.raises(ModelError, match="expected pomdp"):
            load_pomdp(path)


class TestRecoveryModelRoundTrip:
    def test_unnotified_model(self, tmp_path, simple_system):
        path = tmp_path / "recovery.npz"
        save_recovery_model(path, simple_system.model)
        loaded = load_recovery_model(path)
        original = simple_system.model
        assert loaded.terminate_state == original.terminate_state
        assert loaded.terminate_action == original.terminate_action
        assert loaded.operator_response_time == original.operator_response_time
        assert np.array_equal(loaded.null_states, original.null_states)
        assert np.array_equal(loaded.durations, original.durations)
        assert np.array_equal(
            loaded.passive_actions, original.passive_actions
        )
        assert np.array_equal(
            loaded.pomdp.rewards, original.pomdp.rewards
        )

    def test_notified_model(self, tmp_path, simple_notified_system):
        path = tmp_path / "recovery.npz"
        save_recovery_model(path, simple_notified_system.model)
        loaded = load_recovery_model(path)
        assert loaded.recovery_notification
        assert loaded.terminate_state is None
        assert loaded.operator_response_time is None

    def test_emn_round_trip_preserves_behaviour(self, tmp_path, emn_system):
        """The reloaded model must produce the identical RA-Bound."""
        path = tmp_path / "emn.npz"
        save_recovery_model(path, emn_system.model)
        loaded = load_recovery_model(path)
        assert np.allclose(
            ra_bound_vector(loaded.pomdp),
            ra_bound_vector(emn_system.model.pomdp),
        )


class TestBoundSetRoundTrip:
    def test_vectors_usage_and_pinning_survive(self, tmp_path):
        bound_set = BoundVectorSet(np.array([-2.0, -3.0]), max_vectors=5)
        bound_set.add(np.array([-1.0, -4.0]))
        bound_set.value(np.array([1.0, 0.0]))  # bump a usage counter
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        loaded = load_bound_set(path)
        assert np.array_equal(loaded.vectors, bound_set.vectors)
        assert np.array_equal(loaded._usage, bound_set._usage)
        assert loaded._pinned == bound_set._pinned
        assert loaded.max_vectors == 5

    def test_unlimited_storage_round_trip(self, tmp_path):
        bound_set = BoundVectorSet(np.array([-1.0, -1.0]))
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        assert load_bound_set(path).max_vectors is None

    def test_loaded_set_evaluates_identically(self, tmp_path, simple_system):
        pomdp = simple_system.model.pomdp
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        loaded = load_bound_set(path)
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=16):
            assert np.isclose(loaded.value(belief), bound_set.value(belief))
