"""Tests for the Max-Avg lookahead tree (Figure 1(b))."""

import numpy as np
import pytest

from repro.pomdp.belief import belief_bellman_backup
from repro.pomdp.tree import expand_tree
from tests.conftest import random_pomdp
from tests.test_pomdp_model import tiny_pomdp


class ZeroLeaf:
    def value(self, belief):
        return 0.0

    def value_batch(self, beliefs):
        return np.zeros(np.atleast_2d(beliefs).shape[0])


class LinearLeaf:
    """pi . w — a single-hyperplane leaf for cross-checks."""

    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=float)

    def value(self, belief):
        return float(belief @ self.weights)

    def value_batch(self, beliefs):
        return np.atleast_2d(beliefs) @ self.weights


class TestDepthOne:
    def test_equals_bellman_backup(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.5, 0.5])
        leaf = LinearLeaf([-2.0, 0.0])
        decision = expand_tree(pomdp, belief, depth=1, leaf=leaf)
        direct = belief_bellman_backup(pomdp, belief, leaf.value)
        assert np.isclose(decision.value, direct)

    def test_picks_repair_in_fault_belief(self):
        pomdp = tiny_pomdp()
        decision = expand_tree(
            pomdp, np.array([1.0, 0.0]), depth=1, leaf=LinearLeaf([-2.0, 0.0])
        )
        assert decision.action == 0  # repair beats idle (-0.5 vs -1-2)

    def test_action_values_complete(self):
        pomdp = tiny_pomdp()
        decision = expand_tree(
            pomdp, np.array([0.5, 0.5]), depth=1, leaf=ZeroLeaf()
        )
        assert decision.action_values.shape == (pomdp.n_actions,)
        assert np.isfinite(decision.action_values).all()

    def test_counts_leaves(self):
        pomdp = tiny_pomdp()
        decision = expand_tree(
            pomdp, np.array([0.5, 0.5]), depth=1, leaf=ZeroLeaf()
        )
        assert decision.leaf_evaluations > 0
        assert decision.nodes == 1


class TestAllowedActions:
    def test_masked_action_excluded(self):
        pomdp = tiny_pomdp()
        allowed = np.array([False, True])
        decision = expand_tree(
            pomdp,
            np.array([1.0, 0.0]),
            depth=1,
            leaf=ZeroLeaf(),
            allowed_actions=allowed,
        )
        assert decision.action == 1
        assert decision.action_values[0] == -np.inf

    def test_mask_only_applies_to_root(self):
        pomdp = tiny_pomdp()
        allowed = np.array([False, True])
        # Depth 2: the inner node may still use action 0, which the root value
        # of action 1 benefits from — just check it runs and yields finite v.
        decision = expand_tree(
            pomdp,
            np.array([1.0, 0.0]),
            depth=2,
            leaf=ZeroLeaf(),
            allowed_actions=allowed,
        )
        assert np.isfinite(decision.value)


class TestDeeperTrees:
    def test_depth_two_matches_nested_backup(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.6, 0.4])
        leaf = LinearLeaf([-3.0, -0.1])
        decision = expand_tree(pomdp, belief, depth=2, leaf=leaf)
        nested = belief_bellman_backup(
            pomdp,
            belief,
            lambda b: belief_bellman_backup(pomdp, b, leaf.value),
        )
        assert np.isclose(decision.value, nested, atol=1e-10)

    def test_deeper_never_worse_with_zero_leaf_upper_bound(self):
        # With the trivial zero *upper* bound at the leaves, value estimates
        # shrink (get more realistic) as depth grows: more real costs folded.
        pomdp = tiny_pomdp()
        belief = np.array([0.5, 0.5])
        v1 = expand_tree(pomdp, belief, depth=1, leaf=ZeroLeaf()).value
        v2 = expand_tree(pomdp, belief, depth=2, leaf=ZeroLeaf()).value
        assert v2 <= v1 + 1e-12

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            expand_tree(
                tiny_pomdp(), np.array([0.5, 0.5]), depth=0, leaf=ZeroLeaf()
            )


class TestMonotonicityInLeaf:
    def test_better_leaf_never_lowers_root(self):
        rng = np.random.default_rng(5)
        pomdp = random_pomdp(rng)
        belief = rng.dirichlet(np.ones(pomdp.n_states))
        low = LinearLeaf(-rng.uniform(1, 3, size=pomdp.n_states))
        high = LinearLeaf(low.weights + rng.uniform(0, 1, size=pomdp.n_states))
        v_low = expand_tree(pomdp, belief, depth=2, leaf=low).value
        v_high = expand_tree(pomdp, belief, depth=2, leaf=high).value
        assert v_high >= v_low - 1e-9
