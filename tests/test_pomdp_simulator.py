"""Tests for the ground-truth POMDP simulator."""

import numpy as np
import pytest

from repro.exceptions import ControllerError
from repro.pomdp.simulator import POMDPSimulator
from tests.test_pomdp_model import tiny_pomdp


class TestLifecycle:
    def test_state_before_reset_raises(self):
        simulator = POMDPSimulator(tiny_pomdp(), seed=0)
        with pytest.raises(ControllerError):
            _ = simulator.state

    def test_reset_validates_state(self):
        simulator = POMDPSimulator(tiny_pomdp(), seed=0)
        with pytest.raises(ControllerError):
            simulator.reset(9)

    def test_step_validates_action(self):
        simulator = POMDPSimulator(tiny_pomdp(), seed=0)
        simulator.reset(0)
        with pytest.raises(ControllerError):
            simulator.step(7)


class TestDynamics:
    def test_deterministic_transition_followed(self):
        simulator = POMDPSimulator(tiny_pomdp(), seed=0)
        simulator.reset(0)
        result = simulator.step(0)  # repair: fault -> null surely
        assert result.state == 1
        assert simulator.state == 1

    def test_reward_comes_from_origin_state(self):
        simulator = POMDPSimulator(tiny_pomdp(), seed=0)
        simulator.reset(0)
        result = simulator.step(0)
        assert result.reward == -0.5  # r(fault, repair)

    def test_observation_distribution_respected(self):
        pomdp = tiny_pomdp()
        simulator = POMDPSimulator(pomdp, seed=42)
        counts = np.zeros(2)
        for _ in range(2000):
            simulator.reset(0)
            result = simulator.step(1)  # idle: stays in fault
            counts[result.observation] += 1
        frequencies = counts / counts.sum()
        # q(alarm | fault, idle) = 0.9
        assert abs(frequencies[0] - 0.9) < 0.03

    def test_observe_without_transition(self):
        pomdp = tiny_pomdp()
        simulator = POMDPSimulator(pomdp, seed=1)
        simulator.reset(1)
        counts = np.zeros(2)
        for _ in range(2000):
            counts[simulator.observe(1)] += 1
        assert simulator.state == 1  # observe never moves the state
        assert abs(counts[1] / counts.sum() - 0.8) < 0.03

    def test_seeded_runs_reproduce(self):
        trajectories = []
        for _ in range(2):
            simulator = POMDPSimulator(tiny_pomdp(), seed=123)
            simulator.reset(0)
            trajectories.append(
                [simulator.step(1).observation for _ in range(20)]
            )
        assert trajectories[0] == trajectories[1]
