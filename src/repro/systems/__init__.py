"""Target-system models.

Generic abstractions for describing a monitored distributed deployment —
components on hosts (:mod:`repro.systems.components`), fault types
(:mod:`repro.systems.faults`), request-mix workloads
(:mod:`repro.systems.workload`), and component/path monitors
(:mod:`repro.systems.monitors`) — plus the two concrete systems the paper
uses: the EMN e-commerce deployment of Figure 4
(:mod:`repro.systems.emn`) and the two-server worked example of Figure 1(a)
(:mod:`repro.systems.simple`).
"""

from repro.systems.components import Component, Deployment, Host
from repro.systems.emn import EMNSystem, build_emn_system
from repro.systems.faults import Fault, FaultKind, unavailable_components
from repro.systems.monitors import ComponentMonitor, PathMonitor, observation_matrix
from repro.systems.simple import build_simple_system
from repro.systems.tiered import (
    TieredSystem,
    build_tiered_system,
    solve_tiered_ra_bound,
    tiered_ra_chain,
)
from repro.systems.workload import RequestPath, drop_fraction

__all__ = [
    "Component",
    "ComponentMonitor",
    "Deployment",
    "EMNSystem",
    "Fault",
    "FaultKind",
    "Host",
    "PathMonitor",
    "RequestPath",
    "TieredSystem",
    "build_emn_system",
    "build_simple_system",
    "build_tiered_system",
    "solve_tiered_ra_bound",
    "tiered_ra_chain",
    "drop_fraction",
    "observation_matrix",
    "unavailable_components",
]
