"""Branch-and-bound recovery controller (the paper's named future work).

The conclusion of the paper lists "generation of upper bounds in addition
to the lower bounds to facilitate branch and bound techniques" as an
extension.  This controller implements it: at every decision node of the
finite-depth expansion it first scores each action *optimistically* with a
one-step backup of the sawtooth upper bound; actions whose optimistic score
cannot beat the best *pessimistic* (lower-bound) score found so far are
pruned without expanding their observation subtrees.

The chosen action is identical to the plain bounded controller's — pruning
is sound because an action whose upper bound is below another action's
lower bound can never be the argmax — so the pay-off is purely
computational, and the controller records its pruning statistics so the
benefit is measurable (see ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

import numpy as np

from repro.bounds.incremental import refine_at
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.sawtooth import SawtoothUpperBound
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.base import Decision, RecoveryController
from repro.controllers.bounded import TIE_EPSILON
from repro.pomdp.belief import GAMMA_EPSILON
from repro.recovery.model import RecoveryModel


class BranchAndBoundController(RecoveryController):
    """Bounded controller with upper-bound action pruning.

    With ``certified_termination`` the controller additionally implements
    the first item of the paper's future-work list — "providing of
    guarantees against early termination of the recovery process": it
    chooses ``a_T`` only when the termination reward is at least the
    *upper bound* of every alternative action's value, i.e. when
    terminating is provably optimal under the model.  Until that
    certificate holds, the best non-terminate action runs instead, so the
    controller can never quit while the model can prove recovery is the
    better deal.  (The guarantee is model-relative, like everything else:
    the robustness experiment shows what model overtrust does to it.)

    Args:
        model: the (augmented) recovery model.
        depth: lookahead depth.
        lower: lower-bound hyperplane set (RA-Bound-seeded when None).
        upper: sawtooth upper bound (QMDP-corner-seeded when None).
        refine_online: refine both bounds at every visited belief.
        refine_min_improvement: lower-bound acceptance threshold.
        certified_termination: require the upper-bound certificate before
            choosing ``a_T`` (see above).
    """

    CAMPAIGN_COUNTERS = (
        "expanded_actions",
        "pruned_actions",
        "withheld_terminations",
    )

    def refinement_state(self):
        """The branch-and-bound controller refines its *lower* set."""
        return self.lower

    def __init__(
        self,
        model: RecoveryModel,
        depth: int = 1,
        lower: BoundVectorSet | None = None,
        upper: SawtoothUpperBound | None = None,
        refine_online: bool = True,
        refine_min_improvement: float = 0.0,
        certified_termination: bool = False,
        preflight: bool = False,
    ):
        super().__init__(model, preflight=preflight)
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        if lower is None:
            lower = BoundVectorSet(ra_bound_vector(model.pomdp))
        if upper is None:
            upper = SawtoothUpperBound(model.pomdp)
        self.lower = lower
        self.upper = upper
        self.refine_online = refine_online
        self.refine_min_improvement = refine_min_improvement
        self.certified_termination = certified_termination
        self.expanded_actions = 0
        self.pruned_actions = 0
        self.withheld_terminations = 0
        self.name = f"branch-and-bound (depth {depth})"

    # -- lookahead with pruning ---------------------------------------------

    def _children(self, belief: np.ndarray, action: int):
        pomdp = self.model.pomdp
        predicted = belief @ pomdp.transitions[action]
        joint = predicted[:, None] * pomdp.observations[action]
        gamma = joint.sum(axis=0)
        reachable = gamma > GAMMA_EPSILON
        posteriors = (joint[:, reachable] / gamma[reachable]).T
        return gamma[reachable], posteriors

    def _optimistic_action_value(self, belief: np.ndarray, action: int) -> float:
        """One-step backup of the sawtooth bound — an upper bound on the
        action's value at any remaining depth (monotonicity of L_p)."""
        pomdp = self.model.pomdp
        gamma, posteriors = self._children(belief, action)
        future = self.upper.value_batch(posteriors)
        return float(belief @ pomdp.rewards[action]) + pomdp.discount * float(
            gamma @ future
        )

    def _node_value(self, belief: np.ndarray, remaining: int) -> float:
        pomdp = self.model.pomdp
        rewards = pomdp.rewards @ belief
        # Cheap pessimistic scores first: order actions best-first so the
        # incumbent is strong early and pruning bites.
        optimistic = np.array(
            [
                self._optimistic_action_value(belief, action)
                for action in range(pomdp.n_actions)
            ]
        )
        order = np.argsort(-optimistic)
        incumbent = -np.inf
        for action in order:
            if optimistic[action] <= incumbent + TIE_EPSILON:
                self.pruned_actions += 1
                continue
            self.expanded_actions += 1
            gamma, posteriors = self._children(belief, int(action))
            if remaining == 1:
                future = self.lower.value_batch(posteriors)
            else:
                future = np.array(
                    [
                        self._node_value(child, remaining - 1)
                        for child in posteriors
                    ]
                )
            value = float(rewards[action]) + pomdp.discount * float(
                gamma @ future
            )
            incumbent = max(incumbent, value)
        return incumbent

    def _decide(self, belief: np.ndarray) -> Decision:
        pomdp = self.model.pomdp
        if (
            self.model.recovery_notification
            and self.model.recovered_probability(belief) >= 1.0 - 1e-9
        ):
            return self._terminate_decision(value=0.0)
        if self.refine_online:
            refine_at(
                pomdp, self.lower, belief,
                min_improvement=self.refine_min_improvement,
            )
            self.upper.refine_at(belief)

        optimistic = np.array(
            [
                self._optimistic_action_value(belief, action)
                for action in range(pomdp.n_actions)
            ]
        )
        order = np.argsort(-optimistic)
        rewards = pomdp.rewards @ belief
        best_action = -1
        best_value = -np.inf
        for action in order:
            if optimistic[action] <= best_value + TIE_EPSILON:
                self.pruned_actions += 1
                continue
            self.expanded_actions += 1
            gamma, posteriors = self._children(belief, int(action))
            if self.depth == 1:
                future = self.lower.value_batch(posteriors)
            else:
                future = np.array(
                    [
                        self._node_value(child, self.depth - 1)
                        for child in posteriors
                    ]
                )
            value = float(rewards[action]) + pomdp.discount * float(
                gamma @ future
            )
            if value > best_value:
                best_value = value
                best_action = int(action)

        terminate = self.model.terminate_action
        if terminate is not None and best_action != terminate:
            # Same terminate-on-tie policy as the bounded controller: the
            # pruning loop may have skipped a_T when it merely tied.
            gamma, posteriors = self._children(belief, terminate)
            terminate_value = float(rewards[terminate]) + pomdp.discount * float(
                gamma @ self.lower.value_batch(posteriors)
            )
            if terminate_value >= best_value - TIE_EPSILON:
                best_action = terminate
                best_value = max(best_value, terminate_value)
        if (
            self.certified_termination
            and terminate is not None
            and best_action == terminate
        ):
            # Future-work guarantee: only terminate when no alternative's
            # *upper bound* exceeds the termination value — i.e. the model
            # cannot prove that continuing recovery would be better.
            terminate_value = float(rewards[terminate])
            rivals = [
                action
                for action in range(pomdp.n_actions)
                if action != terminate
                and optimistic[action] > terminate_value + TIE_EPSILON
            ]
            if rivals:
                self.withheld_terminations += 1
                best_action = max(
                    rivals, key=lambda action: float(optimistic[action])
                )
                # Re-score the substitute action pessimistically for the
                # decision record.
                gamma, posteriors = self._children(belief, best_action)
                best_value = float(rewards[best_action]) + pomdp.discount * float(
                    gamma @ self.lower.value_batch(posteriors)
                )
        return Decision(
            action=best_action,
            is_terminate=best_action == terminate,
            value=best_value,
        )
