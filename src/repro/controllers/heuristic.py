"""The heuristic baseline policy (Section 5, and [8]).

Identical lookahead machinery to the bounded controller, but the leaves of
the finite-depth expansion carry a *heuristic* approximation instead of a
provable bound: "the value of a belief-state is approximated as
``(1 - P[s_phi]) * max_{a,s} r(s,a)`` (i.e., the product of the probability
that the system hasn't recovered with the cost of the most expensive
recovery action available to the system)".

The formula and the prose disagree once rewards are non-positive: the
literal ``max`` picks the *cheapest* entry (usually 0), which collapses the
heuristic to the trivial upper bound, while the prose's "most expensive
recovery action" is the ``min``.  The prose reading is the default because
it is the only one that reproduces the paper's heuristic-controller
behaviour; the literal reading stays available via ``literal_max=True``
(see DESIGN.md, "substitutions").

Because heuristic leaves carry no termination semantics, the controller
terminates by thresholding the recovered probability, exactly as Section 5
describes (0.9999 in the paper's runs), and the terminate action is masked
out of its lookahead.
"""

from __future__ import annotations

import numpy as np

from repro.controllers.base import RecoveryController
from repro.controllers.engine import Decision, PolicyEngine, RecoverySession
from repro.linalg.ops import reward_row, rewards_max_value
from repro.pomdp.tree import expand_tree
from repro.recovery.model import RecoveryModel


class HeuristicLeaf:
    """The leaf value ``(1 - P[recovered]) * C`` of Section 5.

    ``C`` is the cost (reward) of the most expensive recovery action:
    ``min_{a,s} r(s, a)`` over non-passive, non-terminate actions by
    default, or the literal ``max_{a,s} r(s,a)`` over all actions when
    ``literal_max`` is set.
    """

    def __init__(self, model: RecoveryModel, literal_max: bool = False):
        self.model = model
        pomdp = model.pomdp
        if literal_max:
            self.cost = rewards_max_value(pomdp.rewards)
        elif pomdp.backend.is_sparse:
            self.cost = min(
                float(reward_row(pomdp.rewards, int(a)).min())
                for a in np.flatnonzero(model.recovery_actions)
            )
        else:
            recovery = model.recovery_actions
            self.cost = float(pomdp.rewards[recovery].min())
        # Recovered mass = S_phi plus s_T (the terminated state is not a
        # fault the controller should keep paying for in the heuristic).
        mask = model.null_states.copy()
        if model.terminate_state is not None:
            mask[model.terminate_state] = True
        self._recovered_mask = mask

    def value(self, belief: np.ndarray) -> float:
        """Heuristic value at ``belief``."""
        unrecovered = 1.0 - float(belief[self._recovered_mask].sum())
        return unrecovered * self.cost

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        unrecovered = 1.0 - beliefs[:, self._recovered_mask].sum(axis=1)
        return unrecovered * self.cost


class HeuristicPolicyEngine(PolicyEngine):
    """Finite-depth lookahead with the heuristic leaf of [8].

    Args:
        model: the recovery model.
        depth: lookahead depth (the paper evaluates 1, 2, and 3).
        termination_probability: recovered-probability threshold at which
            the policy stops (the paper uses 0.9999 for 10,000 runs).
        literal_max: use the formula's literal ``max`` leaf (see module
            docstring).
    """

    def __init__(
        self,
        model: RecoveryModel,
        depth: int = 1,
        termination_probability: float = 0.9999,
        literal_max: bool = False,
        preflight: bool = False,
    ):
        super().__init__(model, preflight=preflight)
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if not 0.0 < termination_probability <= 1.0:
            raise ValueError(
                "termination_probability must be in (0, 1], got "
                f"{termination_probability}"
            )
        self.depth = depth
        self.termination_probability = termination_probability
        self.leaf = HeuristicLeaf(model, literal_max=literal_max)
        self._allowed = np.ones(model.pomdp.n_actions, dtype=bool)
        if model.terminate_action is not None:
            self._allowed[model.terminate_action] = False
        self.name = f"heuristic (depth {depth})"

    def decide(self, session: RecoverySession) -> Decision:
        belief = session.belief_view()
        recovered = self.model.recovered_probability(belief)
        if recovered >= self.termination_probability:
            return self.terminate_decision(value=0.0)
        decision = expand_tree(
            self.model.pomdp,
            belief,
            self.depth,
            self.leaf,
            allowed_actions=self._allowed,
        )
        return Decision(action=decision.action, value=decision.value)


class HeuristicController(RecoveryController):
    """Campaign-facing adapter over a :class:`HeuristicPolicyEngine`."""

    def __init__(
        self,
        model: RecoveryModel,
        depth: int = 1,
        termination_probability: float = 0.9999,
        literal_max: bool = False,
        preflight: bool = False,
    ):
        super().__init__(
            engine=HeuristicPolicyEngine(
                model,
                depth=depth,
                termination_probability=termination_probability,
                literal_max=literal_max,
                preflight=preflight,
            )
        )

    @property
    def depth(self) -> int:
        return self.engine.depth

    @property
    def termination_probability(self) -> float:
        return self.engine.termination_probability

    @property
    def leaf(self) -> HeuristicLeaf:
        return self.engine.leaf
