"""Tests for the fault-injection environment's accounting."""

import numpy as np
import pytest

from repro.exceptions import ControllerError
from repro.sim.environment import NO_OBSERVATION, RecoveryEnvironment
from repro.systems.emn import MONITOR_DURATION


@pytest.fixture()
def environment(simple_system):
    return RecoveryEnvironment(simple_system.model, seed=0)


class TestLifecycle:
    def test_execute_before_inject_rejected(self, environment):
        with pytest.raises(ControllerError):
            environment.execute(0)

    def test_initial_observation_before_inject_rejected(self, environment):
        with pytest.raises(ControllerError):
            environment.initial_observation()

    def test_inject_requires_fault_state(self, environment, simple_system):
        with pytest.raises(ControllerError):
            environment.inject(simple_system.null_state)

    def test_inject_resets_accounting(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        environment.execute(0)
        environment.inject(simple_system.fault_b)
        assert environment.time == 0.0
        assert environment.cost == 0.0
        assert environment.recovered_at is None


class TestExecution:
    def test_time_advances_by_duration(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        environment.execute(simple_system.observe_action)
        assert environment.time == simple_system.model.durations[
            simple_system.observe_action
        ]

    def test_cost_accrues_model_reward(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        environment.execute(simple_system.observe_action)
        assert np.isclose(environment.cost, 0.5)  # observe in a fault

    def test_repair_recovers_and_timestamps(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        restart_a = simple_system.model.pomdp.action_index("restart(a)")
        environment.execute(restart_a)
        assert environment.recovered
        assert environment.recovered_at == environment.time

    def test_monitor_tail_backed_out_of_repair_instant(self, simple_system):
        environment = RecoveryEnvironment(
            simple_system.model, seed=0, monitor_tail=0.25
        )
        environment.inject(simple_system.fault_a)
        restart_a = simple_system.model.pomdp.action_index("restart(a)")
        environment.execute(restart_a)
        assert np.isclose(
            environment.recovered_at, environment.time - 0.25
        )

    def test_negative_monitor_tail_rejected(self, simple_system):
        with pytest.raises(ControllerError):
            RecoveryEnvironment(simple_system.model, monitor_tail=-1.0)


class TestTermination:
    def test_terminate_keeps_physical_state(self, environment, simple_system):
        """a_T is bookkeeping: the true system must not 'move to s_T'."""
        environment.inject(simple_system.fault_a)
        a_t = simple_system.model.terminate_action
        result = environment.execute(a_t)
        assert result.state == simple_system.fault_a
        assert environment.state == simple_system.fault_a
        assert not environment.recovered

    def test_early_termination_charges_penalty(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        a_t = simple_system.model.terminate_action
        environment.execute(a_t)
        expected = 0.5 * simple_system.model.operator_response_time
        assert np.isclose(environment.termination_penalty, expected)
        assert np.isclose(environment.cost, expected)

    def test_termination_after_recovery_is_free(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        restart_a = simple_system.model.pomdp.action_index("restart(a)")
        environment.execute(restart_a)
        environment.execute(simple_system.model.terminate_action)
        assert environment.termination_penalty == 0.0

    def test_penalty_charged_exactly_once_per_termination(
        self, environment, simple_system
    ):
        """Regression: a dead duplicate accounting block below the
        early-return branch used to shadow this invariant — one execute of
        a_T charges r(s, a_T) exactly once, to cost and penalty alike."""
        environment.inject(simple_system.fault_a)
        a_t = simple_system.model.terminate_action
        result = environment.execute(a_t)
        per_charge = 0.5 * simple_system.model.operator_response_time
        assert np.isclose(environment.cost, per_charge)
        assert np.isclose(environment.termination_penalty, per_charge)
        assert np.isclose(result.reward, -per_charge)
        # A second execute is a second termination decision: one more charge,
        # not a retroactive double-charge of the first.
        environment.execute(a_t)
        assert np.isclose(environment.cost, 2 * per_charge)
        assert np.isclose(environment.termination_penalty, 2 * per_charge)

    def test_terminate_returns_no_observation_sentinel(
        self, environment, simple_system
    ):
        environment.inject(simple_system.fault_a)
        result = environment.execute(simple_system.model.terminate_action)
        assert result.observation == NO_OBSERVATION

    def test_terminate_advances_no_time(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        environment.execute(simple_system.model.terminate_action)
        assert environment.time == 0.0


class TestResidualTime:
    def test_residual_is_repair_instant(self, environment, simple_system):
        environment.inject(simple_system.fault_a)
        environment.execute(simple_system.observe_action)
        restart_a = simple_system.model.pomdp.action_index("restart(a)")
        environment.execute(restart_a)
        assert environment.residual_time() == environment.recovered_at

    def test_unrecovered_residual_includes_operator_delay(
        self, environment, simple_system
    ):
        environment.inject(simple_system.fault_a)
        environment.execute(simple_system.observe_action)
        expected = (
            environment.time + simple_system.model.operator_response_time
        )
        assert np.isclose(environment.residual_time(), expected)
