"""The two-redundant-server worked example of Figure 1(a).

Two servers ``a`` and ``b``; at most one has an activated fault.  Restarting
the faulty server repairs it at unavailability cost 0.5; restarting the
healthy one while the other is faulty wastes a full unit of cost; observing
costs the fault's rate for one time unit.  A single monitor produces the
observations "a appears to have failed" / "b appears to have failed" /
"looks clear", "although there might be false positives and false negatives
as well" — the monitor-quality knobs model exactly that.

The example exists in both Figure 2 flavours:

* ``recovery_notification=True`` (Figure 2(a)): the monitor never reports
  "clear" while a fault is active and never reports a failure in the null
  state, so an all-clear certifies recovery and the null state is made
  absorbing.
* ``recovery_notification=False`` (Figure 2(b)): symptoms are intermittent
  (a faulty server sometimes looks clear), so the terminate state/action
  pair is appended with ``r(s, a_T) = rbar(s) * t_op``.

The model is small enough for Monahan exact solution after discounting,
which makes it the test suite's ground-truth workhorse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.recovery.builder import RecoveryModelBuilder
from repro.recovery.model import RecoveryModel

#: Cost of restarting the faulty server (probability-1 repair).
RESTART_COST = 0.5
#: Cost of restarting the healthy server while the other is faulty.
WRONG_RESTART_COST = 1.0
#: Cost rate while a fault is active (per unit time; actions take 1 unit).
FAULT_RATE = 0.5


@dataclass(frozen=True)
class SimpleSystem:
    """The generated model plus the indices the examples and tests use."""

    model: RecoveryModel
    observe_action: int
    fault_a: int
    fault_b: int
    null_state: int


def build_simple_system(
    recovery_notification: bool = False,
    operator_response_time: float = 20.0,
    localization: float = 0.75,
    miss_rate: float = 0.3,
    discount: float = 1.0,
) -> SimpleSystem:
    """Build the Figure 1(a) example in either Figure 2 flavour.

    Args:
        recovery_notification: choose the Figure 2(a) (True) or 2(b)
            (False) variant.
        operator_response_time: ``t_op`` for the 2(b) variant; Figure 2(b)
            annotates the terminate action with reward ``-0.5 * t_op``.  The
            default of 20 time units prices an unattended fault well above
            any recovery sequence, so terminating early is never rational —
            set it low (e.g. 2) to study controllers that prefer giving up.
        localization: probability the monitor blames the *correct* server,
            conditioned on the fault being reported at all.
        miss_rate: probability an active fault produces a "looks clear"
            reading — must be 0 with recovery notification (that is what
            notification means) and positive without.
        discount: ``beta``; keep 1.0 for the paper's undiscounted setting,
            or pass ``< 1`` to enable exact solution for tests.
    """
    if recovery_notification and miss_rate != 0.0:
        raise ModelError(
            "with recovery notification an active fault must never look "
            "clear; set miss_rate=0"
        )
    if not recovery_notification and miss_rate <= 0.0:
        raise ModelError(
            "without recovery notification symptoms must be intermittent; "
            "set miss_rate>0"
        )
    if not 0.0 <= localization <= 1.0:
        raise ModelError(f"localization must be in [0, 1], got {localization}")
    if not 0.0 <= miss_rate < 1.0:
        raise ModelError(f"miss_rate must be in [0, 1), got {miss_rate}")

    builder = RecoveryModelBuilder()
    builder.discount = discount
    builder.add_state("null", rate_cost=0.0, null=True)
    builder.add_state("fault(a)", rate_cost=FAULT_RATE)
    builder.add_state("fault(b)", rate_cost=FAULT_RATE)

    builder.add_action(
        "restart(a)",
        duration=1.0,
        transitions={"fault(a)": {"null": 1.0}},
        costs={
            "null": RESTART_COST,
            "fault(a)": RESTART_COST,
            "fault(b)": WRONG_RESTART_COST,
        },
    )
    builder.add_action(
        "restart(b)",
        duration=1.0,
        transitions={"fault(b)": {"null": 1.0}},
        costs={
            "null": RESTART_COST,
            "fault(a)": WRONG_RESTART_COST,
            "fault(b)": RESTART_COST,
        },
    )
    builder.add_action("observe", duration=1.0, passive=True)

    report = 1.0 - miss_rate
    observations = np.array(
        [
            # columns: "looks(a)", "looks(b)", "clear"
            [0.0, 0.0, 1.0],  # null
            [report * localization, report * (1.0 - localization), miss_rate],
            [report * (1.0 - localization), report * localization, miss_rate],
        ]
    )
    builder.set_observation_matrix(("looks(a)", "looks(b)", "clear"), observations)

    model = builder.build(
        recovery_notification=recovery_notification,
        operator_response_time=(
            None if recovery_notification else operator_response_time
        ),
    )
    return SimpleSystem(
        model=model,
        observe_action=model.pomdp.action_index("observe"),
        fault_a=model.pomdp.state_index("fault(a)"),
        fault_b=model.pomdp.state_index("fault(b)"),
        null_state=model.pomdp.state_index("null"),
    )
