"""Recovery controllers (Sections 4 and 5).

The decision logic lives in :class:`~repro.controllers.engine.PolicyEngine`
subclasses — shared, immutable-after-warmup state (bound sets, Q-tables,
fixing-action maps) that spawns lightweight per-episode
:class:`~repro.controllers.engine.RecoverySession` objects.  The
``*Controller`` classes are thin campaign-facing adapters binding one
engine to one live session; subclassing
:class:`~repro.controllers.base.RecoveryController` with a ``_decide``
override (the legacy callback path) still works unchanged.

* :mod:`repro.controllers.bounded` — the paper's controller: finite-depth
  lookahead with the piecewise-linear lower bound at the leaves, online
  refinement, and termination through the terminate action ``a_T``.
* :mod:`repro.controllers.heuristic` — the SRDS'05 heuristic controller used
  as the main baseline (heuristic leaf value, probability-threshold
  termination).
* :mod:`repro.controllers.most_likely` — Bayes diagnosis plus the cheapest
  action that fixes the most likely fault.
* :mod:`repro.controllers.oracle` — the unattainable ideal: knows the fault,
  fixes it in one action.
* :mod:`repro.controllers.random_controller` — uniform random recovery
  actions; the policy whose value *is* the RA-Bound, kept as a sanity
  baseline.
* :mod:`repro.controllers.bootstrap` — the offline bounds-improvement phase
  of Section 4.1 (Random and Average variants) that produces the data for
  Figures 5(a) and 5(b).
"""

from repro.controllers.base import NO_ACTION, Decision, RecoveryController
from repro.controllers.bootstrap import BootstrapResult, bootstrap_bounds
from repro.controllers.bounded import BoundedController, BoundedPolicyEngine
from repro.controllers.branch_and_bound import BranchAndBoundController
from repro.controllers.engine import PolicyEngine, RecoverySession
from repro.controllers.heuristic import (
    HeuristicController,
    HeuristicLeaf,
    HeuristicPolicyEngine,
)
from repro.controllers.most_likely import (
    MostLikelyController,
    MostLikelyPolicyEngine,
)
from repro.controllers.oracle import OracleController, OraclePolicyEngine
from repro.controllers.qmdp import QMDPController, QMDPPolicyEngine
from repro.controllers.random_controller import (
    RandomController,
    RandomPolicyEngine,
)

__all__ = [
    "NO_ACTION",
    "BootstrapResult",
    "BoundedController",
    "BoundedPolicyEngine",
    "BranchAndBoundController",
    "Decision",
    "HeuristicController",
    "HeuristicLeaf",
    "HeuristicPolicyEngine",
    "MostLikelyController",
    "MostLikelyPolicyEngine",
    "OracleController",
    "OraclePolicyEngine",
    "PolicyEngine",
    "QMDPController",
    "QMDPPolicyEngine",
    "RandomController",
    "RandomPolicyEngine",
    "RecoveryController",
    "RecoverySession",
    "bootstrap_bounds",
]
