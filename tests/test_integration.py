"""End-to-end integration tests crossing every layer of the library."""

import numpy as np
import pytest

from repro.bounds.incremental import refine_at, verify_lower_bound_invariant
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.upper import FIBBound, QMDPBound
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bootstrap import bootstrap_bounds
from repro.controllers.bounded import BoundedController
from repro.controllers.heuristic import HeuristicController
from repro.controllers.most_likely import MostLikelyController
from repro.controllers.oracle import OracleController
from repro.pomdp.exact import solve_exact
from repro.sim.campaign import run_campaign
from repro.systems.faults import FaultKind
from repro.systems.simple import build_simple_system


class TestBoundedNearOptimalOnDiscountedModel:
    """Ground-truth check: on a model small enough for exact solution, the
    bootstrapped bounded controller's decisions must track the optimal
    policy's value closely."""

    @pytest.fixture(scope="class")
    def setup(self):
        system = build_simple_system(recovery_notification=False, discount=0.9)
        exact = solve_exact(system.model.pomdp, tol=1e-5)
        bound_set, _ = bootstrap_bounds(
            system.model, iterations=20, depth=1, seed=0, min_improvement=0.0
        )
        return system, exact, bound_set

    def test_refined_bound_close_to_exact_at_visited_beliefs(self, setup):
        system, exact, bound_set = setup
        belief = system.model.initial_belief()
        for _ in range(20):
            refine_at(system.model.pomdp, bound_set, belief)
        gap = exact.value(belief) - bound_set.value(belief)
        assert 0 <= gap + exact.error_bound + 1e-7
        assert gap <= 0.4  # tight after refinement (costs are ~1-2 here)

    def test_bounded_controller_agrees_with_exact_greedy(self, setup):
        system, exact, bound_set = setup
        pomdp = system.model.pomdp
        controller = BoundedController(
            system.model, depth=1, bound_set=bound_set
        )
        agreements = 0
        probes = 0
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states) * 2, size=30):
            controller.reset(initial_belief=belief)
            chosen = controller.decide().action
            optimal = exact.greedy_action(pomdp, belief)
            probes += 1
            agreements += int(chosen == optimal or chosen < 0)
        assert agreements / probes >= 0.7


class TestFullStackOnEMN:
    def test_all_controllers_recover_all_zombie_faults(self, emn_system):
        zombies = emn_system.fault_states(FaultKind.ZOMBIE)
        controllers = [
            MostLikelyController(emn_system.model),
            HeuristicController(emn_system.model, depth=1),
            BoundedController(
                emn_system.model, depth=1, refine_min_improvement=1.0
            ),
            OracleController(emn_system.model),
        ]
        costs = {}
        for controller in controllers:
            result = run_campaign(
                controller, zombies, injections=30, seed=17, monitor_tail=5.0
            )
            assert result.summary.unrecovered == 0, controller.name
            costs[controller.name] = result.summary.cost
        assert costs["oracle"] <= min(costs.values()) + 1e-9
        assert costs["bounded (depth 1)"] <= costs["most likely"]

    def test_crash_faults_diagnosed_almost_one_shot(self, emn_system):
        """Crashes are precisely located by ping monitors, so even the
        most-likely baseline repairs them in one action — except the
        crash(DB) / host_crash(hostC) pair, which share an observation
        signature (hostC hosts only DB) and may need a second action."""
        crashes = emn_system.fault_states(FaultKind.CRASH, FaultKind.HOST_CRASH)
        controller = MostLikelyController(emn_system.model)
        result = run_campaign(
            controller, crashes, injections=30, seed=3, monitor_tail=5.0
        )
        assert result.summary.unrecovered == 0
        assert all(episode.actions <= 2 for episode in result.episodes)
        pomdp = emn_system.model.pomdp
        ambiguous = {
            pomdp.state_index("crash(DB)"),
            pomdp.state_index("host_crash(hostC)"),
        }
        for episode in result.episodes:
            if episode.fault_state not in ambiguous:
                assert episode.actions == 1

    def test_bound_hierarchy_on_emn(self, emn_system):
        """lower bounds <= upper bounds at many beliefs, whole stack."""
        pomdp = emn_system.model.pomdp
        lower = BoundVectorSet(ra_bound_vector(pomdp))
        qmdp = QMDPBound(pomdp)
        fib = FIBBound(pomdp)
        rng = np.random.default_rng(1)
        beliefs = rng.dirichlet(np.ones(pomdp.n_states), size=24)
        for belief in beliefs:
            low = lower.value(belief)
            assert low <= fib.value(belief) + 1e-6
            assert fib.value(belief) <= qmdp.value(belief) + 1e-6
            assert low <= 0.0

    def test_invariant_maintained_through_campaign(self, emn_system):
        """Property 1(b) holds after a bootstrap + live campaign."""
        bound_set, _ = bootstrap_bounds(
            emn_system.model, iterations=5, depth=1, seed=0
        )
        controller = BoundedController(
            emn_system.model,
            depth=1,
            bound_set=bound_set,
            refine_min_improvement=1.0,
        )
        run_campaign(
            controller,
            emn_system.fault_states(FaultKind.ZOMBIE),
            injections=10,
            seed=2,
            monitor_tail=5.0,
        )
        beliefs = np.vstack(
            [
                emn_system.model.initial_belief(),
                np.full(
                    emn_system.model.pomdp.n_states,
                    1.0 / emn_system.model.pomdp.n_states,
                ),
            ]
        )
        assert verify_lower_bound_invariant(
            emn_system.model.pomdp, bound_set, beliefs
        )


class TestNotifiedVsUnnotifiedEconomy:
    def test_notified_recovery_cheaper(self):
        """Recovery notification saves the lingering observes."""
        notified = build_simple_system(recovery_notification=True, miss_rate=0.0)
        unnotified = build_simple_system(recovery_notification=False)
        results = {}
        for label, system in (("yes", notified), ("no", unnotified)):
            controller = BoundedController(system.model, depth=1)
            faults = np.array([system.fault_a, system.fault_b])
            results[label] = run_campaign(
                controller, faults, injections=40, seed=21
            ).summary
        assert results["yes"].monitor_calls <= results["no"].monitor_calls
        assert results["yes"].cost <= results["no"].cost + 1e-9
