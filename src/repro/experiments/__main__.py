"""Command-line entry point for the experiment harnesses.

Examples::

    python -m repro.experiments table1 --injections 1000
    python -m repro.experiments table1 --injections 10000 --parallel 4
    python -m repro.experiments fig5a --iterations 20
    python -m repro.experiments fig5b
    python -m repro.experiments bounds
    python -m repro.experiments ablations --injections 200
    python -m repro.experiments --profile table1 --injections 100
    python -m repro.experiments --telemetry run.jsonl table1 --injections 100
    python -m repro.experiments --trace trace.json table1 --injections 100

``--profile`` wraps the selected experiment in :mod:`cProfile` and prints
the hottest functions by cumulative time after the experiment's own output.
``--telemetry PATH`` activates the :mod:`repro.obs` observability layer for
the run and writes its JSONL event stream to ``PATH`` (inspect it with
``python -m repro.obs report PATH``).  ``--trace PATH`` additionally
records hierarchical spans (campaign → episode → decision → tree → leaf
batch / solver / cache) and writes a Chrome ``trace_event`` JSON to
``PATH`` — load it in ``chrome://tracing`` or https://ui.perfetto.dev.
All three flags compose; ``--trace`` works with or without
``--telemetry`` (without it, spans are exported but no JSONL is kept).
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import pstats

from repro.experiments import ablations as ablations_module
from repro.experiments import grid as grid_defaults
from repro.experiments.fig5 import format_fig5a, format_fig5b, run_fig5, shape_checks
from repro.experiments.table1 import (
    DEFAULT_CONTROLLERS,
    format_table1,
    ordering_checks,
    run_table1,
)
from repro.obs import session as telemetry_session


def _render_checks(checks: dict[str, bool]) -> str:
    lines = ["", "Claim checks:"]
    for claim, passed in checks.items():
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {claim}")
    return "\n".join(lines)


def _cmd_fig5(args, which: str) -> None:
    result = run_fig5(iterations=args.iterations, seed=args.seed)
    if which == "a":
        print(format_fig5a(result))
    else:
        print(format_fig5b(result))
    print(_render_checks(shape_checks(result)))


def _cmd_table1(args) -> None:
    controllers = DEFAULT_CONTROLLERS
    if args.skip_depth3:
        controllers = tuple(
            name for name in controllers if name != "heuristic (depth 3)"
        )
    result = run_table1(
        injections=args.injections,
        seed=args.seed,
        controllers=controllers,
        parallel=args.parallel,
    )
    print(format_table1(result))
    print(_render_checks(ordering_checks(result)))


def _cmd_bounds(args) -> None:
    outcomes = ablations_module.bounds_comparison()
    print(ablations_module.format_bounds_comparison(outcomes))


def _cmd_grid(args) -> None:
    from repro.experiments.grid import GridSpec, format_grid, run_grid

    spec = GridSpec(
        experiments=tuple(args.experiments),
        controllers=tuple(args.controllers),
        seeds=tuple(args.seeds),
        backends=tuple(args.backends),
        injections=args.injections,
        iterations=args.iterations,
    )

    def on_cell(kind, cell, record) -> None:
        if kind == "skip":
            print(f"[checkpoint] {cell.cell_id}")
        else:
            print(
                f"[run]        {cell.cell_id}  "
                f"fingerprint {record['fingerprint'][:12]}  "
                f"({record['wall_seconds']:.2f}s)"
            )

    try:
        result = run_grid(
            spec, args.store, parallel=args.parallel, on_cell=on_cell
        )
    except KeyboardInterrupt:
        print(
            "\ninterrupted — completed cells are checkpointed; re-run the "
            "same command to resume"
        )
        raise SystemExit(130) from None
    print()
    print(format_grid(result))


def _cmd_robustness(args) -> None:
    from repro.experiments.robustness import format_mismatch, run_mismatch_sweep

    points = run_mismatch_sweep(
        injections=args.injections, seed=args.seed, parallel=args.parallel
    )
    print(format_mismatch(points))


def _cmd_scalability(args) -> None:
    from repro.experiments.scalability import (
        ONLINE_REPLICAS,
        format_online,
        format_scalability,
        run_online,
        run_scalability,
        verify_against_dense,
    )

    if args.online:
        replicas = (
            tuple([args.replicas] * 3) if args.replicas else ONLINE_REPLICAS
        )
        print(format_online(run_online(replicas=replicas, seed=args.seed)))
        return
    discrepancy = verify_against_dense((2, 2, 2))
    print(f"Sparse-vs-dense RA-Bound check (62 states): "
          f"max discrepancy {discrepancy:.2e}")
    print()
    print(format_scalability(run_scalability()))


def _cmd_ablations(args) -> None:
    print(
        ablations_module.format_summary_sweep(
            "t_op (s)",
            ablations_module.operator_response_sweep(
                injections=args.injections, seed=args.seed
            ),
            "Operator-response-time sweep (bounded controller, depth 1)",
        )
    )
    print()
    print(
        ablations_module.format_summary_sweep(
            "Path coverage",
            ablations_module.monitor_quality_sweep(
                injections=args.injections, seed=args.seed
            ),
            "Path-monitor coverage sweep (bounded controller, depth 1)",
        )
    )
    print()
    profile = ablations_module.bound_computation_cost()
    print(f"RA-Bound solve time: {profile.ra_solve_seconds * 1000:.2f} ms")
    if profile.refine_seconds_by_set_size:
        first_size, first_time = profile.refine_seconds_by_set_size[0]
        last_size, last_time = profile.refine_seconds_by_set_size[-1]
        print(
            "Incremental update time: "
            f"{first_time * 1000:.3f} ms at |B|={first_size} -> "
            f"{last_time * 1000:.3f} ms at |B|={last_size}"
        )


def main(argv: list[str] | None = None) -> None:
    """Parse arguments and dispatch to an experiment."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the experiment under cProfile and print the hottest "
        "functions by cumulative time",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="record a repro.obs JSONL telemetry stream of the run to PATH "
        "(read it back with 'python -m repro.obs report PATH')",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record hierarchical spans and write a Chrome trace_event "
        "JSON to PATH (open in chrome://tracing or Perfetto); implies "
        "telemetry collection even without --telemetry",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_seed(sub):
        sub.add_argument("--seed", type=int, default=2006, help="RNG seed")

    def add_parallel(sub):
        sub.add_argument(
            "--parallel",
            type=int,
            default=None,
            metavar="N",
            help="shard each campaign across N worker processes "
            "(deterministic: same metrics as the serial run)",
        )

    for name in ("fig5a", "fig5b"):
        sub = subparsers.add_parser(name, help=f"Figure 5({name[-1]})")
        sub.add_argument("--iterations", type=int, default=20)
        add_seed(sub)

    table1 = subparsers.add_parser("table1", help="Table 1 fault injections")
    table1.add_argument("--injections", type=int, default=1000)
    table1.add_argument(
        "--skip-depth3",
        action="store_true",
        help="omit the (very slow) heuristic depth-3 row",
    )
    add_seed(table1)
    add_parallel(table1)

    bounds = subparsers.add_parser("bounds", help="Section 3.1 bound comparison")
    add_seed(bounds)

    ablations = subparsers.add_parser("ablations", help="parameter sweeps")
    ablations.add_argument("--injections", type=int, default=200)
    add_seed(ablations)

    scalability = subparsers.add_parser(
        "scalability", help="RA-Bound solve time vs state count (Section 4.3)"
    )
    scalability.add_argument(
        "--online",
        action="store_true",
        help="run the bounded controller end-to-end on the 300,002-state "
        "sparse tiered model instead of the off-line solve sweep",
    )
    scalability.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="R",
        help="replicas per tier for --online (default 50000; smaller values "
        "give a quick smoke run)",
    )
    add_seed(scalability)

    robustness = subparsers.add_parser(
        "robustness", help="controller-vs-environment model mismatch sweep"
    )
    robustness.add_argument("--injections", type=int, default=200)
    add_seed(robustness)
    add_parallel(robustness)

    grid = subparsers.add_parser(
        "grid",
        help="resumable checkpointed sweep: experiments x controllers x "
        "seeds x backends (interrupt freely; re-run to resume)",
    )
    grid.add_argument(
        "store",
        help="results-store directory (created if missing; the checkpoint)",
    )
    grid.add_argument(
        "--experiments",
        nargs="+",
        default=["table1"],
        choices=["table1", "fig5", "robustness"],
        help="experiments to sweep (default: table1)",
    )
    grid.add_argument(
        "--controllers",
        nargs="+",
        default=list(grid_defaults.DEFAULT_CONTROLLERS),
        metavar="NAME",
        help="Table 1 controller rows for table1 cells",
    )
    grid.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[2006],
        metavar="SEED",
        help="campaign seeds (one cell per seed)",
    )
    grid.add_argument(
        "--backends",
        nargs="+",
        default=["dense"],
        choices=["dense", "sparse"],
        help="model backends (one cell per backend; dense-only "
        "controllers skip their sparse cells)",
    )
    grid.add_argument(
        "--injections",
        type=int,
        default=200,
        help="injections per campaign cell (table1/robustness)",
    )
    grid.add_argument(
        "--iterations",
        type=int,
        default=10,
        help="bootstrap iterations per fig5 cell",
    )
    add_parallel(grid)

    args = parser.parse_args(argv)
    commands = {
        "fig5a": lambda: _cmd_fig5(args, "a"),
        "fig5b": lambda: _cmd_fig5(args, "b"),
        "table1": lambda: _cmd_table1(args),
        "bounds": lambda: _cmd_bounds(args),
        "ablations": lambda: _cmd_ablations(args),
        "scalability": lambda: _cmd_scalability(args),
        "robustness": lambda: _cmd_robustness(args),
        "grid": lambda: _cmd_grid(args),
    }
    command = commands[args.command]
    telemetry = None
    with contextlib.ExitStack() as stack:
        if args.telemetry or args.trace:
            telemetry = stack.enter_context(
                telemetry_session(args.telemetry, trace=bool(args.trace))
            )
        if args.profile:
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                command()
            finally:
                profiler.disable()
                print()
                stats = pstats.Stats(profiler)
                stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(40)
        else:
            command()
    if args.telemetry:
        print(f"\nTelemetry written to {args.telemetry} "
              f"(python -m repro.obs report {args.telemetry})")
    if args.trace and telemetry is not None:
        from repro.obs.trace import write_chrome_trace

        write_chrome_trace(args.trace, tuple(telemetry.spans))
        print(f"Chrome trace written to {args.trace} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
