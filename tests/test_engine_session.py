"""Engine/session refactor parity: the controller stack split must be invisible.

PR 9 split every controller into a shared :class:`PolicyEngine` and a
per-episode :class:`RecoverySession`.  These tests pin the campaign
fingerprints captured on the pre-refactor stack (same models, seeds, and
injection counts) and assert the refactored stack still produces them —
serial and ``parallel=4``, dense and sparse — plus property-based checks
that an engine-spawned session and the classic controller adapter are
decision-for-decision identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controllers import (
    BoundedController,
    BoundedPolicyEngine,
    BranchAndBoundController,
    HeuristicController,
    MostLikelyController,
    OracleController,
    QMDPController,
    RandomController,
    RecoveryController,
)
from repro.sim.campaign import run_campaign, run_episode
from repro.sim.environment import RecoveryEnvironment
from repro.sim.metrics import campaign_fingerprint, episode_fingerprint_bytes
from repro.systems.tiered import build_tiered_system

SEED = 2006
SIMPLE_INJECTIONS = 40
TIERED_INJECTIONS = 24

#: Campaign fingerprints captured on the pre-refactor controller stack
#: (commit 40ae943) with identical models, seeds, and injection counts.
#: ``algorithm_time`` is excluded from the fingerprint, so these are exact.
PRE_REFACTOR_FINGERPRINTS = {
    "simple.bounded": "028766abd5e47d4fccdb8e046a412ae7a73fc7be4ef6fd8d88ce2492abb37016",
    "simple.heuristic": "3abc52204e1d252d998293ca6ad1ef58b718157516b18fc5ef41ae8ba3fb9a4b",
    "simple.most_likely": "edc4ff151e7b0af5480b7d7975e40c597a61950f02b9ab002e162e43d5bd1c77",
    "simple.qmdp": "3abc52204e1d252d998293ca6ad1ef58b718157516b18fc5ef41ae8ba3fb9a4b",
    "simple.oracle": "f5592ddd496615ed29fc2b2c8b25fcb515f8b37a29139d20b3a2572dd36ca913",
    "simple.random": "cfef8fe3afb72a29043661841c5b6aea4594321adb95a2d0c0ba221c2f27b4b8",
    "simple.branch_and_bound": "028766abd5e47d4fccdb8e046a412ae7a73fc7be4ef6fd8d88ce2492abb37016",
    "tiered_sparse.bounded": "a2bd9a27c78ba1e6797d7d69097a3f25b5aada1da62b68e08631d1482b9dd098",
    "tiered_dense.bounded": "a2bd9a27c78ba1e6797d7d69097a3f25b5aada1da62b68e08631d1482b9dd098",
}

SIMPLE_FACTORIES = {
    "bounded": lambda model: BoundedController(model),
    "heuristic": lambda model: HeuristicController(model),
    "most_likely": lambda model: MostLikelyController(model),
    "qmdp": lambda model: QMDPController(model),
    "oracle": lambda model: OracleController(model),
    "random": lambda model: RandomController(model, seed=7),
    "branch_and_bound": lambda model: BranchAndBoundController(model),
}


def _simple_campaign(system, name, parallel=None):
    controller = SIMPLE_FACTORIES[name](system.model)
    faults = np.array([system.fault_a, system.fault_b])
    return run_campaign(
        controller,
        fault_states=faults,
        injections=SIMPLE_INJECTIONS,
        seed=SEED,
        parallel=parallel,
    )


class TestPinnedFingerprints:
    """The refactored stack reproduces the pre-refactor campaigns bit-for-bit."""

    @pytest.mark.parametrize("name", sorted(SIMPLE_FACTORIES))
    def test_simple_serial(self, simple_system, name):
        result = _simple_campaign(simple_system, name)
        assert (
            campaign_fingerprint(result.episodes)
            == PRE_REFACTOR_FINGERPRINTS[f"simple.{name}"]
        )

    @pytest.mark.parametrize("name", ["bounded", "random", "branch_and_bound"])
    def test_simple_parallel(self, simple_system, name):
        """Workers drive engine-spawned sessions; fingerprints must not move."""
        result = _simple_campaign(simple_system, name, parallel=4)
        assert (
            campaign_fingerprint(result.episodes)
            == PRE_REFACTOR_FINGERPRINTS[f"simple.{name}"]
        )

    @pytest.mark.parametrize("backend", ["sparse", "dense"])
    def test_tiered_both_backends(self, backend):
        system = build_tiered_system((2, 2), backend=backend)
        faults = np.flatnonzero(system.model.fault_states)
        serial = run_campaign(
            BoundedController(system.model),
            fault_states=faults,
            injections=TIERED_INJECTIONS,
            seed=SEED,
        )
        assert (
            campaign_fingerprint(serial.episodes)
            == PRE_REFACTOR_FINGERPRINTS[f"tiered_{backend}.bounded"]
        )
        sharded = run_campaign(
            BoundedController(system.model),
            fault_states=faults,
            injections=TIERED_INJECTIONS,
            seed=SEED,
            parallel=4,
        )
        assert campaign_fingerprint(sharded.episodes) == campaign_fingerprint(
            serial.episodes
        )


class TestEngineDrivenEpisodes:
    """Raw engine sessions and the controller adapter are interchangeable."""

    def test_session_speaks_episode_protocol(self, simple_system):
        """run_episode driven by an engine-spawned session matches the
        classic controller adapter on every deterministic metric."""
        model = simple_system.model
        engine = BoundedPolicyEngine(model, refine_online=False)
        session = engine.session()
        controller = BoundedController(model, refine_online=False)
        for fault in (simple_system.fault_a, simple_system.fault_b):
            left = run_episode(
                session, RecoveryEnvironment(model, seed=99), fault
            )
            right = run_episode(
                controller, RecoveryEnvironment(model, seed=99), fault
            )
            assert episode_fingerprint_bytes(left) == episode_fingerprint_bytes(
                right
            )

    def test_adapter_over_shared_engine(self, simple_system):
        """Campaigns accept an adapter wrapping an externally built engine,
        and refinements land in that engine's bound set."""
        model = simple_system.model
        engine = BoundedPolicyEngine(model)
        controller = RecoveryController(engine=engine)
        faults = np.array([simple_system.fault_a, simple_system.fault_b])
        result = run_campaign(
            controller, fault_states=faults, injections=SIMPLE_INJECTIONS, seed=SEED
        )
        assert (
            campaign_fingerprint(result.episodes)
            == PRE_REFACTOR_FINGERPRINTS["simple.bounded"]
        )
        assert controller.refinement_state() is engine.bound_set

    def test_sessions_isolate_beliefs(self, simple_system):
        """Two sessions of one engine never see each other's beliefs."""
        engine = BoundedPolicyEngine(simple_system.model, refine_online=False)
        one, two = engine.session(), engine.session()
        one.reset()
        two.reset()
        one.observe(simple_system.observe_action, 0)
        assert not np.array_equal(one.belief, two.belief)
        two.reset()
        assert one.steps == 0
        decision = one.decide()
        assert one.steps == (0 if decision.is_terminate else 1)
        assert two.steps == 0

    def test_session_refine_override(self, simple_system):
        """A refine=False session never grows the shared bound set."""
        engine = BoundedPolicyEngine(simple_system.model, refine_online=True)
        frozen = engine.session(refine=False)
        frozen.reset()
        before = engine.bound_set.vectors.shape[0]
        frozen.observe(simple_system.observe_action, 0)
        frozen.decide()
        assert engine.bound_set.vectors.shape[0] == before


@st.composite
def interaction_seeds(draw):
    fault_pick = draw(st.integers(min_value=0, max_value=1))
    env_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return fault_pick, env_seed


class TestPropertyParity:
    """Property-based: session/adapter parity over arbitrary episodes."""

    @settings(max_examples=25, deadline=None)
    @given(interaction_seeds())
    def test_episode_parity_any_seed(self, simple_system, seeds):
        fault_pick, env_seed = seeds
        model = simple_system.model
        fault = (simple_system.fault_a, simple_system.fault_b)[fault_pick]
        engine = BoundedPolicyEngine(model, refine_online=False)
        left = run_episode(
            engine.session(), RecoveryEnvironment(model, seed=env_seed), fault
        )
        right = run_episode(
            BoundedController(model, refine_online=False),
            RecoveryEnvironment(model, seed=env_seed),
            fault,
        )
        assert episode_fingerprint_bytes(left) == episode_fingerprint_bytes(right)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_belief_trajectory_parity(self, simple_system, env_seed):
        """Step-for-step: identical decisions and identical belief evolution
        between a raw session and the adapter, on the same episode."""
        model = simple_system.model
        engine = BoundedPolicyEngine(model, refine_online=False)
        session = engine.session()
        adapter = BoundedController(model, refine_online=False)
        env_a = RecoveryEnvironment(model, seed=env_seed)
        env_b = RecoveryEnvironment(model, seed=env_seed)
        env_a.inject(simple_system.fault_a)
        env_b.inject(simple_system.fault_a)
        session.reset()
        adapter.reset()
        session.observe(simple_system.observe_action, env_a.initial_observation())
        adapter.observe(simple_system.observe_action, env_b.initial_observation())
        for _ in range(30):
            np.testing.assert_array_equal(session.belief, adapter.belief)
            left, right = session.decide(), adapter.decide()
            assert (left.action, left.is_terminate) == (
                right.action,
                right.is_terminate,
            )
            if left.is_terminate:
                assert session.done and adapter.done
                break
            result_a = env_a.execute(left.action)
            result_b = env_b.execute(right.action)
            assert result_a.observation == result_b.observation
            session.observe(left.action, result_a.observation)
            adapter.observe(right.action, result_b.observation)
