"""Tests for repro.mdp.classify."""

import numpy as np
import pytest

from repro.mdp.classify import classify_chain, reachable_set


class TestClassifyChain:
    def test_absorbing_state_detected(self):
        chain = np.array([[0.5, 0.5], [0.0, 1.0]])
        result = classify_chain(chain)
        assert result.absorbing.tolist() == [False, True]
        assert result.recurrent.tolist() == [False, True]
        assert result.transient.tolist() == [True, False]

    def test_cycle_is_recurrent_not_absorbing(self):
        chain = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = classify_chain(chain)
        assert result.recurrent.all()
        assert not result.absorbing.any()
        assert len(result.recurrent_classes) == 1
        assert result.recurrent_classes[0] == frozenset({0, 1})

    def test_two_recurrent_classes(self):
        chain = np.array(
            [
                [0.5, 0.25, 0.25],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        result = classify_chain(chain)
        assert len(result.recurrent_classes) == 2
        assert result.transient.tolist() == [True, False, False]

    def test_identity_chain_all_absorbing(self):
        result = classify_chain(np.eye(3))
        assert result.absorbing.all()
        assert len(result.recurrent_classes) == 3

    def test_near_zero_probabilities_ignored(self):
        chain = np.array([[1.0 - 1e-15, 1e-15], [0.0, 1.0]])
        result = classify_chain(chain)
        # The 1e-15 edge is structural noise: state 0 stays recurrent.
        assert result.recurrent.tolist() == [True, True]


class TestReachableSet:
    def test_simple_path(self):
        chain = np.array(
            [
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
            ]
        )
        reached = reachable_set(chain, np.array([True, False, False]))
        assert reached.all()

    def test_unreachable_island(self):
        chain = np.eye(2)
        reached = reachable_set(chain, np.array([True, False]))
        assert reached.tolist() == [True, False]

    def test_reverse_reachability_pattern(self):
        # reachable_set on the transpose answers "who can reach the mask".
        chain = np.array([[0.0, 1.0], [0.0, 1.0]])
        can_reach_1 = reachable_set(chain.T, np.array([False, True]))
        assert can_reach_1.all()


class TestStronglyConnectedComponents:
    def test_cycle_plus_tail(self):
        from repro.mdp.classify import strongly_connected_components

        chain = np.array([
            [0.0, 1.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
        ])
        components = strongly_connected_components(chain)
        assert frozenset({0, 1}) in components
        assert frozenset({2}) in components

    def test_tarjan_matches_networkx_on_random_graphs(self):
        from repro.mdp.classify import (
            HAVE_NETWORKX,
            _scc_networkx,
            _scc_tarjan,
        )

        if not HAVE_NETWORKX:
            pytest.skip("networkx unavailable; nothing to compare against")
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(2, 12))
            adjacency = rng.random((n, n)) < 0.25
            ours = set(_scc_tarjan(adjacency))
            theirs = set(_scc_networkx(adjacency))
            assert ours == theirs

    def test_tarjan_deep_chain_no_recursion_limit(self):
        from repro.mdp.classify import _scc_tarjan

        n = 3000  # far beyond the default recursion limit
        adjacency = np.zeros((n, n), dtype=bool)
        adjacency[np.arange(n - 1), np.arange(1, n)] = True
        components = _scc_tarjan(adjacency)
        assert len(components) == n


class TestClosedComponents:
    def test_absorbing_and_leaky(self):
        from repro.mdp.classify import closed_components

        chain = np.array([
            [1.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
            [0.0, 0.5, 0.5],
        ])
        assert closed_components(chain) == [frozenset({0})]

    def test_two_closed_classes(self):
        from repro.mdp.classify import closed_components

        chain = np.array([
            [0.0, 1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.25, 0.25, 0.25, 0.25],
        ])
        closed = closed_components(chain)
        assert frozenset({0, 1}) in closed
        assert frozenset({2}) in closed
        assert len(closed) == 2


class TestExpectedAbsorptionTime:
    def test_geometric_absorption(self):
        from repro.mdp.classify import expected_absorption_time

        # Leave with probability p each step: expected time 1/p.
        p = 0.2
        chain = np.array([[1.0 - p, p], [0.0, 1.0]])
        times = expected_absorption_time(chain)
        assert np.isclose(times[0], 1.0 / p)
        assert times[1] == 0.0

    def test_deterministic_path(self):
        from repro.mdp.classify import expected_absorption_time

        chain = np.array([
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0],
        ])
        times = expected_absorption_time(chain)
        assert np.allclose(times, [2.0, 1.0, 0.0])

    def test_unreachable_target_is_inf(self):
        from repro.mdp.classify import expected_absorption_time

        chain = np.array([
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.5, 0.5],
        ])
        targets = np.array([True, False, False])
        times = expected_absorption_time(chain, targets)
        assert times[0] == 0.0
        assert np.isinf(times[1]) and np.isinf(times[2])

    def test_explicit_targets_override_recurrent_set(self):
        from repro.mdp.classify import expected_absorption_time

        chain = np.array([
            [0.5, 0.5, 0.0],
            [0.0, 0.5, 0.5],
            [0.0, 0.0, 1.0],
        ])
        times = expected_absorption_time(chain, np.array([False, True, False]))
        assert times[1] == 0.0
        assert np.isclose(times[0], 2.0)  # geometric with p=0.5
        assert np.isinf(times[2])  # state 2 can never re-enter state 1
