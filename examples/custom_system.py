"""Modelling your own system with the recovery-model builder.

Builds a recovery model for a deployment the paper never saw — a payment
service with a primary/replica database pair behind an API tier — entirely
through the public builder API, lets the library auto-detect whether the
monitor suite provides recovery notification, and runs the bounded
controller against injected faults.

This is the path a downstream user follows to adopt the library: describe
states, actions, and monitors; everything else (Condition 1/2 checks, the
Figure 2 augmentation, RA-Bound seeding, refinement) is automatic.

Run:  python examples/custom_system.py
"""

import numpy as np

from repro import (
    BoundedController,
    RecoveryModelBuilder,
    bootstrap_bounds,
    run_campaign,
)
from repro.util import render_table

SEED = 11


def build_payment_service():
    """A 4-fault-state payment service with imperfect health checks."""
    builder = RecoveryModelBuilder()
    # Cost rates: fraction of payments failing per second in each state.
    builder.add_state("healthy", rate_cost=0.0, null=True)
    builder.add_state("api-hung", rate_cost=1.0)
    builder.add_state("db-primary-degraded", rate_cost=0.6)
    builder.add_state("db-replica-lagging", rate_cost=0.1)
    builder.add_state("cache-poisoned", rate_cost=0.3)

    # Recovery actions: deterministic repairs, durations in seconds.
    builder.add_action(
        "restart-api", duration=30.0,
        transitions={"api-hung": {"healthy": 1.0}},
    )
    builder.add_action(
        "failover-db", duration=90.0,
        transitions={
            "db-primary-degraded": {"healthy": 1.0},
            # Failover while only the replica lags makes things healthy too,
            # but at full outage cost during the switch.
            "db-replica-lagging": {"healthy": 1.0},
        },
        costs={"db-replica-lagging": 90.0},
    )
    builder.add_action(
        "resync-replica", duration=120.0,
        transitions={"db-replica-lagging": {"healthy": 1.0}},
    )
    builder.add_action(
        "flush-cache", duration=15.0,
        transitions={"cache-poisoned": {"healthy": 1.0}},
    )
    builder.add_action("probe", duration=2.0, passive=True)

    # Monitor suite: an HTTP health check and an end-to-end payment probe.
    # Neither separates "healthy" perfectly (lagging replicas often look
    # fine), so the builder will detect the absence of recovery
    # notification and append the terminate state/action automatically.
    observations = np.array(
        #  hc-ok,probe-ok   hc-ok,probe-fail  hc-fail,probe-ok  hc-fail,probe-fail
        [
            [0.98, 0.01, 0.01, 0.00],  # healthy (rare false alarms)
            [0.00, 0.05, 0.05, 0.90],  # api-hung
            [0.10, 0.80, 0.00, 0.10],  # db-primary-degraded
            [0.70, 0.30, 0.00, 0.00],  # db-replica-lagging (often hidden!)
            [0.15, 0.80, 0.05, 0.00],  # cache-poisoned
        ]
    )
    builder.set_observation_matrix(
        ("hc-ok,probe-ok", "hc-ok,probe-fail", "hc-fail,probe-ok",
         "hc-fail,probe-fail"),
        observations,
    )
    # Auto-detection picks the right Figure 2 augmentation; t_op: a human
    # gets paged and responds in ~15 minutes.
    return builder.build(operator_response_time=900.0)


def main() -> None:
    model = build_payment_service()
    print(f"Model: {model.pomdp}")
    print(f"Recovery notification detected: {model.recovery_notification}")
    print(f"Terminate action appended: {model.terminate_action is not None}")
    print()

    bound_set, trace = bootstrap_bounds(
        model, iterations=15, depth=1, seed=SEED, min_improvement=0.1
    )
    print(
        f"RA-Bound refined from {-trace.initial_bound:.1f} to "
        f"{trace.cost_upper_bounds[-1]:.1f} failed payments at the uniform "
        f"belief (|B| = {len(bound_set)})"
    )

    controller = BoundedController(
        model, depth=1, bound_set=bound_set, refine_min_improvement=0.1
    )
    faults = np.flatnonzero(model.fault_states)
    result = run_campaign(
        controller, fault_states=faults, injections=200, seed=SEED
    )
    summary = result.summary

    print()
    print(
        render_table(
            ["Metric", "Per-fault average"],
            [
                ["Cost (failed payments)", summary.cost],
                ["Recovery time (s)", summary.recovery_time],
                ["Residual time (s)", summary.residual_time],
                ["Recovery actions", summary.actions],
                ["Monitor calls", summary.monitor_calls],
                ["Early terminations", summary.early_terminations],
            ],
            title="Bounded controller on the custom payment service",
        )
    )


if __name__ == "__main__":
    main()
