"""Canonical benchmark snapshots and perf-regression comparison.

The repo has accumulated one benchmark file per perf PR —
``BENCH_PR2.json`` (``bench-pr2/v1``: campaign throughput, RA-Bound solve
scaling, tree expansion) and ``BENCH_PR4.json`` (``bench-pr4/v1``:
dense-vs-sparse backend latency and cross-backend campaign parity) — with
nothing comparing them.  This module defines the canonical schema every
future snapshot uses and the comparison that turns two snapshots into a
regression verdict.

**Canonical schema** (``repro-bench/v1``)::

    {
      "schema": "repro-bench/v1",
      "generated_by": "...",
      "machine": {"cpu_count": ..., "platform": ..., "python": ...},
      "seed": 2006,
      "source_schemas": ["bench-pr2/v1", "bench-pr4/v1"],
      "metrics": {
        "<dotted.name>": {"value": ..., "unit": "...", "direction": "..."}
      }
    }

Every metric is self-describing: ``direction`` is ``"lower"`` (latency —
regression when the new value exceeds the old by more than the threshold),
``"higher"`` (throughput), ``"exact"`` (fingerprints and parity flags —
any change is a failure at any threshold), or ``"info"`` (recorded but
never compared, e.g. memory footprints that vary with allocator
behaviour).  :func:`load_snapshot` reads all three schemas, normalising
the two legacy layouts into canonical metrics, so
``python -m repro.obs bench compare BENCH_PR4.json BENCH_PR5.json``
works across PR generations.

Exit codes follow the ``repro.analysis`` CLI convention: 0 — no
regressions; 1 — at least one regression or exact-metric mismatch;
2 — usage or I/O error (unreadable file, unknown schema).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.util.tables import render_table

#: The canonical snapshot schema tag.
BENCH_SCHEMA = "repro-bench/v1"

#: Legacy schemas :func:`load_snapshot` can normalise.
LEGACY_SCHEMAS = frozenset({"bench-pr2/v1", "bench-pr4/v1"})

#: Default regression threshold (percent) for directional metrics.
DEFAULT_THRESHOLD_PCT = 25.0

#: Valid ``direction`` values of a canonical metric.
DIRECTIONS = frozenset({"lower", "higher", "exact", "info"})


class BenchFormatError(ValueError):
    """A snapshot file is unreadable or not a known benchmark schema."""


@dataclass(frozen=True)
class Metric:
    """One canonical benchmark measurement."""

    value: Any
    unit: str
    direction: str


@dataclass(frozen=True)
class Snapshot:
    """A benchmark snapshot normalised to canonical metrics."""

    schema: str
    metrics: dict[str, Metric]
    machine: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None


def _slug(controller: str) -> str:
    """``"bounded (depth 1)"`` → ``"bounded_depth_1"``."""
    return "".join(
        ch if ch.isalnum() else "_" for ch in controller.lower()
    ).strip("_").replace("__", "_")


def _metrics_pr2(document: dict[str, Any]) -> dict[str, Metric]:
    metrics: dict[str, Metric] = {}
    for row in document.get("campaign", []):
        prefix = f"campaign.{_slug(row['controller'])}"
        metrics[f"{prefix}.serial_seconds"] = Metric(
            row["serial_seconds"], "s", "lower"
        )
        metrics[f"{prefix}.parallel_seconds"] = Metric(
            row["parallel_seconds"], "s", "lower"
        )
        metrics[f"{prefix}.serial_episodes_per_second"] = Metric(
            row["serial_episodes_per_second"], "eps/s", "higher"
        )
        metrics[f"{prefix}.fingerprint"] = Metric(
            row["fingerprint"], "sha256", "exact"
        )
        metrics[f"{prefix}.fingerprints_match"] = Metric(
            row["fingerprints_match"], "bool", "exact"
        )
    for row in document.get("ra_solve", []):
        prefix = f"ra_solve.n{row['n_states']}"
        if row.get("sparse_seconds") is not None:
            metrics[f"{prefix}.sparse_seconds"] = Metric(
                row["sparse_seconds"], "s", "lower"
            )
        if row.get("dense_seconds") is not None:
            metrics[f"{prefix}.dense_seconds"] = Metric(
                row["dense_seconds"], "s", "lower"
            )
    emn = document.get("ra_solve_emn")
    if emn:
        metrics["ra_solve.emn.solve_seconds"] = Metric(
            emn["solve_seconds"], "s", "lower"
        )
    tree = document.get("tree")
    if tree:
        metrics["tree.seconds"] = Metric(tree["seconds"], "s", "lower")
        metrics["tree.decisions_per_second"] = Metric(
            tree["decisions_per_second"], "dec/s", "higher"
        )
    return metrics


def _metrics_pr4(document: dict[str, Any]) -> dict[str, Metric]:
    metrics: dict[str, Metric] = {}
    for row in document.get("backends", []):
        prefix = f"backend.tiered{row['replicas_per_tier']}"
        if row.get("dense_decision_ms") is not None:
            metrics[f"{prefix}.dense_decision_ms"] = Metric(
                row["dense_decision_ms"], "ms", "lower"
            )
        if row.get("sparse_decision_ms") is not None:
            metrics[f"{prefix}.sparse_decision_ms"] = Metric(
                row["sparse_decision_ms"], "ms", "lower"
            )
        if row.get("sparse_model_bytes") is not None:
            metrics[f"{prefix}.sparse_model_bytes"] = Metric(
                row["sparse_model_bytes"], "bytes", "info"
            )
        if row.get("decisions_match") is not None:
            metrics[f"{prefix}.decisions_match"] = Metric(
                row["decisions_match"], "bool", "exact"
            )
    campaign = document.get("campaign")
    if campaign:
        prefix = f"campaign.{_slug(campaign['controller'])}"
        for mode, seconds in campaign.get("seconds", {}).items():
            metrics[f"{prefix}.{mode}_seconds"] = Metric(seconds, "s", "lower")
        metrics[f"{prefix}.fingerprint"] = Metric(
            campaign["fingerprint"], "sha256", "exact"
        )
        metrics[f"{prefix}.fingerprints_match"] = Metric(
            campaign["fingerprints_match"], "bool", "exact"
        )
    return metrics


def _metrics_canonical(document: dict[str, Any]) -> dict[str, Metric]:
    metrics: dict[str, Metric] = {}
    for name, entry in document.get("metrics", {}).items():
        if not isinstance(entry, dict) or "value" not in entry:
            raise BenchFormatError(
                f"metric {name!r} must be an object with a 'value' field"
            )
        direction = entry.get("direction", "info")
        if direction not in DIRECTIONS:
            raise BenchFormatError(
                f"metric {name!r} has unknown direction {direction!r}"
            )
        metrics[name] = Metric(
            entry["value"], entry.get("unit", ""), direction
        )
    return metrics


def normalize(document: dict[str, Any]) -> Snapshot:
    """Normalise a decoded benchmark document into canonical metrics."""
    schema = document.get("schema")
    if schema == BENCH_SCHEMA:
        metrics = _metrics_canonical(document)
    elif schema == "bench-pr2/v1":
        metrics = _metrics_pr2(document)
    elif schema == "bench-pr4/v1":
        metrics = _metrics_pr4(document)
    else:
        raise BenchFormatError(
            f"unknown benchmark schema {schema!r} "
            f"(known: {sorted(LEGACY_SCHEMAS | {BENCH_SCHEMA})})"
        )
    return Snapshot(
        schema=str(schema),
        metrics=metrics,
        machine=document.get("machine", {}),
        seed=document.get("seed"),
    )


def load_snapshot(path: str | Path) -> Snapshot:
    """Read and normalise a benchmark snapshot file."""
    try:
        with open(path, encoding="utf-8") as stream:
            document = json.load(stream)
    except OSError as error:
        raise BenchFormatError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BenchFormatError(f"{path} is not JSON: {error}") from error
    if not isinstance(document, dict):
        raise BenchFormatError(f"{path}: snapshot must be a JSON object")
    return normalize(document)


def canonical_document(
    metrics: dict[str, Metric],
    machine: dict[str, Any] | None = None,
    seed: int | None = None,
    generated_by: str = "python -m benchmarks.perf_snapshot",
    source_schemas: list[str] | None = None,
) -> dict[str, Any]:
    """Assemble a canonical ``repro-bench/v1`` document for serialisation."""
    return {
        "schema": BENCH_SCHEMA,
        "generated_by": generated_by,
        "machine": machine or {},
        "seed": seed,
        "source_schemas": source_schemas or [],
        "metrics": {
            name: {
                "value": metric.value,
                "unit": metric.unit,
                "direction": metric.direction,
            }
            for name, metric in sorted(metrics.items())
        },
    }


def store_snapshot(root) -> Snapshot:
    """Normalise a grid results store into a comparable :class:`Snapshot`.

    Every completed cell contributes its deterministic fingerprint as an
    ``exact`` metric named ``grid.<cell id with dots>.fingerprint`` — so
    ``compare(store_snapshot(a), store_snapshot(b))`` fails on any drift
    between two sweeps of the same spec — plus its scalar metrics and wall
    time as ``info`` metrics (recorded in exports, never gated: a code
    change may legitimately move them, and the fingerprint already catches
    unintentional moves bit-exactly).

    Accepts a store directory path or a ``ResultsStore``.  This is how the
    BENCH history becomes a queryable trajectory: sweep into a store,
    export with ``python -m repro.obs bench store DIR --snapshot OUT.json``,
    and gate future sweeps against the export with ``bench compare``.
    """
    from repro.experiments.store import ResultsStore

    store = root if isinstance(root, ResultsStore) else ResultsStore(root)
    metrics: dict[str, Metric] = {}
    completed = store.completed()
    for cell_id in sorted(completed):
        record = completed[cell_id]
        prefix = "grid." + str(cell_id).replace("/", ".")
        metrics[f"{prefix}.fingerprint"] = Metric(
            record["fingerprint"], "sha256", "exact"
        )
        cell_metrics = record.get("metrics", {})
        for name in sorted(cell_metrics):
            metrics[f"{prefix}.{name}"] = Metric(cell_metrics[name], "", "info")
        if "wall_seconds" in record:
            metrics[f"{prefix}.wall_seconds"] = Metric(
                record["wall_seconds"], "s", "info"
            )
    return Snapshot(schema=BENCH_SCHEMA, metrics=metrics)


def format_store(root) -> str:
    """Render a results store's full record history as a table.

    Unlike :func:`store_snapshot` (latest record per cell) this shows the
    *trajectory*: every append, including re-runs of the same cell, in
    append order.
    """
    from repro.experiments.store import ResultsStore

    store = root if isinstance(root, ResultsStore) else ResultsStore(root)
    records = store.records()
    if not records:
        return f"{store.root}: no completed cells\n"
    rows = []
    for record in records:
        metrics = record.get("metrics", {})
        rows.append(
            [
                record["cell_id"],
                record["fingerprint"][:12],
                "" if "cost" not in metrics else f"{metrics['cost']:.4g}",
                f"{record.get('wall_seconds', 0.0):.2f}",
                record.get("artifact") or "",
            ]
        )
    skipped = getattr(store, "skipped_lines", 0)
    footer = (
        f"\n({skipped} torn/foreign line(s) skipped)\n" if skipped else "\n"
    )
    table = render_table(
        ["cell", "fingerprint", "cost", "wall (s)", "artifact"],
        rows,
        title=(
            f"{store.root}: {len(records)} record(s), "
            f"{len({r['cell_id'] for r in records})} distinct cell(s)"
        ),
    )
    return table + footer


@dataclass(frozen=True)
class MetricComparison:
    """Verdict for one metric present in both snapshots."""

    name: str
    old: Any
    new: Any
    unit: str
    direction: str
    change_pct: float | None
    regressed: bool


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing two snapshots metric by metric."""

    rows: list[MetricComparison]
    threshold_pct: float

    @property
    def regressions(self) -> list[MetricComparison]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare(
    old: Snapshot, new: Snapshot, threshold_pct: float = DEFAULT_THRESHOLD_PCT
) -> ComparisonResult:
    """Compare the metrics present in both snapshots.

    Directional metrics regress when they move against their direction by
    more than ``threshold_pct`` percent of the old value; ``exact`` metrics
    (fingerprints, parity flags) fail on *any* difference; ``info`` metrics
    are reported but never fail.  Metrics present in only one snapshot are
    skipped — PR-era snapshots legitimately measure different things.
    """
    rows: list[MetricComparison] = []
    factor = threshold_pct / 100.0
    for name in sorted(old.metrics.keys() & new.metrics.keys()):
        before, after = old.metrics[name], new.metrics[name]
        direction = after.direction if before.direction == "info" else before.direction
        change_pct: float | None = None
        regressed = False
        old_value, new_value = before.value, after.value
        numeric = isinstance(old_value, (int, float)) and isinstance(
            new_value, (int, float)
        ) and not isinstance(old_value, bool) and not isinstance(new_value, bool)
        if direction == "exact":
            regressed = old_value != new_value
        elif numeric and direction in ("lower", "higher"):
            if old_value:
                change_pct = 100.0 * (new_value - old_value) / abs(old_value)
            if direction == "lower":
                regressed = new_value > old_value * (1.0 + factor)
            else:
                regressed = new_value < old_value * (1.0 - factor)
        rows.append(
            MetricComparison(
                name=name,
                old=old_value,
                new=new_value,
                unit=before.unit,
                direction=direction,
                change_pct=change_pct,
                regressed=regressed,
            )
        )
    return ComparisonResult(rows=rows, threshold_pct=threshold_pct)


def format_comparison(result: ComparisonResult) -> str:
    """Render a comparison as a table plus a one-line verdict."""
    if not result.rows:
        return "no overlapping metrics to compare\n"

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        if isinstance(value, str) and len(value) > 16:
            return value[:13] + "..."
        return str(value)

    rows = [
        [
            row.name,
            cell(row.old),
            cell(row.new),
            "-" if row.change_pct is None else f"{row.change_pct:+.1f}%",
            row.direction,
            "REGRESSED" if row.regressed else "ok",
        ]
        for row in result.rows
    ]
    table = render_table(
        ["metric", "old", "new", "change", "direction", "status"],
        rows,
        title=(
            f"benchmark comparison "
            f"(threshold {result.threshold_pct:g}% on directional metrics)"
        ),
    )
    count = len(result.regressions)
    verdict = (
        f"{count} regression(s) out of {len(result.rows)} compared metrics"
        if count
        else f"no regressions across {len(result.rows)} compared metrics"
    )
    return f"{table}\n\n{verdict}\n"
