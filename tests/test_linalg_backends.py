"""Dense vs sparse backend agreement (:mod:`repro.linalg`).

The backend abstraction's contract is *observational equivalence*: every
belief-side quantity the controller consumes — belief updates, tree
decisions, refinement candidates, RA-Bound vectors, episode costs — must be
the same whether the model is stored as dense tensors or as the sparse
containers.  Hypothesis drives random POMDPs through both representations;
the shipped systems pin the contract at the campaign-fingerprint level,
where a single flipped decision anywhere in 30+ episodes would change the
hash.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.passes import analyze
from repro.bounds.incremental import (
    BACKUP_TIE_EPSILON,
    _first_within,
    incremental_update,
)
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import ModelError
from repro.linalg.backends import (
    densify_observations,
    densify_rewards,
    densify_transitions,
    resolve_backend,
    sparsify_observations,
    sparsify_rewards,
    sparsify_transitions,
)
from repro.pomdp.belief import update_belief
from repro.pomdp.model import POMDP
from repro.pomdp.tree import DECISION_TIE_EPSILON, _best_action, expand_tree
from repro.recovery.model import (
    convert_backend,
    make_null_absorbing,
    with_termination_action,
)
from repro.sim.campaign import run_campaign
from repro.sim.metrics import campaign_fingerprint
from repro.systems.emn import MONITOR_DURATION, build_emn_system
from repro.systems.faults import FaultKind
from repro.systems.tiered import build_tiered_system
from tests.conftest import random_pomdp

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)

#: Cross-backend numeric agreement: dense and sparse paths reorder
#: floating-point sums, so quantities match to accumulation error, not
#: bit-for-bit.
TOL = 1e-12


def _sparse_twin(pomdp: POMDP) -> POMDP:
    """The same POMDP with all three tensors moved to the sparse containers."""
    return POMDP(
        transitions=sparsify_transitions(pomdp.transitions),
        observations=sparsify_observations(pomdp.observations),
        rewards=sparsify_rewards(pomdp.rewards),
        state_labels=pomdp.state_labels,
        action_labels=pomdp.action_labels,
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )


class TestContainerAlgebra:
    """Sparse containers reproduce the dense tensors entry for entry."""

    def _pomdp(self, seed=7):
        return random_pomdp(np.random.default_rng(seed), n_states=6, n_actions=4)

    def test_round_trip_is_lossless(self):
        pomdp = self._pomdp()
        sparse = _sparse_twin(pomdp)
        np.testing.assert_array_equal(
            densify_transitions(sparse.transitions), pomdp.transitions
        )
        np.testing.assert_array_equal(
            densify_observations(sparse.observations), pomdp.observations
        )
        np.testing.assert_array_equal(
            densify_rewards(sparse.rewards), pomdp.rewards
        )

    def test_transition_accessors_match_dense(self):
        pomdp = self._pomdp()
        sparse = _sparse_twin(pomdp)
        transitions = sparse.transitions
        rng = np.random.default_rng(11)
        values = rng.normal(size=pomdp.n_states)
        belief = rng.dirichlet(np.ones(pomdp.n_states))
        for action in range(pomdp.n_actions):
            dense_matrix = pomdp.transitions[action]
            for state in range(pomdp.n_states):
                np.testing.assert_allclose(
                    transitions.row(action, state),
                    dense_matrix[state],
                    atol=TOL,
                )
                np.testing.assert_allclose(
                    transitions.action_column(action, state),
                    dense_matrix[:, state],
                    atol=TOL,
                )
            np.testing.assert_allclose(
                transitions.matvec(action, values),
                dense_matrix @ values,
                atol=TOL,
            )
            np.testing.assert_allclose(
                transitions.predict(belief, action),
                belief @ dense_matrix,
                atol=TOL,
            )

    def test_structural_accessors(self):
        pomdp = self._pomdp()
        transitions = _sparse_twin(pomdp).transitions
        for state in range(pomdp.n_states):
            np.testing.assert_allclose(
                transitions.self_loop_values(state),
                pomdp.transitions[:, state, state],
                atol=TOL,
            )
        # A random dense model has no structural zeros, so the effective
        # non-zero count is exactly the dense entry count.
        assert transitions.effective_nnz() == pomdp.transitions.size
        np.testing.assert_allclose(
            np.asarray(transitions.mean_matrix().todense()),
            pomdp.transitions.mean(axis=0),
            atol=TOL,
        )
        # union_support is documented as conservative: it never drops an
        # edge any action has, but may keep extras (masked base rows).
        union = np.asarray(transitions.union_support().todense())
        assert np.all(union >= pomdp.transitions.max(axis=0) - TOL)

    def test_reward_scalar_is_bit_exact(self):
        """Overridden entries return the stored value bit-for-bit (episode
        costs feed campaign fingerprints, so drift would change hashes)."""
        pomdp = self._pomdp()
        rewards = _sparse_twin(pomdp).rewards
        for action in range(pomdp.n_actions):
            for state in range(pomdp.n_states):
                assert rewards.scalar(action, state) == pomdp.rewards[action, state]

    def test_resolve_backend_modes(self):
        assert resolve_backend("dense", 10, density=0.01).is_sparse is False
        assert resolve_backend("sparse", 10, density=1.0).is_sparse is True
        assert resolve_backend("auto", 500_000, density=1e-5).is_sparse is True
        with pytest.raises(ModelError):
            resolve_backend("ragged", 10, density=0.5)


class TestRandomModelAgreement:
    """Hypothesis: both backends agree on every controller-facing quantity."""

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_belief_updates_agree(self, seed):
        rng = np.random.default_rng(seed)
        dense = random_pomdp(rng)
        sparse = _sparse_twin(dense)
        belief = rng.dirichlet(np.ones(dense.n_states))
        for action in range(dense.n_actions):
            for observation in range(dense.n_observations):
                posterior_dense = update_belief(dense, belief, action, observation)
                posterior_sparse = update_belief(sparse, belief, action, observation)
                np.testing.assert_allclose(
                    posterior_sparse, posterior_dense, atol=TOL
                )

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_ra_bound_vectors_agree(self, seed):
        rng = np.random.default_rng(seed)
        dense = random_pomdp(rng)
        sparse = _sparse_twin(dense)
        np.testing.assert_allclose(
            ra_bound_vector(sparse), ra_bound_vector(dense), atol=1e-9
        )

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_tree_decisions_agree(self, seed):
        """Same root action AND same root value on both backends — the
        tolerance tie-break makes the action robust to solver noise."""
        rng = np.random.default_rng(seed)
        dense = random_pomdp(rng)
        sparse = _sparse_twin(dense)
        belief = rng.dirichlet(np.ones(dense.n_states))
        for depth in (1, 2):
            decision_dense = expand_tree(
                dense, belief, depth, BoundVectorSet(ra_bound_vector(dense))
            )
            decision_sparse = expand_tree(
                sparse, belief, depth, BoundVectorSet(ra_bound_vector(sparse))
            )
            assert decision_sparse.action == decision_dense.action
            assert decision_sparse.value == pytest.approx(
                decision_dense.value, abs=1e-9
            )

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_refinement_candidates_agree(self, seed):
        """incremental_update picks the same hyperplane and action — the
        backup tie-break keeps structurally-tied candidates aligned."""
        rng = np.random.default_rng(seed)
        dense = random_pomdp(rng)
        sparse = _sparse_twin(dense)
        vectors = np.vstack(
            [ra_bound_vector(dense), rng.uniform(-3.0, -1.0, dense.n_states)]
        )
        belief = rng.dirichlet(np.ones(dense.n_states))
        vector_dense, action_dense = incremental_update(dense, vectors, belief)
        vector_sparse, action_sparse = incremental_update(sparse, vectors, belief)
        assert action_sparse == action_dense
        np.testing.assert_allclose(vector_sparse, vector_dense, atol=1e-9)


class TestTieBreaks:
    """The tolerance tie-breaks that make cross-backend determinism possible."""

    def test_best_action_prefers_lowest_index_within_tolerance(self):
        values = np.array([-2.0, -1.0 - DECISION_TIE_EPSILON / 2, -1.0])
        assert _best_action(values) == 1
        assert _best_action(np.array([-2.0, -1.0 - 1e-6, -1.0])) == 2

    def test_first_within_prefers_lowest_index_within_tolerance(self):
        scores = np.array([-1.0 - BACKUP_TIE_EPSILON / 2, -1.0, -5.0])
        assert _first_within(scores) == 0
        assert _first_within(np.array([-1.0 - 1e-6, -1.0, -5.0])) == 1


class TestAugmentationParity:
    """Figure 2 rewiring produces identical models on both backends."""

    def _recovery_pieces(self, seed=3):
        rng = np.random.default_rng(seed)
        pomdp = random_pomdp(rng, n_states=5, n_actions=3)
        null_states = np.zeros(5, dtype=bool)
        null_states[0] = True
        rate = rng.uniform(0.0, 1.0, size=5)
        rate[0] = 0.0
        return pomdp, null_states, rate

    def test_make_null_absorbing_parity(self):
        pomdp, null_states, _ = self._recovery_pieces()
        dense = make_null_absorbing(pomdp, null_states)
        sparse = make_null_absorbing(_sparse_twin(pomdp), null_states)
        np.testing.assert_allclose(
            densify_transitions(sparse.transitions), dense.transitions, atol=TOL
        )
        np.testing.assert_allclose(
            densify_rewards(sparse.rewards), dense.rewards, atol=TOL
        )

    def test_with_termination_action_parity(self):
        pomdp, null_states, rate = self._recovery_pieces()
        dense, s_t_dense, a_t_dense = with_termination_action(
            pomdp, null_states, rate, operator_response_time=3600.0
        )
        sparse, s_t_sparse, a_t_sparse = with_termination_action(
            _sparse_twin(pomdp), null_states, rate, operator_response_time=3600.0
        )
        assert (s_t_sparse, a_t_sparse) == (s_t_dense, a_t_dense)
        np.testing.assert_allclose(
            densify_transitions(sparse.transitions), dense.transitions, atol=TOL
        )
        np.testing.assert_allclose(
            densify_observations(sparse.observations), dense.observations, atol=TOL
        )
        np.testing.assert_allclose(
            densify_rewards(sparse.rewards), dense.rewards, atol=TOL
        )


class TestShippedSystems:
    """The tiered and EMN builders honour the backend contract end to end."""

    def test_tiered_sparse_build_matches_dense(self):
        dense = build_tiered_system(replicas=(2, 2, 2), backend="dense").model
        sparse = build_tiered_system(replicas=(2, 2, 2), backend="sparse").model
        assert sparse.pomdp.backend.is_sparse
        np.testing.assert_allclose(
            densify_transitions(sparse.pomdp.transitions),
            dense.pomdp.transitions,
            atol=TOL,
        )
        np.testing.assert_allclose(
            densify_observations(sparse.pomdp.observations),
            dense.pomdp.observations,
            atol=TOL,
        )
        np.testing.assert_allclose(
            densify_rewards(sparse.pomdp.rewards), dense.pomdp.rewards, atol=TOL
        )

    def test_convert_backend_round_trip(self):
        dense = build_tiered_system(replicas=(2, 2, 2), backend="dense").model
        back = convert_backend(convert_backend(dense, "sparse"), "dense")
        np.testing.assert_array_equal(back.pomdp.transitions, dense.pomdp.transitions)
        np.testing.assert_array_equal(
            back.pomdp.observations, dense.pomdp.observations
        )
        np.testing.assert_array_equal(back.pomdp.rewards, dense.pomdp.rewards)

    def test_sparse_builds_are_diagnostic_clean(self):
        """The analyzer runs its full pass suite over sparse models and
        finds nothing wrong (informational findings allowed)."""
        for model in (
            build_tiered_system(replicas=(2, 2, 2), backend="sparse").model,
            build_emn_system(backend="sparse").model,
        ):
            report = analyze(model)
            assert not report.errors, [str(d) for d in report.errors]
            assert not report.warnings, [str(d) for d in report.warnings]


class TestCampaignFingerprints:
    """The ISSUE's core invariant: identical campaign hashes across
    backends, serial and parallel."""

    @staticmethod
    def _fingerprint(backend: str, parallel: int | None) -> str:
        from repro.experiments.table1 import make_controller

        system = build_emn_system(backend=backend)
        controller = make_controller("bounded (depth 1)", system)
        result = run_campaign(
            controller,
            fault_states=system.fault_states(FaultKind.ZOMBIE),
            injections=30,
            seed=2026,
            monitor_tail=MONITOR_DURATION,
            parallel=parallel,
        )
        return campaign_fingerprint(result.episodes)

    def test_serial_fingerprints_match(self):
        assert self._fingerprint("dense", None) == self._fingerprint(
            "sparse", None
        )

    @pytest.mark.slow
    def test_parallel_fingerprints_match(self):
        reference = self._fingerprint("dense", None)
        assert self._fingerprint("dense", 4) == reference
        assert self._fingerprint("sparse", 4) == reference


class TestOnlineScalabilitySmoke:
    """`scalability --online` at smoke scale: sparse build, online decisions."""

    def test_run_online_small(self):
        from repro.experiments.scalability import format_online, run_online

        result = run_online(replicas=(40, 40, 40), seed=2006)
        assert result.n_states == 2 + 2 * 3 * 40
        assert result.episode_steps >= 1
        assert result.episode_recovered or result.episode_terminated
        report = format_online(result)
        assert "Bounded controller online" in report
        assert f"|S|={result.n_states:,}" in report
