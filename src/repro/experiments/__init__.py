"""Experiment harnesses regenerating the paper's tables and figures.

Each module reproduces one artifact of Section 5 (see DESIGN.md's
per-experiment index):

* :mod:`repro.experiments.fig5` — Figure 5(a) (iterative lower-bound
  improvement) and Figure 5(b) (bound-vector growth), Random vs Average
  bootstrapping.
* :mod:`repro.experiments.table1` — Table 1's fault-injection comparison of
  the six controllers.
* :mod:`repro.experiments.ablations` — the bound-comparison experiment of
  Section 3.1 (RA vs BI-POMDP vs blind-policy convergence), plus sweeps the
  paper motivates: operator response time, lookahead depth, monitor
  quality, and bound-computation cost.
* :mod:`repro.experiments.grid` — the resumable, checkpointed sweep
  runner: experiments × controllers × seeds × backends as fingerprinted
  cells, persisted to an append-only :mod:`repro.experiments.store`.

Run them from the command line::

    python -m repro.experiments table1 --injections 1000 --seed 0
    python -m repro.experiments fig5a
    python -m repro.experiments fig5b
    python -m repro.experiments ablations
    python -m repro.experiments grid results/ --experiments table1 fig5
"""

from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.grid import GridCell, GridResult, GridSpec, run_grid
from repro.experiments.store import ResultsStore
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "Fig5Result",
    "GridCell",
    "GridResult",
    "GridSpec",
    "ResultsStore",
    "Table1Result",
    "run_fig5",
    "run_grid",
    "run_table1",
]
