"""Serialization for models and bound sets.

Section 4.3 positions the RA-Bound computation and much of the refinement
as *off-line* work; a production controller therefore needs to persist what
it computed — the model it was built for and the bound hyperplanes it has
accumulated — and reload them at startup.  Everything serialises to a
single ``.npz`` archive (arrays) with labels stored as fixed-width unicode
arrays, so an archive is self-contained and loadable without pickle.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import ModelError
from repro.pomdp.model import POMDP
from repro.recovery.model import RecoveryModel

#: Archive format version; bumped on layout changes.
FORMAT_VERSION = 1


def _labels_array(labels: tuple[str, ...]) -> np.ndarray:
    return np.array(list(labels), dtype=np.str_)


def _labels_tuple(array: np.ndarray) -> tuple[str, ...]:
    return tuple(str(label) for label in array)


def save_pomdp(path, pomdp: POMDP) -> None:
    """Write ``pomdp`` to ``path`` as a ``.npz`` archive."""
    np.savez_compressed(
        path,
        kind=np.array("pomdp"),
        version=np.array(FORMAT_VERSION),
        transitions=pomdp.transitions,
        observations=pomdp.observations,
        rewards=pomdp.rewards,
        state_labels=_labels_array(pomdp.state_labels),
        action_labels=_labels_array(pomdp.action_labels),
        observation_labels=_labels_array(pomdp.observation_labels),
        discount=np.array(pomdp.discount),
    )


def _check_kind(archive, expected: str, path) -> None:
    kind = str(archive.get("kind", ""))
    if kind != expected:
        raise ModelError(
            f"{path} holds a {kind or 'unknown'} archive, expected {expected}"
        )
    version = int(archive.get("version", -1))
    if version != FORMAT_VERSION:
        raise ModelError(
            f"{path} uses archive format {version}, this build reads "
            f"{FORMAT_VERSION}"
        )


def load_pomdp(path) -> POMDP:
    """Read a POMDP previously written by :func:`save_pomdp`."""
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, "pomdp", path)
        return POMDP(
            transitions=archive["transitions"],
            observations=archive["observations"],
            rewards=archive["rewards"],
            state_labels=_labels_tuple(archive["state_labels"]),
            action_labels=_labels_tuple(archive["action_labels"]),
            observation_labels=_labels_tuple(archive["observation_labels"]),
            discount=float(archive["discount"]),
        )


def save_recovery_model(path, model: RecoveryModel) -> None:
    """Write a recovery model (augmented POMDP + recovery metadata)."""
    optional = {}
    if model.terminate_state is not None:
        optional["terminate_state"] = np.array(model.terminate_state)
        optional["terminate_action"] = np.array(model.terminate_action)
        optional["operator_response_time"] = np.array(
            model.operator_response_time
        )
    np.savez_compressed(
        path,
        kind=np.array("recovery-model"),
        version=np.array(FORMAT_VERSION),
        transitions=model.pomdp.transitions,
        observations=model.pomdp.observations,
        rewards=model.pomdp.rewards,
        state_labels=_labels_array(model.pomdp.state_labels),
        action_labels=_labels_array(model.pomdp.action_labels),
        observation_labels=_labels_array(model.pomdp.observation_labels),
        discount=np.array(model.pomdp.discount),
        null_states=model.null_states,
        rate_rewards=model.rate_rewards,
        durations=model.durations,
        passive_actions=model.passive_actions,
        recovery_notification=np.array(model.recovery_notification),
        **optional,
    )


def load_recovery_model(path) -> RecoveryModel:
    """Read a recovery model previously written by :func:`save_recovery_model`."""
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, "recovery-model", path)
        pomdp = POMDP(
            transitions=archive["transitions"],
            observations=archive["observations"],
            rewards=archive["rewards"],
            state_labels=_labels_tuple(archive["state_labels"]),
            action_labels=_labels_tuple(archive["action_labels"]),
            observation_labels=_labels_tuple(archive["observation_labels"]),
            discount=float(archive["discount"]),
        )
        has_terminate = "terminate_state" in archive
        return RecoveryModel(
            pomdp=pomdp,
            null_states=archive["null_states"],
            rate_rewards=archive["rate_rewards"],
            durations=archive["durations"],
            passive_actions=archive["passive_actions"],
            recovery_notification=bool(archive["recovery_notification"]),
            terminate_state=(
                int(archive["terminate_state"]) if has_terminate else None
            ),
            terminate_action=(
                int(archive["terminate_action"]) if has_terminate else None
            ),
            operator_response_time=(
                float(archive["operator_response_time"])
                if has_terminate
                else None
            ),
        )


def save_bound_set(path, bound_set: BoundVectorSet) -> None:
    """Persist a refined bound set (the off-line artefact of Section 4.3)."""
    np.savez_compressed(
        path,
        kind=np.array("bound-set"),
        version=np.array(FORMAT_VERSION),
        vectors=bound_set.vectors,
        usage=bound_set._usage,
        pinned=np.array(bound_set._pinned),
        max_vectors=np.array(
            -1 if bound_set.max_vectors is None else bound_set.max_vectors
        ),
    )


def load_bound_set(path, model=None) -> BoundVectorSet:
    """Reload a bound set; usage counters and pinning survive the round trip.

    When ``model`` is given (a RecoveryModel, POMDP, or prepared
    :class:`~repro.analysis.view.ModelView`), the loaded set is certified
    against it with the R3xx bound-soundness passes
    (:func:`repro.analysis.certify.certify_bound_set`) before being
    returned; a stale or corrupted archive — wrong dimension, non-finite
    entries, vectors above the Bellman backup of the set's envelope, or
    positive mass on pinned zero-value states — raises
    :class:`~repro.exceptions.AnalysisError` instead of silently steering
    the controller with an unsound bound.
    """
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, "bound-set", path)
        max_vectors = int(archive["max_vectors"])
        bound_set = BoundVectorSet(
            archive["vectors"],
            max_vectors=None if max_vectors < 0 else max_vectors,
        )
        bound_set._usage = archive["usage"].copy()
        bound_set._pinned = int(archive["pinned"])
    if model is not None:
        from repro.analysis.certify import certify_bound_set

        certify_bound_set(
            model, bound_set, title=f"bound-set certificate for {path}"
        ).raise_if_errors()
    return bound_set
