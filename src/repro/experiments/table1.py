"""Table 1: fault-injection comparison of recovery controllers.

Reproduces Section 5's second experiment: inject zombie faults (the
difficult-to-diagnose ones) into the EMN system and measure per-fault
averages for six controllers — most-likely, heuristic with lookahead depths
1/2/3, the bounded controller (depth 1, bootstrapped with 10 runs at depth
2), and the oracle.

The paper runs 10,000 injections; the count here is configurable because
the heuristic depth-3 controller is ~4 orders of magnitude slower per
decision than most-likely (that asymmetry is itself one of Table 1's
findings).  Absolute algorithm times depend on hardware and language; the
claims that transfer are the orderings (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controllers.base import RecoveryController
from repro.controllers.bootstrap import bootstrap_bounds
from repro.controllers.bounded import BoundedController
from repro.controllers.heuristic import HeuristicController
from repro.controllers.most_likely import MostLikelyController
from repro.controllers.oracle import OracleController
from repro.recovery.model import RecoveryModel
from repro.sim.campaign import CampaignResult, run_campaign
from repro.systems.emn import MONITOR_DURATION, EMNSystem, build_emn_system
from repro.systems.faults import FaultKind
from repro.util.tables import render_table

#: Table 1 of the paper, for side-by-side comparison:
#: (cost, recovery time s, residual time s, algorithm time ms, actions,
#:  monitor calls) per controller.
PAPER_TABLE1 = {
    "most likely": (244.40, 394.73, 212.98, 0.09, 3.00, 3.00),
    "heuristic (depth 1)": (151.04, 299.72, 193.24, 6.71, 1.71, 17.42),
    "heuristic (depth 2)": (118.481, 269.96, 169.34, 123.59, 1.216, 22.51),
    "heuristic (depth 3)": (118.846, 271.32, 169.86, 1485.0, 1.216, 22.50),
    "bounded (depth 1)": (114.16, 192.30, 165.24, 92.0, 1.20, 7.69),
    "oracle": (84.4, 132.00, 132.00, float("nan"), 1.00, 0.00),
}

#: The paper's configuration for the bounded controller's bootstrap phase.
BOOTSTRAP_RUNS = 10
BOOTSTRAP_DEPTH = 2

#: Controllers included by default, in the paper's row order.
DEFAULT_CONTROLLERS = (
    "most likely",
    "heuristic (depth 1)",
    "heuristic (depth 2)",
    "heuristic (depth 3)",
    "bounded (depth 1)",
    "oracle",
)


@dataclass(frozen=True)
class Table1Result:
    """Campaign results for every controller, in row order."""

    campaigns: tuple[CampaignResult, ...]
    injections: int
    seed: int

    def campaign(self, name: str) -> CampaignResult:
        """The campaign whose controller row is labelled ``name``."""
        for campaign in self.campaigns:
            if campaign.controller_name == name:
                return campaign
        raise KeyError(name)


def make_controller(
    name: str,
    system: EMNSystem,
    termination_probability: float = 0.9999,
    model: RecoveryModel | None = None,
) -> RecoveryController:
    """Instantiate a Table 1 controller by row name.

    The bounded controller is bootstrapped with the paper's configuration
    (10 simulated runs at depth 2) before being returned.  ``model``
    overrides the system's model (the grid runner passes backend-converted
    copies); by construction the conversion is lossless, so the controller
    behaves identically on either.
    """
    if model is None:
        model = system.model
    if name == "most likely":
        return MostLikelyController(
            model, termination_probability=termination_probability
        )
    if name.startswith("heuristic"):
        depth = int(name.split("depth")[1].strip(" )"))
        return HeuristicController(
            model, depth=depth, termination_probability=termination_probability
        )
    if name.startswith("bounded"):
        depth = int(name.split("depth")[1].strip(" )"))
        bound_set, _ = bootstrap_bounds(
            model,
            iterations=BOOTSTRAP_RUNS,
            depth=BOOTSTRAP_DEPTH,
            variant="average",
            seed=0,
        )
        # Accept online refinements worth at least one dropped request so
        # the bound set stays compact over a 10,000-fault campaign
        # (Section 4.3's finite-storage advice, scaled to the EMN costs).
        return BoundedController(
            model, depth=depth, bound_set=bound_set, refine_min_improvement=1.0
        )
    if name == "oracle":
        return OracleController(model)
    raise KeyError(f"unknown controller {name!r}")


def run_table1(
    system: EMNSystem | None = None,
    injections: int = 10_000,
    seed: int = 2006,
    controllers: tuple[str, ...] = DEFAULT_CONTROLLERS,
    termination_probability: float = 0.9999,
    parallel: int | None = None,
) -> Table1Result:
    """Run the fault-injection campaign for every requested controller.

    Every controller sees the same injection seed, so fault sequences and
    monitor noise are paired across rows (a lower-variance comparison than
    the paper's independent runs).  ``parallel`` shards each campaign's
    episodes across that many worker processes (see
    :mod:`repro.sim.parallel`); all metrics except the wall-clock
    ``algorithm_time`` are identical to the serial run.
    """
    if system is None:
        system = build_emn_system()
    zombies = system.fault_states(FaultKind.ZOMBIE)
    campaigns = []
    for name in controllers:
        controller = make_controller(
            name, system, termination_probability=termination_probability
        )
        campaigns.append(
            run_campaign(
                controller,
                fault_states=zombies,
                injections=injections,
                seed=seed,
                monitor_tail=MONITOR_DURATION,
                parallel=parallel,
            )
        )
    return Table1Result(
        campaigns=tuple(campaigns), injections=injections, seed=seed
    )


def format_table1(result: Table1Result, compare_paper: bool = True) -> str:
    """Render the measured table, optionally interleaved with the paper's."""
    headers = [
        "Algorithm",
        "Cost",
        "Recovery (s)",
        "Residual (s)",
        "Algo (ms)",
        "Actions",
        "Monitor calls",
    ]
    rows = []
    for campaign in result.campaigns:
        rows.append(campaign.summary.as_row(campaign.controller_name))
        if compare_paper and campaign.controller_name in PAPER_TABLE1:
            paper = PAPER_TABLE1[campaign.controller_name]
            rows.append([f"  (paper)"] + list(paper))
    table = render_table(
        headers,
        rows,
        title=(
            f"Table 1: Fault-injection results "
            f"({result.injections} zombie injections, seed {result.seed}; "
            "values are per-fault averages)"
        ),
    )
    notes = [
        "",
        "Never-give-up check (paper: 'none of the controllers ever quit "
        "without recovering the system'):",
    ]
    for campaign in result.campaigns:
        summary = campaign.summary
        notes.append(
            f"  {campaign.controller_name}: early terminations = "
            f"{summary.early_terminations}, unrecovered = {summary.unrecovered}"
        )
    return table + "\n" + "\n".join(notes)


def ordering_checks(result: Table1Result) -> dict[str, bool]:
    """The cross-row claims of Section 5 as machine-checkable booleans."""
    by_name = {c.controller_name: c.summary for c in result.campaigns}
    checks: dict[str, bool] = {}

    def have(*names: str) -> bool:
        return all(name in by_name for name in names)

    if have("bounded (depth 1)", "most likely"):
        checks["bounded beats most-likely on cost"] = (
            by_name["bounded (depth 1)"].cost < by_name["most likely"].cost
        )
    if have("bounded (depth 1)", "heuristic (depth 1)"):
        checks["bounded beats heuristic d1 on cost"] = (
            by_name["bounded (depth 1)"].cost < by_name["heuristic (depth 1)"].cost
        )
        checks["bounded recovers faster than heuristic d1"] = (
            by_name["bounded (depth 1)"].recovery_time
            < by_name["heuristic (depth 1)"].recovery_time
        )
    if have("bounded (depth 1)", "heuristic (depth 2)"):
        checks["bounded decides faster than heuristic d2"] = (
            by_name["bounded (depth 1)"].algorithm_time_ms
            < by_name["heuristic (depth 2)"].algorithm_time_ms
        )
    if have("oracle",):
        checks["oracle is the floor on cost"] = all(
            by_name["oracle"].cost <= summary.cost + 1e-9
            for summary in by_name.values()
        )
    checks["no controller ever quit without recovering"] = all(
        summary.early_terminations == 0 for summary in by_name.values()
    )
    return checks
