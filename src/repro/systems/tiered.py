"""Parametric N-tier replicated deployments.

A second target system beyond the paper's EMN instance: a request pipeline
of ``T`` tiers with ``R_t`` replicas each (web → app → db, say), where every
request is load-balanced onto one replica per tier and fails if any chosen
replica is faulty.  Monitoring is tier-granular: one ping monitor per tier
(alarms when any replica in the tier is ping-dead — crashes only) and one
end-to-end probe (alarms when its randomly-routed request fails — catches
zombies, localises poorly).  The observation space is therefore
``2^(T+1)`` regardless of the replica counts, so the model family scales
in the *state* dimension while staying controller-tractable.

Two entry points:

* :func:`build_tiered_system` — a full :class:`RecoveryModel` for moderate
  sizes, usable with every controller in the library;
* :func:`tiered_ra_chain` — the RA-Bound Markov chain of the same family
  constructed *directly in sparse form*, scaling to hundreds of thousands
  of states.  This backs the scalability experiment for Section 4.3's
  claim that the RA-Bound linear system "can be solved using standard,
  numerically stable linear system solvers for models with up to hundreds
  of thousands of states".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelError
from repro.linalg.backends import resolve_backend
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.mdp.linear_solvers import solve_markov_reward
from repro.pomdp.model import POMDP
from repro.recovery.builder import RecoveryModelBuilder
from repro.recovery.model import RecoveryModel, with_termination_action

#: Default per-replica restart time and monitor-suite execution time (s).
RESTART_DURATION = 30.0
MONITOR_DURATION = 2.0
#: Default operator response time (s).
OPERATOR_RESPONSE_TIME = 3600.0
#: Requests consumed per monitor execution (keeps actions strictly costly).
PROBE_COST = 0.5


@dataclass(frozen=True)
class TieredSystem:
    """A generated tiered recovery model plus its layout metadata."""

    model: RecoveryModel
    tier_names: tuple[str, ...]
    replicas: tuple[int, ...]
    components: tuple[str, ...]
    observe_action: int

    def zombie_states(self) -> np.ndarray:
        """Indices of the zombie fault states."""
        pomdp = self.model.pomdp
        return np.array(
            [
                index
                for index, label in enumerate(pomdp.state_labels)
                if label.startswith("zombie(")
            ],
            dtype=int,
        )

    def crash_states(self) -> np.ndarray:
        """Indices of the crash fault states."""
        pomdp = self.model.pomdp
        return np.array(
            [
                index
                for index, label in enumerate(pomdp.state_labels)
                if label.startswith("crash(")
            ],
            dtype=int,
        )


def _component_names(
    tier_names: tuple[str, ...], replicas: tuple[int, ...]
) -> list[tuple[str, int]]:
    """Flat (component, tier_index) list, e.g. [("web1", 0), ("web2", 0), ...]."""
    names = []
    for tier_index, (tier, count) in enumerate(zip(tier_names, replicas)):
        for replica in range(1, count + 1):
            names.append((f"{tier}{replica}", tier_index))
    return names


def _tiered_observation_matrix(
    all_state_bits: np.ndarray, n_bits: int
) -> np.ndarray:
    """Joint-monitor observation matrix from per-state alarm probabilities.

    ``all_state_bits[s, b]`` is the marginal probability that monitor bit
    ``b`` alarms in state ``s``; bits are independent, so each of the
    ``2**n_bits`` joint outcomes is a product.  Shared by the declarative
    (dense) and the direct sparse construction paths so both emit the same
    observation model.
    """
    matrix = np.ones((all_state_bits.shape[0], 2**n_bits))
    for column, outcome in enumerate(itertools.product((0, 1), repeat=n_bits)):
        for bit, value in enumerate(outcome):
            matrix[:, column] *= (
                all_state_bits[:, bit] if value else 1.0 - all_state_bits[:, bit]
            )
    return matrix


def build_tiered_system(
    replicas: tuple[int, ...] = (2, 2, 2),
    tier_names: tuple[str, ...] | None = None,
    restart_duration: float = RESTART_DURATION,
    monitor_duration: float = MONITOR_DURATION,
    operator_response_time: float = OPERATOR_RESPONSE_TIME,
    probe_cost: float = PROBE_COST,
    include_crash_faults: bool = True,
    backend: str = "dense",
) -> TieredSystem:
    """Generate the recovery model for a tiered deployment.

    Args:
        replicas: replica count per tier (the tier count is its length).
        tier_names: display names; defaults to ``tier0``, ``tier1``, ...
        restart_duration: seconds to restart any one replica.
        monitor_duration: seconds per monitor-suite execution (appended to
            every action, as in the EMN model).
        operator_response_time: ``t_op`` for the termination rewards (the
            system lacks recovery notification: zombies can hide from a
            routed-around probe).
        probe_cost: requests consumed per monitor execution.
        include_crash_faults: drop the crash states for a zombie-only model.
        backend: ``"dense"`` (the original path, via the declarative
            builder), ``"sparse"`` (direct container construction — the
            only feasible path past a few thousand states), or ``"auto"``.
    """
    if not replicas or any(count < 1 for count in replicas):
        raise ModelError(f"replicas must be positive per tier, got {replicas}")
    n_tiers = len(replicas)
    if tier_names is None:
        tier_names = tuple(f"tier{i}" for i in range(n_tiers))
    if len(tier_names) != n_tiers:
        raise ModelError(
            f"{len(tier_names)} tier names for {n_tiers} tiers"
        )
    components = _component_names(tuple(tier_names), tuple(replicas))

    n_kinds = 2 if include_crash_faults else 1
    n_states = 1 + n_kinds * len(components)
    resolved = resolve_backend(
        backend, n_states, density=min(1.0, 3.0 / max(n_states, 1))
    )
    if resolved.is_sparse:
        return _build_tiered_sparse(
            replicas=tuple(replicas),
            tier_names=tuple(tier_names),
            components=components,
            restart_duration=restart_duration,
            monitor_duration=monitor_duration,
            operator_response_time=operator_response_time,
            probe_cost=probe_cost,
            include_crash_faults=include_crash_faults,
        )

    def fault_rate(tier_index: int) -> float:
        """Fraction of requests dropped by one faulty replica in the tier."""
        return 1.0 / replicas[tier_index]

    builder = RecoveryModelBuilder()
    builder.add_state("null", rate_cost=0.0, null=True)
    kinds = ("crash", "zombie") if include_crash_faults else ("zombie",)
    state_tier: dict[str, int] = {}
    for name, tier_index in components:
        for kind in kinds:
            label = f"{kind}({name})"
            builder.add_state(label, rate_cost=fault_rate(tier_index))
            state_tier[label] = tier_index

    all_states = ["null"] + list(state_tier)

    def action_cost(state: str, duration: float) -> float:
        rate = 0.0 if state == "null" else fault_rate(state_tier[state])
        return rate * duration + probe_cost

    for name, tier_index in components:
        repaired = {f"{kind}({name})" for kind in kinds}
        transitions = {label: {"null": 1.0} for label in repaired}
        costs = {}
        for state in all_states:
            if state in repaired:
                # The fault's rate applies while the restart runs, then the
                # system is healthy for the trailing monitor execution.
                costs[state] = (
                    fault_rate(tier_index) * restart_duration + probe_cost
                )
            else:
                costs[state] = action_cost(
                    state, restart_duration + monitor_duration
                )
        builder.add_action(
            f"restart({name})",
            duration=restart_duration + monitor_duration,
            transitions=transitions,
            costs=costs,
        )
    builder.add_action(
        "observe",
        duration=monitor_duration,
        costs={
            state: action_cost(state, monitor_duration) for state in all_states
        },
        passive=True,
    )

    # Observation model: T tier-ping bits + 1 end-to-end probe bit.
    def alarm_probabilities(state: str) -> np.ndarray:
        probabilities = np.zeros(n_tiers + 1)
        if state == "null":
            return probabilities
        tier_index = state_tier[state]
        if state.startswith("crash("):
            probabilities[tier_index] = 1.0  # tier ping sees the crash
            probabilities[n_tiers] = fault_rate(tier_index)
        else:  # zombie: invisible to pings, probabilistically probed
            probabilities[n_tiers] = fault_rate(tier_index)
        return probabilities

    n_bits = n_tiers + 1
    per_state = np.array([alarm_probabilities(state) for state in all_states])
    matrix = _tiered_observation_matrix(per_state, n_bits)
    builder.set_observation_matrix(
        _tiered_outcome_labels(tuple(tier_names), n_tiers), matrix
    )

    model = builder.build(
        recovery_notification=False,
        operator_response_time=operator_response_time,
    )
    return TieredSystem(
        model=model,
        tier_names=tuple(tier_names),
        replicas=tuple(replicas),
        components=tuple(name for name, _ in components),
        observe_action=model.pomdp.action_index("observe"),
    )


def _tiered_outcome_labels(
    tier_names: tuple[str, ...], n_tiers: int
) -> tuple[str, ...]:
    labels = []
    for outcome in itertools.product((0, 1), repeat=n_tiers + 1):
        parts = [
            f"{tier_names[i] if i < n_tiers else 'probe'}"
            f"{'!' if bit else '-'}"
            for i, bit in enumerate(outcome)
        ]
        labels.append(",".join(parts))
    return tuple(labels)


def _build_tiered_sparse(
    replicas: tuple[int, ...],
    tier_names: tuple[str, ...],
    components: list[tuple[str, int]],
    restart_duration: float,
    monitor_duration: float,
    operator_response_time: float,
    probe_cost: float,
    include_crash_faults: bool,
) -> TieredSystem:
    """Direct sparse-container construction of the tiered model.

    Identical semantics to the declarative path — same state/action/
    observation ordering and labels, same reward composition — but built
    as base + overrides without ever materialising the ``|A| x |S| x |S|``
    tensors: every action is the identity except that ``restart(c)``
    replaces the two (or one) fault rows of component ``c``, every action
    shares one observation matrix, and rewards are
    ``duration * rbar(s) - probe`` with per-repair replacement overrides.
    """
    kinds = ("crash", "zombie") if include_crash_faults else ("zombie",)
    n_kinds = len(kinds)
    n_tiers = len(replicas)
    n_components = len(components)
    n_states = 1 + n_kinds * n_components
    n_actions = n_components + 1  # restarts + observe

    state_labels = ["null"]
    for name, _tier in components:
        state_labels += [f"{kind}({name})" for kind in kinds]
    action_labels = [f"restart({name})" for name, _ in components] + ["observe"]

    # Per-state request-drop rate (cost magnitude per second).
    rate_cost = np.zeros(n_states)
    component_tier = np.array([tier for _, tier in components])
    fault_rates = 1.0 / np.asarray(replicas, dtype=float)
    rate_cost[1:] = np.repeat(fault_rates[component_tier], n_kinds)

    # Transitions: identity base; restart(c) sends c's fault states to null.
    fault_states = np.arange(1, n_states)
    transitions = SparseTransitions(
        base=sp.identity(n_states, format="csr"),
        row_action=np.repeat(np.arange(n_components), n_kinds),
        row_state=fault_states,
        rows=sp.csr_matrix(
            (
                np.ones(fault_states.size),
                (np.arange(fault_states.size), np.zeros(fault_states.size, int)),
            ),
            shape=(fault_states.size, n_states),
        ),
        n_actions=n_actions,
    )

    # Observations: T tier-ping bits + 1 probe bit, same for every action.
    per_state = np.zeros((n_states, n_tiers + 1))
    for c, (_name, tier) in enumerate(components):
        for k, kind in enumerate(kinds):
            state = 1 + c * n_kinds + k
            if kind == "crash":
                per_state[state, tier] = 1.0
            per_state[state, n_tiers] = fault_rates[tier]
    matrix = _tiered_observation_matrix(per_state, n_tiers + 1)
    observations = SparseObservations(
        base=sp.csr_matrix(matrix), overrides={}, n_actions=n_actions
    )

    # Rewards: r(a, s) = duration_a * rbar(s) - probe, except that the
    # repairing restart pays the fault rate only while the restart runs.
    durations = np.append(
        np.full(n_components, restart_duration + monitor_duration),
        monitor_duration,
    )
    repaired_values = -(rate_cost[fault_states] * restart_duration + probe_cost)
    rewards = StructuredRewards(
        time_scale=durations,
        rate=-rate_cost,
        fixed=np.full(n_actions, probe_cost),
        override=sp.csr_matrix(
            (
                repaired_values,
                (np.repeat(np.arange(n_components), n_kinds), fault_states),
            ),
            shape=(n_actions, n_states),
        ),
    )

    pomdp = POMDP(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        state_labels=tuple(state_labels),
        action_labels=tuple(action_labels),
        observation_labels=_tiered_outcome_labels(tier_names, n_tiers),
        discount=1.0,
    )

    null_states = np.zeros(n_states, dtype=bool)
    null_states[0] = True
    rate_rewards = -rate_cost
    augmented, terminate_state, terminate_action = with_termination_action(
        pomdp, null_states, rate_rewards, operator_response_time
    )
    passive = np.zeros(n_actions, dtype=bool)
    passive[-1] = True
    model = RecoveryModel(
        pomdp=augmented,
        null_states=np.append(null_states, False),
        rate_rewards=np.append(rate_rewards, 0.0),
        durations=np.append(durations, 0.0),
        passive_actions=np.append(passive, False),
        recovery_notification=False,
        terminate_state=terminate_state,
        terminate_action=terminate_action,
        operator_response_time=operator_response_time,
    )
    return TieredSystem(
        model=model,
        tier_names=tuple(tier_names),
        replicas=tuple(replicas),
        components=tuple(name for name, _ in components),
        observe_action=model.pomdp.action_index("observe"),
    )


def tiered_ra_chain(
    replicas: tuple[int, ...],
    restart_duration: float = RESTART_DURATION,
    monitor_duration: float = MONITOR_DURATION,
    operator_response_time: float = OPERATOR_RESPONSE_TIME,
    probe_cost: float = PROBE_COST,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """The RA-Bound chain of the tiered family, built directly and sparsely.

    States: null, then (crash, zombie) per component, then ``s_T``; actions
    (never materialised): one restart per component, observe, ``a_T``.  The
    uniform chain has at most three non-zeros per row — stay, jump to null
    (the one fixing restart), jump to ``s_T`` (the terminate draw) — so the
    construction and the solve are both linear in the state count.

    Returns ``(chain, rewards)`` ready for
    :func:`repro.mdp.linear_solvers.solve_markov_reward` (method
    ``"direct"``) or scipy's sparse solvers.
    """
    if not replicas or any(count < 1 for count in replicas):
        raise ModelError(f"replicas must be positive per tier, got {replicas}")
    n_components = int(sum(replicas))
    n_states = 2 + 2 * n_components  # null + 2 faults/component + s_T
    n_actions = n_components + 2  # restarts + observe + a_T
    terminate = n_states - 1

    rates = np.zeros(n_states)
    index = 1
    for count in replicas:
        for _ in range(count):
            rates[index] = 1.0 / count  # crash
            rates[index + 1] = 1.0 / count  # zombie
            index += 2

    rows, cols, data = [], [], []

    def add(row, col, probability):
        rows.append(row)
        cols.append(col)
        data.append(probability)

    # Null: every action stays except a_T.
    add(0, 0, (n_actions - 1) / n_actions)
    add(0, terminate, 1 / n_actions)
    # Fault states: own restart fixes, a_T terminates, the rest stay.
    for state in range(1, terminate):
        add(state, 0, 1 / n_actions)
        add(state, terminate, 1 / n_actions)
        add(state, state, (n_actions - 2) / n_actions)
    add(terminate, terminate, 1.0)

    chain = sp.csr_matrix(
        (data, (rows, cols)), shape=(n_states, n_states)
    )

    # Mean single-step reward per state under the uniform action draw.
    rewards = np.zeros(n_states)
    action_time = restart_duration + monitor_duration
    for state in range(terminate):
        rate = rates[state]
        restart_cost = rate * action_time + probe_cost
        if state > 0:
            # The one fixing restart pays the fault rate only while the
            # restart runs (healthy trailing monitor execution).
            fixing_cost = rate * restart_duration + probe_cost
            restart_total = fixing_cost + (n_components - 1) * restart_cost
        else:
            restart_total = n_components * restart_cost
        observe_cost = rate * monitor_duration + probe_cost
        terminate_cost = rate * operator_response_time
        rewards[state] = -(
            restart_total + observe_cost + terminate_cost
        ) / n_actions
    return chain, rewards


def solve_tiered_ra_bound(
    replicas: tuple[int, ...], method: str = "sparse", **chain_kwargs
) -> np.ndarray:
    """RA-Bound values for a tiered family instance via the sparse backend.

    The chain never exists densely: :func:`tiered_ra_chain` builds it in
    CSR form (~3 non-zeros per row) and
    :func:`repro.mdp.linear_solvers.solve_markov_reward` factorises the
    transient block directly.  The terminate state is the single recurrent
    state; it is pinned to zero by the transient mask.
    """
    chain, rewards = tiered_ra_chain(replicas, **chain_kwargs)
    transient = np.ones(rewards.shape[0], dtype=bool)
    transient[-1] = False
    return solve_markov_reward(
        chain,
        rewards,
        discount=1.0,
        method=method,
        transient_states=transient,
    )
