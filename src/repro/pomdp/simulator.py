"""Ground-truth POMDP trajectory simulator.

The fault-injection environment of :mod:`repro.sim` needs to *be* the system:
it holds the true (hidden) state, applies the controller's actions by
sampling ``p``, and emits monitor outputs by sampling ``q``.  This class is
that machinery, independent of any recovery semantics so it can also drive
the bootstrapping phase of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ControllerError
from repro.linalg.ops import observation_row, reward_scalar, transition_row
from repro.pomdp.model import POMDP
from repro.util.rng import as_generator


@dataclass(frozen=True)
class StepResult:
    """Outcome of executing one action against the true system.

    Attributes:
        state: the (hidden) state the system arrived in.
        observation: the sampled observation index.
        reward: the single-step reward ``r(s, a)`` of the *origin* state.
    """

    state: int
    observation: int
    reward: float


class POMDPSimulator:
    """Samples trajectories of a POMDP from the ground-truth side.

    The controller must never read :attr:`state`; only the oracle controller
    and the metrics collector are allowed to (they represent omniscient
    infrastructure, not the controller under test).
    """

    def __init__(self, pomdp: POMDP, seed=None):
        self.pomdp = pomdp
        self._rng = as_generator(seed)
        self._state: int | None = None

    @property
    def state(self) -> int:
        """The current true state (raises before :meth:`reset`)."""
        if self._state is None:
            raise ControllerError("simulator not reset onto an episode")
        return self._state

    def reset(self, state: int) -> None:
        """Place the system in ``state`` (e.g. inject a fault)."""
        if not 0 <= state < self.pomdp.n_states:
            raise ControllerError(
                f"state {state} out of range for {self.pomdp.n_states} states"
            )
        self._state = int(state)

    def observe(self, action: int) -> int:
        """Sample an observation for the current state via ``q(.|s, a)``.

        Used for the *initial* observation of an episode, where monitors run
        before any recovery action has been taken.
        """
        distribution = observation_row(self.pomdp.observations, action, self.state)
        return int(self._rng.choice(self.pomdp.n_observations, p=distribution))

    def step(self, action: int) -> StepResult:
        """Execute ``action``: sample the transition, then the observation."""
        if not 0 <= action < self.pomdp.n_actions:
            raise ControllerError(
                f"action {action} out of range for {self.pomdp.n_actions} actions"
            )
        origin = self.state
        reward = reward_scalar(self.pomdp.rewards, action, origin)
        transition = transition_row(self.pomdp.transitions, action, origin)
        arrival = int(self._rng.choice(self.pomdp.n_states, p=transition))
        observation_distribution = observation_row(
            self.pomdp.observations, action, arrival
        )
        observation = int(
            self._rng.choice(self.pomdp.n_observations, p=observation_distribution)
        )
        self._state = arrival
        return StepResult(state=arrival, observation=observation, reward=reward)
