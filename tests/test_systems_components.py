"""Tests for deployments, faults, and the workload model."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.systems.components import Component, Deployment, Host
from repro.systems.faults import (
    Fault,
    FaultKind,
    ping_dead_components,
    unavailable_components,
)
from repro.systems.workload import RequestPath, check_fractions, drop_fraction


@pytest.fixture()
def deployment():
    return Deployment(
        hosts=(Host("h1", 300.0), Host("h2", 300.0)),
        components=(
            Component("web", host="h1", restart_duration=60.0),
            Component("app", host="h1", restart_duration=60.0),
            Component("db", host="h2", restart_duration=240.0),
        ),
    )


class TestDeployment:
    def test_lookups(self, deployment):
        assert deployment.host("h1").reboot_duration == 300.0
        assert deployment.component("db").host == "h2"
        assert deployment.components_on("h1") == ("web", "app")
        assert deployment.host_of("db") == "h2"

    def test_unknown_names_raise(self, deployment):
        with pytest.raises(KeyError):
            deployment.host("nope")
        with pytest.raises(KeyError):
            deployment.component("nope")
        with pytest.raises(KeyError):
            deployment.components_on("nope")

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(ModelError, match="duplicate host"):
            Deployment(hosts=(Host("h", 1.0), Host("h", 1.0)), components=())

    def test_duplicate_components_rejected(self):
        with pytest.raises(ModelError, match="duplicate component"):
            Deployment(
                hosts=(Host("h", 1.0),),
                components=(
                    Component("c", host="h", restart_duration=1.0),
                    Component("c", host="h", restart_duration=1.0),
                ),
            )

    def test_component_on_unknown_host_rejected(self):
        with pytest.raises(ModelError, match="unknown host"):
            Deployment(
                hosts=(Host("h", 1.0),),
                components=(Component("c", host="ghost", restart_duration=1.0),),
            )

    def test_negative_durations_rejected(self):
        with pytest.raises(ModelError):
            Host("h", -1.0)
        with pytest.raises(ModelError):
            Component("c", host="h", restart_duration=-1.0)


class TestFaults:
    def test_labels(self):
        assert Fault(FaultKind.ZOMBIE, "web").label == "zombie(web)"
        assert Fault(FaultKind.HOST_CRASH, "h1").label == "host_crash(h1)"

    def test_validate(self, deployment):
        Fault(FaultKind.CRASH, "web").validate(deployment)
        Fault(FaultKind.HOST_CRASH, "h1").validate(deployment)
        with pytest.raises(ModelError):
            Fault(FaultKind.CRASH, "ghost").validate(deployment)
        with pytest.raises(ModelError):
            Fault(FaultKind.HOST_CRASH, "ghost").validate(deployment)

    def test_unavailable_for_crash(self, deployment):
        assert unavailable_components(
            Fault(FaultKind.CRASH, "web"), deployment
        ) == {"web"}

    def test_unavailable_for_zombie(self, deployment):
        """A zombie is down for service even though it answers pings."""
        assert unavailable_components(
            Fault(FaultKind.ZOMBIE, "app"), deployment
        ) == {"app"}

    def test_unavailable_for_host_crash(self, deployment):
        assert unavailable_components(
            Fault(FaultKind.HOST_CRASH, "h1"), deployment
        ) == {"web", "app"}

    def test_no_fault_nothing_unavailable(self, deployment):
        assert unavailable_components(None, deployment) == frozenset()

    def test_ping_dead_excludes_zombies(self, deployment):
        assert ping_dead_components(
            Fault(FaultKind.ZOMBIE, "web"), deployment
        ) == frozenset()
        assert ping_dead_components(
            Fault(FaultKind.CRASH, "web"), deployment
        ) == {"web"}
        assert ping_dead_components(
            Fault(FaultKind.HOST_CRASH, "h1"), deployment
        ) == {"web", "app"}


class TestWorkload:
    def test_fixed_component_down_drops_everything(self):
        path = RequestPath("http", 1.0, fixed=("gw", "db"), balanced=("s1", "s2"))
        assert path.drop_probability(frozenset({"db"})) == 1.0

    def test_balanced_pool_partial_loss(self):
        path = RequestPath("http", 1.0, fixed=("gw",), balanced=("s1", "s2"))
        assert path.drop_probability(frozenset({"s1"})) == 0.5

    def test_no_pool_means_no_balanced_loss(self):
        path = RequestPath("p", 1.0, fixed=("gw",))
        assert path.drop_probability(frozenset({"other"})) == 0.0

    def test_drop_fraction_weights_by_traffic_share(self):
        paths = (
            RequestPath("http", 0.8, fixed=("hg",), balanced=("s1", "s2")),
            RequestPath("voice", 0.2, fixed=("vg",), balanced=("s1", "s2")),
        )
        # One EMN server down: half of both classes.
        assert np.isclose(drop_fraction(paths, frozenset({"s1"})), 0.5)
        # The HTTP gateway down: exactly its traffic share.
        assert np.isclose(drop_fraction(paths, frozenset({"hg"})), 0.8)
        # Host with hg and s1 (Figure 4 host A): 0.8 + 0.5 * 0.2 = 0.9.
        assert np.isclose(drop_fraction(paths, frozenset({"hg", "s1"})), 0.9)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ModelError, match="fraction"):
            RequestPath("p", 1.5, fixed=())

    def test_check_fractions(self):
        good = (RequestPath("a", 0.6, ()), RequestPath("b", 0.4, ()))
        check_fractions(good)
        bad = (RequestPath("a", 0.6, ()), RequestPath("b", 0.6, ()))
        with pytest.raises(ModelError, match="sum to 1"):
            check_fractions(bad)
