"""The POMDP model type.

A POMDP extends an MDP with a finite observation set ``O`` and an
observation function ``q(o|s, a)``: the probability of observing ``o`` when
the system *arrives* in state ``s`` as a result of action ``a`` (Section 2).
In the recovery setting, observations are the joint outputs of the system's
monitors.

Like :class:`repro.mdp.MDP`, the tensors may be dense ndarrays or the
sparse containers of :mod:`repro.linalg`; both go through the same
validated construction path, and every consumer dispatches through
:mod:`repro.linalg.ops` so the belief-side hot paths run natively on
either backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.linalg.backends import Backend, backend_of
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.mdp.model import (
    MDP,
    _check_unique,
    _default_labels,
    _validate_model_arrays,
)


@dataclass(frozen=True)
class POMDP:
    """A finite POMDP with dense or sparse tensor storage.

    Attributes:
        transitions: ``(|A|, |S|, |S|)`` array (``transitions[a, s, s']`` is
            ``p(s'|s, a)``) or :class:`repro.linalg.SparseTransitions`.
        observations: ``(|A|, |S|, |O|)`` array (``observations[a, s', o]``
            is ``q(o|s', a)`` — note the state index is the *arrival* state)
            or :class:`repro.linalg.SparseObservations`.
        rewards: ``(|A|, |S|)`` array (``rewards[a, s]`` is ``r(s, a)``) or
            :class:`repro.linalg.StructuredRewards`.
        state_labels / action_labels / observation_labels: display names.
        discount: ``beta``; recovery models use 1.0 (undiscounted).

    The three tensors must share one backend: all dense ndarrays, or all
    sparse containers.
    """

    transitions: np.ndarray | SparseTransitions
    observations: np.ndarray | SparseObservations
    rewards: np.ndarray | StructuredRewards
    state_labels: tuple[str, ...] = ()
    action_labels: tuple[str, ...] = ()
    observation_labels: tuple[str, ...] = ()
    discount: float = 1.0
    _state_index: dict[str, int] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _action_index: dict[str, int] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _observation_index: dict[str, int] | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self):
        sparse_transitions = isinstance(self.transitions, SparseTransitions)
        if sparse_transitions != isinstance(self.observations, SparseObservations):
            raise ModelError(
                "transitions and observations must use the same backend "
                "(mixing dense arrays with sparse containers is not supported)"
            )
        transitions, observations, rewards, shape = _validate_model_arrays(
            self.transitions, self.rewards, observations=self.observations
        )
        n_actions, n_states, n_observations = shape
        assert n_observations is not None
        if n_observations == 0:
            raise ModelError("a POMDP needs at least one observation")
        if not 0.0 <= self.discount <= 1.0:
            raise ModelError(f"discount must be in [0, 1], got {self.discount}")

        state_labels = tuple(self.state_labels) or _default_labels("s", n_states)
        action_labels = tuple(self.action_labels) or _default_labels("a", n_actions)
        observation_labels = tuple(self.observation_labels) or _default_labels(
            "o", n_observations
        )
        for labels, count, kind in (
            (state_labels, n_states, "state"),
            (action_labels, n_actions, "action"),
            (observation_labels, n_observations, "observation"),
        ):
            if len(labels) != count:
                raise ModelError(f"{len(labels)} {kind} labels for {count} {kind}s")
            _check_unique(labels, kind)

        object.__setattr__(self, "transitions", transitions)
        object.__setattr__(self, "observations", observations)
        object.__setattr__(self, "rewards", rewards)
        object.__setattr__(self, "state_labels", state_labels)
        object.__setattr__(self, "action_labels", action_labels)
        object.__setattr__(self, "observation_labels", observation_labels)
        object.__setattr__(
            self, "_state_index", {s: i for i, s in enumerate(state_labels)}
        )
        object.__setattr__(
            self, "_action_index", {a: i for i, a in enumerate(action_labels)}
        )
        object.__setattr__(
            self,
            "_observation_index",
            {o: i for i, o in enumerate(observation_labels)},
        )

    @property
    def n_states(self) -> int:
        """Number of states ``|S|``."""
        return self.transitions.shape[1]

    @property
    def n_actions(self) -> int:
        """Number of actions ``|A|``."""
        return self.transitions.shape[0]

    @property
    def n_observations(self) -> int:
        """Number of observations ``|O|``."""
        return self.observations.shape[2]

    @property
    def backend(self) -> Backend:
        """The storage backend this model uses (dense or sparse)."""
        return backend_of(self.transitions)

    def state_index(self, label: str) -> int:
        """Index of the state labelled ``label``."""
        assert self._state_index is not None
        return self._state_index[label]

    def action_index(self, label: str) -> int:
        """Index of the action labelled ``label``."""
        assert self._action_index is not None
        return self._action_index[label]

    def observation_index(self, label: str) -> int:
        """Index of the observation labelled ``label``."""
        assert self._observation_index is not None
        return self._observation_index[label]

    def to_mdp(self) -> MDP:
        """The underlying fully-observable MDP ``(S, A, p, r)``.

        This is the exponentially smaller model on which the RA-Bound is
        computed (Section 3.1) and on which the oracle controller operates.
        The backend carries over: a sparse POMDP yields a sparse MDP.
        """
        return MDP(
            transitions=self.transitions,
            rewards=self.rewards,
            state_labels=self.state_labels,
            action_labels=self.action_labels,
            discount=self.discount,
        )

    def with_discount(self, discount: float) -> "POMDP":
        """A copy of this POMDP with a different discount factor."""
        return POMDP(
            transitions=self.transitions,
            observations=self.observations,
            rewards=self.rewards,
            state_labels=self.state_labels,
            action_labels=self.action_labels,
            observation_labels=self.observation_labels,
            discount=discount,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"POMDP(|S|={self.n_states}, |A|={self.n_actions}, "
            f"|O|={self.n_observations}, discount={self.discount}, "
            f"backend={self.backend.name})"
        )
