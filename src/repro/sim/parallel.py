"""Parallel fault-injection campaign engine.

Table 1's 10,000 injections are embarrassingly parallel: episodes share no
simulated state, only (a) the random streams that drive fault draws and
monitor sampling and (b) the controller's bound set, which refinement grows
as a side effect.  This module shards a campaign's episode loop across a
process pool while keeping the results *bit-identical* to the in-process
run, whatever the worker count.  Three design rules make that possible:

**Per-episode random streams.**  A campaign plan draws every fault up front
from one child of the root :class:`~numpy.random.SeedSequence` and spawns
one further child per episode for environment sampling.  Episode ``i``'s
randomness therefore depends only on ``(seed, i)`` — never on which worker
ran it, or what ran before it.

**Chunked dispatch with per-chunk controller isolation.**  Episodes are
grouped into fixed-size chunks whose layout depends only on the injection
count (never on the worker count).  Each chunk runs against a fresh clone
of the pristine controller, so cross-episode controller state (online bound
refinement) is visible within a chunk but never across chunks.  Any worker
may run any chunk and the metrics cannot change.

**Deterministic bound-set merge on join.**  Clones refine their bound sets
locally; after all chunks complete, the new hyperplanes are folded back
into the caller's controller in chunk order through
:meth:`~repro.bounds.vector_set.BoundVectorSet.merge`, which rejects
duplicates and pointwise-dominated vectors and prunes vectors that later
arrivals dominate.  The caller's controller ends the campaign with the
union of every worker's refinements, exactly as a long-lived controller
process would accumulate them.

**Shared-memory model handoff.**  The plan is pickled exactly once per
campaign.  For sparse models the pickling happens inside
:func:`repro.linalg.shm.exporting`, which moves the model's CSR buffers
into ``multiprocessing.shared_memory`` segments and replaces them in the
pickle stream with lightweight handles; workers attach the segments and
rebuild zero-copy container views.  The handoff payload shrinks from the
full model to kilobytes (``model_handoff_bytes``), workers share the
model's pages instead of copying them, and — because the rebuilt
containers are value-identical views — campaign fingerprints stay
bit-identical for any worker count.  Segments are unlinked in a
``finally`` block, so none outlive the campaign.

The one metric outside the determinism contract is ``algorithm_time`` — it
is a wall-clock measurement and varies run to run even serially; use
:func:`repro.sim.metrics.campaign_fingerprint` (which excludes it) to
compare campaigns.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.linalg import shm

from repro.controllers.base import RecoveryController
from repro.controllers.engine import RecoverySession
from repro.obs.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    activated,
)
from repro.obs.telemetry import (
    active as telemetry_active,
)
from repro.recovery.model import RecoveryModel
from repro.sim.environment import RecoveryEnvironment
from repro.sim.metrics import EpisodeMetrics

#: Episodes per chunk.  A pure function of the campaign (not of the worker
#: count), so chunk boundaries — and therefore refinement visibility — are
#: identical in serial and parallel runs.  32 keeps per-chunk clone cost
#: negligible while giving a 1,000-injection campaign enough chunks to feed
#: 16 workers.
DEFAULT_CHUNK_SIZE = 32


@dataclass(frozen=True)
class CampaignPlan:
    """Everything needed to run (or re-run) a campaign deterministically.

    Attributes:
        controller: the pristine controller template; never mutated by the
            engine (chunks run on clones).
        model: environment-side model (the controller's own unless the
            caller studies model mismatch).
        faults: per-episode injected fault states, drawn up front.
        env_seeds: one spawned :class:`~numpy.random.SeedSequence` per
            episode for environment sampling.
        max_steps: per-episode step cap.
        monitor_tail: see :class:`~repro.sim.environment.RecoveryEnvironment`.
        chunk_size: episodes per isolation chunk.
        collect_telemetry: run each chunk against a private buffering
            :class:`~repro.obs.telemetry.Telemetry` and hand its snapshot
            back for the deterministic chunk-order merge.  Resolved at plan
            time from :func:`repro.obs.telemetry.active` so worker processes
            need no telemetry state of their own.
        collect_trace: additionally record hierarchical trace spans in each
            chunk's private registry (episode → decision → tree expansion
            → ...).  The join step rebases chunk span timestamps end-to-end
            and re-parents chunk roots under the open campaign span, so the
            merged span *tree* is worker-count invariant just like the
            counters.  Resolved at plan time from the active registry's
            ``trace_enabled``.
    """

    controller: RecoveryController
    model: RecoveryModel
    faults: np.ndarray
    env_seeds: tuple
    max_steps: int
    monitor_tail: float
    chunk_size: int
    collect_telemetry: bool = False
    collect_trace: bool = False

    @property
    def injections(self) -> int:
        """Number of episodes in the plan."""
        return int(self.faults.shape[0])

    def chunks(self) -> list[tuple[int, int]]:
        """Half-open ``(start, stop)`` episode ranges, in order."""
        return [
            (start, min(start + self.chunk_size, self.injections))
            for start in range(0, self.injections, self.chunk_size)
        ]


def seed_to_sequence(seed) -> np.random.SeedSequence:
    """Coerce a campaign ``seed`` into a root :class:`SeedSequence`.

    Accepts the library's usual seed forms; a :class:`~numpy.random.Generator`
    contributes entropy from its stream (and stays usable afterwards).
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(
            seed.integers(0, 2**63 - 1, size=4).tolist()
        )
    return np.random.SeedSequence(seed)


def plan_campaign(
    controller: RecoveryController,
    fault_states: np.ndarray,
    injections: int,
    seed=None,
    max_steps: int = 500,
    monitor_tail: float = 0.0,
    model: RecoveryModel | None = None,
    fault_probabilities: np.ndarray | None = None,
    chunk_size: int | None = None,
    collect_telemetry: bool | None = None,
) -> CampaignPlan:
    """Draw all faults and spawn all per-episode streams up front.

    ``collect_telemetry`` defaults to whether telemetry is active in the
    planning process, so ``repro.obs.session`` around ``run_campaign`` is
    all it takes to capture per-chunk instrumentation.
    """
    root = seed_to_sequence(seed)
    fault_sequence, environment_sequence = root.spawn(2)
    faults = np.asarray(
        np.random.default_rng(fault_sequence).choice(
            fault_states, size=injections, p=fault_probabilities
        ),
        dtype=int,
    )
    env_seeds = tuple(environment_sequence.spawn(injections))
    active_telemetry = telemetry_active()
    if collect_telemetry is None:
        collect_telemetry = active_telemetry is not None
    collect_trace = (
        collect_telemetry
        and active_telemetry is not None
        and active_telemetry.trace_enabled
    )
    return CampaignPlan(
        controller=controller,
        model=model or controller.model,
        faults=faults,
        env_seeds=env_seeds,
        max_steps=max_steps,
        monitor_tail=monitor_tail,
        chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
        collect_telemetry=collect_telemetry,
        collect_trace=collect_trace,
    )


def _clone_controller(plan: CampaignPlan) -> RecoveryController:
    """Deep-copy the template controller, sharing the immutable model."""
    memo = {
        id(plan.controller.model): plan.controller.model,
        id(plan.controller.model.pomdp): plan.controller.model.pomdp,
    }
    return copy.deepcopy(plan.controller, memo)


def _open_session(controller: RecoveryController) -> RecoverySession:
    """The session the chunk loop drives.

    Controller adapters carry a live session over their engine; the chunk
    runner drives it directly (one fewer delegation layer per step, and
    the same code path the policy service uses).  Anything else — a bare
    session handed in as the "controller", or a duck-typed stand-in from
    the tests — is driven as-is.
    """
    session = getattr(controller, "session", None)
    if isinstance(session, RecoverySession):
        return session
    return controller


def _bound_vectors(controller: RecoveryController) -> np.ndarray | None:
    """The controller's refinable bound-vector stack, when it has one."""
    bound_set = controller.refinement_state()
    if bound_set is None or not hasattr(bound_set, "vectors"):
        return None
    return np.array(bound_set.vectors, copy=True)


def _counters(controller: RecoveryController) -> dict[str, int]:
    """Current values of the controller's declared campaign counters."""
    return {
        name: int(getattr(controller, name, 0))
        for name in controller.CAMPAIGN_COUNTERS
    }


@dataclass(frozen=True)
class ChunkResult:
    """What one isolation chunk hands back to the join step.

    Attributes:
        episodes: per-episode metrics, in injection order.
        new_vectors: hyperplanes the clone's bound set gained during the
            chunk (``None`` for controllers without bound sets).
        counter_deltas: per-chunk increments of the controller's declared
            :attr:`~repro.controllers.base.RecoveryController.CAMPAIGN_COUNTERS`.
        telemetry: snapshot of the chunk's private telemetry registry, when
            the plan collects telemetry (``None`` otherwise).  Snapshots are
            picklable so they survive the process-pool hop.
    """

    episodes: list[EpisodeMetrics]
    new_vectors: np.ndarray | None
    counter_deltas: dict[str, int]
    telemetry: TelemetrySnapshot | None = None


def run_chunk(plan: CampaignPlan, start: int, stop: int) -> ChunkResult:
    """Run episodes ``[start, stop)`` on a fresh controller clone.

    When the plan collects telemetry the chunk runs against a *private*
    buffering :class:`Telemetry` — always swapped in, even in-process, so
    the caller's registry never sees chunk-side counts twice.  The snapshot
    travels back in the :class:`ChunkResult` and is absorbed in chunk order
    by :func:`execute_plan`, which is what makes the aggregated counters
    independent of the worker count.
    """
    from repro.sim.campaign import run_episode

    controller = _clone_controller(plan)
    session = _open_session(controller)
    baseline = _bound_vectors(controller)
    baseline_counters = _counters(controller)
    chunk_telemetry = (
        Telemetry(trace=plan.collect_trace) if plan.collect_telemetry else None
    )
    episodes = []
    with activated(chunk_telemetry):
        for index in range(start, stop):
            environment = RecoveryEnvironment(
                plan.model,
                seed=np.random.default_rng(plan.env_seeds[index]),
                monitor_tail=plan.monitor_tail,
            )
            if chunk_telemetry is not None:
                chunk_telemetry.event(
                    "episode_start",
                    episode=index,
                    fault_state=int(plan.faults[index]),
                )
            episode_span = (
                chunk_telemetry.trace_span(
                    "episode", category="sim", episode=index
                )
                if chunk_telemetry is not None
                else nullcontext()
            )
            with episode_span:
                metrics = run_episode(
                    session,
                    environment,
                    int(plan.faults[index]),
                    max_steps=plan.max_steps,
                )
            if chunk_telemetry is not None:
                chunk_telemetry.event(
                    "episode_end",
                    episode=index,
                    recovered=metrics.recovered,
                    terminated=metrics.terminated,
                    steps=metrics.steps,
                    cost=metrics.cost,
                )
            episodes.append(metrics)
    counter_deltas = {
        name: value - baseline_counters[name]
        for name, value in _counters(controller).items()
    }
    new_vectors = None
    if baseline is not None:
        # Diff by exact content rather than position: eviction may have
        # shifted rows, and baseline rows surviving eviction are not "new".
        known = {row.tobytes() for row in baseline}
        refined = _bound_vectors(controller)
        new_rows = [row for row in refined if row.tobytes() not in known]
        if new_rows:
            new_vectors = np.array(new_rows)
    return ChunkResult(
        episodes=episodes,
        new_vectors=new_vectors,
        counter_deltas=counter_deltas,
        telemetry=(
            chunk_telemetry.snapshot() if chunk_telemetry is not None else None
        ),
    )


# -- worker-side plumbing ----------------------------------------------------

_WORKER_PLAN: CampaignPlan | None = None


def _init_worker(payload: bytes) -> None:
    """Install the worker's plan from the once-pickled campaign payload.

    The payload is produced by :func:`export_plan`; for sparse models,
    unpickling it attaches the parent's shared-memory segments instead of
    copying the model buffers.
    """
    global _WORKER_PLAN
    _WORKER_PLAN = pickle.loads(payload)


def _worker_chunk(bounds: tuple[int, int]) -> ChunkResult:
    if _WORKER_PLAN is None:
        raise RuntimeError("worker used before _init_worker installed the plan")
    start, stop = bounds
    return run_chunk(_WORKER_PLAN, start, stop)


def _pool_context():
    """Prefer fork (cheap, shares the loaded model pages) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _plan_uses_sparse_model(plan: CampaignPlan) -> bool:
    """True when any model a worker needs stores sparse containers."""
    models = {id(plan.model): plan.model}
    models.setdefault(id(plan.controller.model), plan.controller.model)
    return any(model.pomdp.backend.is_sparse for model in models.values())


def export_plan(plan: CampaignPlan) -> tuple[shm.SharedArena | None, bytes]:
    """Pickle ``plan`` once, moving sparse model buffers into shared memory.

    Returns ``(arena, payload)``.  For sparse models the payload carries
    shared-memory handles instead of CSR buffers and ``arena`` owns the
    segments — the caller must :meth:`~repro.linalg.shm.SharedArena.close`
    it once every worker has shut down.  Dense models pickle as before and
    ``arena`` is ``None``.
    """
    if not _plan_uses_sparse_model(plan):
        return None, pickle.dumps(plan)
    arena = shm.SharedArena()
    try:
        with shm.exporting(arena):
            payload = pickle.dumps(plan)
    except BaseException:
        arena.close()
        raise
    return arena, payload


def model_handoff_bytes(plan: CampaignPlan) -> int:
    """Bytes of the per-worker campaign payload (the pickled plan).

    With the shared-memory handoff this is the size of the *handles*, not
    of the model — the ``parallel.model_handoff_bytes`` snapshot metric.
    """
    arena, payload = export_plan(plan)
    if arena is not None:
        arena.close()
    return len(payload)


def execute_plan(
    plan: CampaignPlan,
    workers: int | None = None,
    on_chunk: Callable[[int, int, ChunkResult], None] | None = None,
) -> list[EpisodeMetrics]:
    """Run every chunk of ``plan`` and merge refinements back.

    Args:
        plan: the campaign plan.
        workers: process count; ``None``, 0, or 1 runs in-process.  The
            metrics are identical either way — only wall-clock (and the
            wall-clock-derived ``algorithm_time`` field) changes.
        on_chunk: scheduling hook, called as ``on_chunk(index, total,
            result)`` for every chunk *in chunk order* during the join —
            never concurrently, and never out of order, so callers (the
            grid runner's per-cell progress accounting) need no locking.

    Returns:
        Episode metrics in injection order.  As a side effect the *caller's*
        controller (the plan's template) receives the merged refinement
        vectors, deduplicated and dominance-pruned.
    """
    chunks = plan.chunks()
    telemetry = telemetry_active()
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers and workers > 1:
        arena, payload = export_plan(plan)
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)),
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(payload,),
            ) as pool:
                results = list(pool.map(_worker_chunk, chunks, chunksize=1))
        finally:
            # Segments must not outlive the campaign: workers have exited
            # (the executor context joined them), so unlinking here leaves
            # no /dev/shm entry behind.
            if arena is not None:
                arena.close()
    else:
        results = [run_chunk(plan, start, stop) for start, stop in chunks]

    episodes: list[EpisodeMetrics] = []
    bound_set = plan.controller.refinement_state()
    for chunk_index, result in enumerate(results):
        episodes.extend(result.episodes)
        if on_chunk is not None:
            on_chunk(chunk_index, len(chunks), result)
        if telemetry is not None and result.telemetry is not None:
            # Absorbed in chunk order, so counters/gauges/events aggregate
            # identically whatever the worker count.
            telemetry.absorb(result.telemetry, chunk=chunk_index)
        if (
            bound_set is not None
            and result.new_vectors is not None
            and result.new_vectors.size
        ):
            bound_set.merge(result.new_vectors, prune_after=True)
        for name, delta in result.counter_deltas.items():
            setattr(
                plan.controller,
                name,
                getattr(plan.controller, name, 0) + delta,
            )
    return episodes
