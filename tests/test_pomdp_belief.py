"""Tests for belief updates (Eqs. 3-4), including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BeliefError
from repro.pomdp.belief import (
    belief_bellman_backup,
    belief_reward,
    next_beliefs,
    observation_probabilities,
    point_belief,
    predicted_belief,
    uniform_belief,
    update_belief,
)
from tests.conftest import random_pomdp
from tests.test_pomdp_model import tiny_pomdp


class TestUniformAndPointBeliefs:
    def test_uniform(self):
        pomdp = tiny_pomdp()
        assert np.allclose(uniform_belief(pomdp), [0.5, 0.5])

    def test_uniform_with_support(self):
        pomdp = tiny_pomdp()
        belief = uniform_belief(pomdp, support=np.array([True, False]))
        assert np.allclose(belief, [1.0, 0.0])

    def test_empty_support_rejected(self):
        with pytest.raises(BeliefError):
            uniform_belief(tiny_pomdp(), support=np.array([False, False]))

    def test_point(self):
        assert np.allclose(point_belief(tiny_pomdp(), 1), [0.0, 1.0])

    def test_point_out_of_range(self):
        with pytest.raises(BeliefError):
            point_belief(tiny_pomdp(), 5)


class TestBayesUpdate:
    def test_repair_action_concentrates_on_null(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.5, 0.5])
        posterior = update_belief(pomdp, belief, action=0, observation=1)
        assert np.allclose(posterior, [0.0, 1.0])

    def test_idle_with_alarm_shifts_toward_fault(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.5, 0.5])
        posterior = update_belief(pomdp, belief, action=1, observation=0)
        # P(fault|alarm) = .5*.9 / (.5*.9 + .5*.2)
        assert np.isclose(posterior[0], 0.45 / 0.55)

    def test_impossible_observation_raises(self):
        pomdp = tiny_pomdp()
        belief = np.array([1.0, 0.0])
        # repair surely moves to null, where alarm has probability 0.2 > 0,
        # so craft a zero-probability case with a point observation model.
        deterministic = tiny_pomdp()
        observations = deterministic.observations.copy()
        observations[0] = np.array([[1.0, 0.0], [0.0, 1.0]])
        from repro.pomdp.model import POMDP

        model = POMDP(
            transitions=deterministic.transitions,
            observations=observations,
            rewards=deterministic.rewards,
        )
        with pytest.raises(BeliefError):
            update_belief(model, belief, action=0, observation=0)

    def test_gamma_matches_manual_computation(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.3, 0.7])
        gamma = observation_probabilities(pomdp, belief, action=1)
        predicted = predicted_belief(pomdp, belief, 1)
        manual = predicted @ pomdp.observations[1]
        assert np.allclose(gamma, manual)


class TestNextBeliefs:
    def test_matches_per_observation_updates(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.4, 0.6])
        reachable, posteriors = next_beliefs(pomdp, belief, action=1)
        for index, observation in enumerate(reachable):
            expected = update_belief(pomdp, belief, 1, int(observation))
            assert np.allclose(posteriors[index], expected)

    def test_prunes_zero_probability_branches(self):
        pomdp = tiny_pomdp()
        belief = np.array([1.0, 0.0])
        reachable, posteriors = next_beliefs(pomdp, belief, action=0)
        gamma = observation_probabilities(pomdp, belief, 0)
        assert set(reachable.tolist()) == set(np.flatnonzero(gamma > 0).tolist())


class TestBeliefReward:
    def test_expected_reward(self):
        pomdp = tiny_pomdp()
        assert np.isclose(
            belief_reward(pomdp, np.array([0.5, 0.5]), 0), -0.25
        )


class TestBellmanBackup:
    def test_backup_of_zero_value_is_max_expected_reward(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.5, 0.5])
        backed = belief_bellman_backup(pomdp, belief, lambda b: 0.0)
        assert np.isclose(backed, -0.25)  # repair is the cheaper action


# -- property-based invariants ------------------------------------------------


@st.composite
def pomdp_and_belief(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    pomdp = random_pomdp(rng)
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=pomdp.n_states,
            max_size=pomdp.n_states,
        )
    )
    belief = np.array(weights)
    return pomdp, belief / belief.sum()


@given(pomdp_and_belief())
@settings(max_examples=40, deadline=None)
def test_posterior_is_distribution(case):
    pomdp, belief = case
    for action in range(pomdp.n_actions):
        reachable, posteriors = next_beliefs(pomdp, belief, action)
        assert np.all(posteriors >= -1e-12)
        assert np.allclose(posteriors.sum(axis=1), 1.0)


@given(pomdp_and_belief())
@settings(max_examples=40, deadline=None)
def test_gamma_is_distribution(case):
    pomdp, belief = case
    for action in range(pomdp.n_actions):
        gamma = observation_probabilities(pomdp, belief, action)
        assert np.all(gamma >= -1e-12)
        assert np.isclose(gamma.sum(), 1.0)


@given(pomdp_and_belief())
@settings(max_examples=40, deadline=None)
def test_total_probability_of_posteriors(case):
    """The gamma-weighted posteriors must reconstruct the predicted belief."""
    pomdp, belief = case
    for action in range(pomdp.n_actions):
        gamma = observation_probabilities(pomdp, belief, action)
        reachable, posteriors = next_beliefs(pomdp, belief, action)
        reconstruction = gamma[reachable] @ posteriors
        assert np.allclose(
            reconstruction, predicted_belief(pomdp, belief, action), atol=1e-9
        )


class TestUpdateBeliefBatch:
    """Vectorised Eq. 4 against the scalar path, sentinel handling included."""

    @staticmethod
    def _sparse_pomdp():
        from repro.systems.tiered import build_tiered_system

        return build_tiered_system(
            replicas=(2, 2, 2), backend="sparse"
        ).model.pomdp

    def test_selected_form_matches_scalar_updates_sparse(self):
        from repro.pomdp.belief import update_belief_batch

        pomdp = self._sparse_pomdp()
        rng = np.random.default_rng(23)
        beliefs = rng.dirichlet(np.ones(pomdp.n_states), size=6)
        for action in range(pomdp.n_actions):
            gamma_all, posteriors_all = update_belief_batch(
                pomdp, beliefs, action
            )
            for i, belief in enumerate(beliefs):
                gamma_ref = observation_probabilities(pomdp, belief, action)
                np.testing.assert_allclose(
                    gamma_all[i], gamma_ref, atol=1e-13
                )
                for obs in np.flatnonzero(gamma_ref > 1e-9):
                    np.testing.assert_allclose(
                        posteriors_all[i, int(obs)],
                        update_belief(pomdp, belief, action, int(obs)),
                        atol=1e-13,
                    )

    def test_scalar_observation_broadcasts(self):
        from repro.pomdp.belief import update_belief_batch

        pomdp = tiny_pomdp()
        beliefs = np.array([[0.5, 0.5], [0.3, 0.7]])
        gamma, posteriors = update_belief_batch(
            pomdp, beliefs, action=1, observations=0
        )
        assert gamma.shape == (2,)
        assert posteriors.shape == (2, 2)
        for i, belief in enumerate(beliefs):
            np.testing.assert_allclose(
                posteriors[i], update_belief(pomdp, belief, 1, 0), atol=1e-13
            )

    def test_no_observation_sentinel_rejected(self):
        from repro.pomdp.belief import update_belief_batch
        from repro.sim.environment import NO_OBSERVATION

        pomdp = tiny_pomdp()
        beliefs = np.array([[0.5, 0.5], [0.3, 0.7]])
        with pytest.raises(BeliefError, match="NO_OBSERVATION"):
            update_belief_batch(
                pomdp, beliefs, action=1, observations=np.array([0, NO_OBSERVATION])
            )

    def test_out_of_range_observation_rejected(self):
        from repro.pomdp.belief import update_belief_batch

        pomdp = tiny_pomdp()
        with pytest.raises(BeliefError, match="out of range"):
            update_belief_batch(
                pomdp,
                np.array([[0.5, 0.5]]),
                action=1,
                observations=np.array([pomdp.n_observations]),
            )

    def test_observation_count_must_match_batch(self):
        from repro.pomdp.belief import update_belief_batch

        pomdp = tiny_pomdp()
        with pytest.raises(BeliefError, match="one observation per belief"):
            update_belief_batch(
                pomdp,
                np.array([[0.5, 0.5], [0.3, 0.7]]),
                action=1,
                observations=np.array([0, 1, 0]),
            )

    def test_zero_probability_selection_raises_like_scalar_path(self):
        from repro.pomdp.belief import update_belief_batch
        from repro.pomdp.model import POMDP

        deterministic = tiny_pomdp()
        observations = deterministic.observations.copy()
        observations[0] = np.array([[1.0, 0.0], [0.0, 1.0]])
        model = POMDP(
            transitions=deterministic.transitions,
            observations=observations,
            rewards=deterministic.rewards,
        )
        with pytest.raises(BeliefError, match="probability ~0"):
            update_belief_batch(
                pomdp=model,
                beliefs=np.array([[1.0, 0.0]]),
                action=0,
                observations=np.array([0]),
            )


@given(pomdp_and_belief())
@settings(max_examples=40, deadline=None)
def test_update_belief_batch_matches_scalar_loop(case):
    """Property: the batched Eq. 4 agrees with the looped scalar update on
    every reachable branch and zeroes the unreachable ones."""
    from repro.pomdp.belief import update_belief_batch

    pomdp, belief = case
    beliefs = np.vstack([belief, uniform_belief(pomdp)])
    for action in range(pomdp.n_actions):
        gamma, posteriors = update_belief_batch(pomdp, beliefs, action)
        for i in range(beliefs.shape[0]):
            np.testing.assert_allclose(
                gamma[i],
                observation_probabilities(pomdp, beliefs[i], action),
                atol=1e-12,
            )
            for obs in range(pomdp.n_observations):
                if gamma[i, obs] > 1e-9:
                    np.testing.assert_allclose(
                        posteriors[i, obs],
                        update_belief(pomdp, beliefs[i], action, obs),
                        atol=1e-12,
                    )
