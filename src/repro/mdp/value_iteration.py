"""Value iteration for MDPs (Eq. 1 of the paper).

Provides the standard Jacobi-style sweep and an in-place Gauss-Seidel sweep,
with either sup-norm or span-seminorm stopping.  For undiscounted recovery
models (discount 1), convergence relies on the negative-MDP structure the
paper's Conditions 1 and 2 establish; the solver detects divergence instead
of looping forever when those conditions fail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DivergenceError, NotConvergedError
from repro.mdp.linear_solvers import STAGNATION_WINDOW, _check_stagnation
from repro.mdp.model import MDP
from repro.mdp.policy import Policy

#: Value magnitude past which an undiscounted iteration is declared divergent.
DIVERGENCE_THRESHOLD = 1e12


@dataclass(frozen=True)
class MDPSolution:
    """Result of an exact MDP solve.

    Attributes:
        value: optimal value ``V_m(s)`` for every state (Eq. 1).
        policy: an optimal deterministic stationary policy.
        iterations: sweeps performed by the solver.
        residual: final sup-norm change between sweeps.
    """

    value: np.ndarray
    policy: Policy
    iterations: int
    residual: float


def _bellman_backup(mdp: MDP, value: np.ndarray, minimize: bool) -> np.ndarray:
    q_values = mdp.rewards + mdp.discount * (mdp.transitions @ value)
    if minimize:
        return q_values.min(axis=0)
    return q_values.max(axis=0)


def value_iteration(
    mdp: MDP,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
    initial_value: np.ndarray | None = None,
    gauss_seidel: bool = False,
    minimize: bool = False,
) -> MDPSolution:
    """Solve ``mdp`` by value iteration.

    Args:
        mdp: the model to solve.
        tol: sup-norm stopping tolerance.
        max_iterations: sweep budget before :class:`NotConvergedError`.
        initial_value: starting vector; defaults to all zeros, which is the
            correct initialisation for negative models (Theorem 7.3.10 of
            Puterman, used by the paper's Theorem 3.1).
        gauss_seidel: update states in place within a sweep (usually fewer
            sweeps for the same tolerance).
        minimize: replace the ``max`` of Eq. 1 with a ``min``.  This is the
            *worst-action* recursion used by the BI-POMDP bound of [14]
            (Section 3.1's first comparison bound).

    Raises:
        DivergenceError: iterates grew beyond any finite value (e.g. the
            BI-POMDP recursion on an undiscounted recovery model).
        NotConvergedError: iteration budget exhausted.
    """
    if initial_value is None:
        value = np.zeros(mdp.n_states)
    else:
        value = np.asarray(initial_value, dtype=float).copy()

    residual = np.inf
    checkpoint_residual = np.inf
    checkpoint_norm = 0.0
    for iteration in range(1, max_iterations + 1):
        if gauss_seidel:
            updated = value.copy()
            for s in range(mdp.n_states):
                q_s = mdp.rewards[:, s] + mdp.discount * (
                    mdp.transitions[:, s, :] @ updated
                )
                updated[s] = q_s.min() if minimize else q_s.max()
        else:
            updated = _bellman_backup(mdp, value, minimize)
        residual = float(np.max(np.abs(updated - value)))
        value = updated
        if not np.all(np.isfinite(value)) or np.max(np.abs(value)) > DIVERGENCE_THRESHOLD:
            raise DivergenceError(
                "value iteration diverged; the model violates the finiteness "
                "conditions of Section 3.1"
            )
        if residual < tol:
            q_values = mdp.rewards + mdp.discount * (mdp.transitions @ value)
            chooser = np.argmin if minimize else np.argmax
            policy = Policy(
                actions=chooser(q_values, axis=0), action_labels=mdp.action_labels
            )
            return MDPSolution(
                value=value, policy=policy, iterations=iteration, residual=residual
            )
        if iteration % STAGNATION_WINDOW == 0:
            norm = float(np.max(np.abs(value)))
            _check_stagnation(
                residual,
                checkpoint_residual,
                norm > checkpoint_norm,
                "value iteration",
            )
            checkpoint_residual = residual
            checkpoint_norm = norm
    raise NotConvergedError(
        f"value iteration did not reach tol={tol} in {max_iterations} sweeps",
        iterations=max_iterations,
        residual=residual,
    )
