"""Zero-copy model handoff through POSIX shared memory.

The parallel campaign engine ships its :class:`~repro.sim.parallel.CampaignPlan`
to every worker process.  The plan's dominant payload is the model — the CSR
buffers of :class:`~repro.linalg.containers.SparseTransitions`,
:class:`~repro.linalg.containers.SparseObservations` and the arrays of
:class:`~repro.linalg.containers.StructuredRewards` — which is identical in
every worker and read-only for the whole campaign.  Pickling it per worker
costs a serialise/deserialise round trip and a private copy of every buffer.

This module moves those buffers into :mod:`multiprocessing.shared_memory`
segments *once*, at plan-export time, and pickles only lightweight handles
(segment name + shape + dtype).  Workers attach the segments and rebuild the
containers as zero-copy views, so the model's pages are mapped, not copied,
and the pickled plan shrinks from megabytes to kilobytes
(``parallel.model_handoff_bytes`` in the perf snapshots).

Lifecycle contract:

* the exporting process owns the segments through a :class:`SharedArena` and
  must call :meth:`SharedArena.close` (close + unlink) once the pool has
  shut down — :func:`repro.sim.parallel.execute_plan` does this in a
  ``finally`` block, so no ``/dev/shm`` entries outlive the campaign;
* workers keep their attachments alive in a module registry for the life of
  the process (the arrays view the mapped pages directly); the
  :mod:`multiprocessing.resource_tracker` registration CPython performs on
  *attach* (bpo-39959) is suppressed, so a worker exiting never unlinks
  segments the parent still serves and the creator's register/unlink pair
  stays balanced even when the creating process attaches to its own
  segments.

The rebuilt CSR matrices are flagged canonical (the exporter only ever
shares canonicalised matrices), so the container constructors' ``_as_csr``
normalisation is a no-op and no buffer is copied on attach.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np
import scipy.sparse as sp

#: Prefix of every segment this module creates; the smoke benchmarks assert
#: no ``/dev/shm`` entry with this prefix survives a campaign.
SEGMENT_PREFIX = "repro-model"

#: Arena active inside :func:`exporting`; consulted by the containers'
#: ``__reduce__`` hooks.
_EXPORT_ARENA: SharedArena | None = None

#: Worker-side attachments, keyed by segment name.  Kept for the life of
#: the process: the rebuilt arrays are views into these mappings.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


@dataclass(frozen=True)
class ArrayHandle:
    """One ndarray living in a shared-memory segment."""

    segment: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class CsrHandle:
    """One canonical CSR matrix as three shared arrays plus its shape."""

    data: ArrayHandle
    indices: ArrayHandle
    indptr: ArrayHandle
    shape: tuple


@dataclass(frozen=True)
class TransitionsHandle:
    """Shared-memory form of :class:`SparseTransitions`."""

    base: CsrHandle
    row_action: ArrayHandle
    row_state: ArrayHandle
    rows: CsrHandle
    n_actions: int


@dataclass(frozen=True)
class ObservationsHandle:
    """Shared-memory form of :class:`SparseObservations`."""

    base: CsrHandle
    overrides: tuple  # ((action, CsrHandle), ...) sorted by action
    n_actions: int


@dataclass(frozen=True)
class RewardsHandle:
    """Shared-memory form of :class:`StructuredRewards`."""

    time_scale: ArrayHandle
    rate: ArrayHandle
    fixed: ArrayHandle
    override: CsrHandle


class SharedArena:
    """Owns the shared-memory segments of one model export.

    ``share_array``/``share_csr`` copy a buffer into a fresh segment and
    return its handle; ``handle_for`` builds (and memoises, by object
    identity) the container-level handles the pickling hooks need.  The
    arena must be :meth:`close`\\ d by its creator — segments are unlinked
    there, not by workers.
    """

    _sequence = 0  # class-wide counter so names never collide in-process

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._handles: dict[int, object] = {}
        self._closed = False

    # -- segment plumbing ----------------------------------------------
    def _new_segment(self, size: int) -> shared_memory.SharedMemory:
        if self._closed:
            raise RuntimeError("arena is closed")
        while True:
            SharedArena._sequence += 1
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{SharedArena._sequence}"
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, size)
                )
                break
            except FileExistsError:  # stale entry from an unrelated process
                continue
        self._segments.append(segment)
        return segment

    def share_array(self, array: np.ndarray) -> ArrayHandle:
        """Copy ``array`` into a new segment and return its handle."""
        array = np.ascontiguousarray(array)
        segment = self._new_segment(array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return ArrayHandle(segment.name, tuple(array.shape), array.dtype.str)

    def share_csr(self, matrix: sp.csr_matrix) -> CsrHandle:
        """Share a canonical CSR matrix as three segments."""
        return CsrHandle(
            data=self.share_array(matrix.data),
            indices=self.share_array(matrix.indices),
            indptr=self.share_array(matrix.indptr),
            shape=tuple(matrix.shape),
        )

    @property
    def total_bytes(self) -> int:
        """Bytes resident in this arena's segments."""
        return sum(segment.size for segment in self._segments)

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(segment.name for segment in self._segments)

    # -- container handles ---------------------------------------------
    def handle_for(self, container) -> object:
        """The (memoised) shared-memory handle of a model container."""
        from repro.linalg.containers import (
            SparseObservations,
            SparseTransitions,
            StructuredRewards,
        )

        key = id(container)
        handle = self._handles.get(key)
        if handle is not None:
            return handle
        if isinstance(container, SparseTransitions):
            handle = TransitionsHandle(
                base=self.share_csr(container.base),
                row_action=self.share_array(container.row_action),
                row_state=self.share_array(container.row_state),
                rows=self.share_csr(container.rows),
                n_actions=container.n_actions,
            )
        elif isinstance(container, SparseObservations):
            handle = ObservationsHandle(
                base=self.share_csr(container.base),
                overrides=tuple(
                    (action, self.share_csr(matrix))
                    for action, matrix in sorted(container.overrides.items())
                ),
                n_actions=container.n_actions,
            )
        elif isinstance(container, StructuredRewards):
            handle = RewardsHandle(
                time_scale=self.share_array(container.time_scale),
                rate=self.share_array(container.rate),
                fixed=self.share_array(container.fixed),
                override=self.share_csr(container.override),
            )
        else:
            raise TypeError(f"no shared-memory handle for {type(container)!r}")
        self._handles[key] = handle
        return handle

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._handles.clear()


@contextmanager
def exporting(arena: SharedArena):
    """Route container pickling through ``arena`` inside the block."""
    global _EXPORT_ARENA
    if _EXPORT_ARENA is not None:
        raise RuntimeError("a shared-memory export is already active")
    _EXPORT_ARENA = arena
    try:
        yield arena
    finally:
        _EXPORT_ARENA = None


def export_handle(container) -> object | None:
    """The active arena's handle for ``container``, or ``None`` outside
    :func:`exporting` (normal pickling applies then)."""
    if _EXPORT_ARENA is None:
        return None
    return _EXPORT_ARENA.handle_for(container)


# -- worker-side reconstruction ----------------------------------------


def _attach(handle: ArrayHandle) -> np.ndarray:
    """A zero-copy ndarray view of the segment behind ``handle``."""
    segment = _ATTACHED.get(handle.segment)
    if segment is None:
        # CPython registers *attached* segments with the resource tracker
        # as if this process owned them (bpo-39959); suppress that so a
        # worker exiting does not unlink segments the parent still serves
        # and the creator's register/unlink bookkeeping stays balanced.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(
                name=handle.segment, create=False
            )
        finally:
            resource_tracker.register = original_register
        _ATTACHED[handle.segment] = segment
    return np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
    )


def _attach_csr(handle: CsrHandle) -> sp.csr_matrix:
    matrix = sp.csr_matrix(
        (
            _attach(handle.data),
            _attach(handle.indices),
            _attach(handle.indptr),
        ),
        shape=handle.shape,
        copy=False,
    )
    # The exporter only shares canonicalised matrices; flagging them lets
    # the containers' _as_csr normalisation pass through without copying.
    matrix.has_canonical_format = True
    matrix.has_sorted_indices = True
    return matrix


def rebuild(handle):
    """Rebuild a model container from its shared-memory handle.

    This is the reconstructor the containers' ``__reduce__`` hooks emit
    under :func:`exporting`; it runs in the worker during unpickling.
    """
    from repro.linalg.containers import (
        SparseObservations,
        SparseTransitions,
        StructuredRewards,
    )

    if isinstance(handle, TransitionsHandle):
        return SparseTransitions(
            base=_attach_csr(handle.base),
            row_action=_attach(handle.row_action),
            row_state=_attach(handle.row_state),
            rows=_attach_csr(handle.rows),
            n_actions=handle.n_actions,
        )
    if isinstance(handle, ObservationsHandle):
        return SparseObservations(
            base=_attach_csr(handle.base),
            overrides={
                action: _attach_csr(matrix) for action, matrix in handle.overrides
            },
            n_actions=handle.n_actions,
        )
    if isinstance(handle, RewardsHandle):
        return StructuredRewards(
            time_scale=_attach(handle.time_scale),
            rate=_attach(handle.rate),
            fixed=_attach(handle.fixed),
            override=_attach_csr(handle.override),
        )
    raise TypeError(f"unknown shared-memory handle {type(handle)!r}")


def detach_all() -> None:
    """Drop every worker-side attachment (tests and long-lived processes).

    The arrays rebuilt from these segments become invalid; only call when
    no rebuilt container is live.
    """
    for segment in _ATTACHED.values():
        segment.close()
    _ATTACHED.clear()


def leaked_segments() -> list[str]:
    """``/dev/shm`` entries carrying this module's prefix (leak check)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(SEGMENT_PREFIX)
    )


__all__ = [
    "ArrayHandle",
    "CsrHandle",
    "ObservationsHandle",
    "RewardsHandle",
    "SEGMENT_PREFIX",
    "SharedArena",
    "TransitionsHandle",
    "detach_all",
    "export_handle",
    "exporting",
    "leaked_segments",
    "rebuild",
]
