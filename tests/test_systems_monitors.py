"""Tests for component and path monitors and the joint observation model."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.systems.components import Component, Deployment, Host
from repro.systems.faults import Fault, FaultKind
from repro.systems.monitors import (
    ComponentMonitor,
    PathMonitor,
    observation_labels,
    observation_matrix,
)
from repro.systems.workload import RequestPath


@pytest.fixture()
def deployment():
    return Deployment(
        hosts=(Host("h1", 300.0),),
        components=(
            Component("gw", host="h1", restart_duration=60.0),
            Component("s1", host="h1", restart_duration=60.0),
            Component("s2", host="h1", restart_duration=60.0),
        ),
    )


PATH = RequestPath("http", 1.0, fixed=("gw",), balanced=("s1", "s2"))


class TestComponentMonitor:
    def test_detects_crash(self, deployment):
        monitor = ComponentMonitor("gwMon", "gw")
        assert monitor.alarm_probability(Fault(FaultKind.CRASH, "gw"), deployment) == 1.0

    def test_blind_to_zombie(self, deployment):
        """The paper's central diagnostic gap: zombies answer pings."""
        monitor = ComponentMonitor("gwMon", "gw")
        assert monitor.alarm_probability(
            Fault(FaultKind.ZOMBIE, "gw"), deployment
        ) == 0.0

    def test_detects_host_crash_of_own_host(self, deployment):
        monitor = ComponentMonitor("gwMon", "gw")
        assert monitor.alarm_probability(
            Fault(FaultKind.HOST_CRASH, "h1"), deployment
        ) == 1.0

    def test_silent_on_other_components(self, deployment):
        monitor = ComponentMonitor("gwMon", "gw")
        assert monitor.alarm_probability(
            Fault(FaultKind.CRASH, "s1"), deployment
        ) == 0.0

    def test_coverage_and_false_positive(self, deployment):
        monitor = ComponentMonitor(
            "gwMon", "gw", coverage=0.9, false_positive_rate=0.05
        )
        assert monitor.alarm_probability(
            Fault(FaultKind.CRASH, "gw"), deployment
        ) == 0.9
        assert monitor.alarm_probability(None, deployment) == 0.05

    def test_invalid_rates_rejected(self):
        with pytest.raises(ModelError):
            ComponentMonitor("m", "c", coverage=1.5)
        with pytest.raises(ModelError):
            ComponentMonitor("m", "c", false_positive_rate=-0.1)


class TestPathMonitor:
    def test_fixed_component_fault_always_alarms(self, deployment):
        monitor = PathMonitor("pm", PATH)
        assert monitor.alarm_probability(
            Fault(FaultKind.ZOMBIE, "gw"), deployment
        ) == 1.0

    def test_balanced_zombie_alarms_half_the_time(self, deployment):
        """The 50/50 probe routing behind 'routed around the zombie'."""
        monitor = PathMonitor("pm", PATH)
        assert monitor.alarm_probability(
            Fault(FaultKind.ZOMBIE, "s1"), deployment
        ) == 0.5

    def test_healthy_system_silent(self, deployment):
        monitor = PathMonitor("pm", PATH)
        assert monitor.alarm_probability(None, deployment) == 0.0

    def test_coverage_scales_alarm(self, deployment):
        monitor = PathMonitor("pm", PATH, coverage=0.8)
        assert np.isclose(
            monitor.alarm_probability(Fault(FaultKind.ZOMBIE, "s1"), deployment),
            0.4,
        )

    def test_false_positive_on_clear_probe(self, deployment):
        monitor = PathMonitor("pm", PATH, false_positive_rate=0.1)
        assert np.isclose(monitor.alarm_probability(None, deployment), 0.1)


class TestJointObservationModel:
    def test_labels_cover_all_outcomes(self, deployment):
        monitors = [ComponentMonitor("aMon", "gw"), PathMonitor("pm", PATH)]
        labels = observation_labels(monitors)
        assert len(labels) == 4
        assert labels[0] == "aMon-,pm-"
        assert labels[-1] == "aMon!,pm!"

    def test_rows_are_distributions(self, deployment):
        monitors = [
            ComponentMonitor("gwMon", "gw"),
            ComponentMonitor("s1Mon", "s1"),
            PathMonitor("pm", PATH),
        ]
        faults = [None, Fault(FaultKind.ZOMBIE, "s1"), Fault(FaultKind.CRASH, "gw")]
        matrix = observation_matrix(monitors, faults, deployment)
        assert matrix.shape == (3, 8)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_independence_product(self, deployment):
        monitors = [ComponentMonitor("gwMon", "gw"), PathMonitor("pm", PATH)]
        fault = Fault(FaultKind.ZOMBIE, "s1")
        matrix = observation_matrix(monitors, [fault], deployment)
        # Outcomes order: (gw-,pm-), (gw-,pm!), (gw!,pm-), (gw!,pm!)
        assert np.allclose(matrix[0], [0.5, 0.5, 0.0, 0.0])

    def test_null_state_all_clear(self, deployment):
        monitors = [ComponentMonitor("gwMon", "gw"), PathMonitor("pm", PATH)]
        matrix = observation_matrix(monitors, [None], deployment)
        assert matrix[0, 0] == 1.0

    def test_empty_monitor_suite_rejected(self, deployment):
        with pytest.raises(ModelError):
            observation_matrix([], [None], deployment)
