"""Tests for incremental bound refinement (Eqs. 6-7) and Property 1(b)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.incremental import (
    incremental_update,
    refine_at,
    sample_reachable_beliefs,
    verify_lower_bound_invariant,
)
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.pomdp.exact import solve_exact
from repro.systems.simple import build_simple_system


@pytest.fixture()
def seeded_set(simple_system):
    return BoundVectorSet(ra_bound_vector(simple_system.model.pomdp))


class TestIncrementalUpdate:
    def test_backup_never_below_current_bound(self, simple_system, seeded_set):
        """One L_p application of a valid lower bound can only raise it."""
        pomdp = simple_system.model.pomdp
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=32):
            vector, action = incremental_update(
                pomdp, seeded_set.vectors, belief
            )
            current = float(np.max(seeded_set.vectors @ belief))
            assert float(vector @ belief) >= current - 1e-9
            assert 0 <= action < pomdp.n_actions

    def test_refine_improves_at_target_belief(self, simple_system, seeded_set):
        pomdp = simple_system.model.pomdp
        belief = simple_system.model.initial_belief()
        before = seeded_set.value(belief)
        result = refine_at(pomdp, seeded_set, belief)
        after = seeded_set.value(belief)
        assert after >= before - 1e-9
        assert result.improvement >= 0.0

    def test_repeated_refinement_converges(self, simple_system, seeded_set):
        """Refinement at a fixed belief is monotone and settles."""
        pomdp = simple_system.model.pomdp
        belief = simple_system.model.initial_belief()
        values = []
        for _ in range(50):
            refine_at(pomdp, seeded_set, belief)
            values.append(seeded_set.value(belief))
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert values[-1] - values[-10] <= 1e-6  # settled

    def test_min_improvement_rejects_small_gains(self, simple_system, seeded_set):
        pomdp = simple_system.model.pomdp
        belief = simple_system.model.initial_belief()
        for _ in range(30):
            refine_at(pomdp, seeded_set, belief, min_improvement=1e9)
        assert len(seeded_set) == 1  # nothing could clear the bar


class TestLowerBoundSoundness:
    def test_refined_bound_still_below_exact_value(self):
        """Refinement must never push the bound above the true value."""
        system = build_simple_system(recovery_notification=False, discount=0.85)
        pomdp = system.model.pomdp
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))
        solution = solve_exact(pomdp, tol=1e-6)
        rng = np.random.default_rng(1)
        beliefs = rng.dirichlet(np.ones(pomdp.n_states), size=64)
        for belief in beliefs[:32]:
            refine_at(pomdp, bound_set, belief)
        for belief in beliefs:
            assert (
                bound_set.value(belief)
                <= solution.value(belief) + solution.error_bound + 1e-7
            )


class TestProperty1Invariant:
    def test_holds_for_ra_seed(self, simple_system, seeded_set):
        """Condition (b) 'can be shown to hold if the RA-Bound is the only
        bound vector present in B' — checked over reachable beliefs."""
        pomdp = simple_system.model.pomdp
        beliefs = sample_reachable_beliefs(
            pomdp, simple_system.model.initial_belief(), depth=2, max_beliefs=64
        )
        assert verify_lower_bound_invariant(pomdp, seeded_set, beliefs)

    def test_survives_refinement(self, simple_system, seeded_set):
        pomdp = simple_system.model.pomdp
        beliefs = sample_reachable_beliefs(
            pomdp, simple_system.model.initial_belief(), depth=2, max_beliefs=48
        )
        for belief in beliefs[:24]:
            refine_at(pomdp, seeded_set, belief)
        assert verify_lower_bound_invariant(pomdp, seeded_set, beliefs)

    def test_detects_violations(self, simple_system):
        """A deliberately too-optimistic set must fail the check."""
        pomdp = simple_system.model.pomdp
        optimistic = BoundVectorSet(np.full(pomdp.n_states, -1e-3))
        beliefs = simple_system.model.initial_belief()[None, :]
        assert not verify_lower_bound_invariant(pomdp, optimistic, beliefs)

    def test_holds_on_emn(self, emn_system):
        pomdp = emn_system.model.pomdp
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))
        beliefs = sample_reachable_beliefs(
            pomdp, emn_system.model.initial_belief(), depth=1, max_beliefs=24
        )
        assert verify_lower_bound_invariant(pomdp, bound_set, beliefs)


class TestSampleReachableBeliefs:
    def test_contains_initial(self, simple_system):
        pomdp = simple_system.model.pomdp
        initial = simple_system.model.initial_belief()
        beliefs = sample_reachable_beliefs(pomdp, initial, depth=1)
        assert np.allclose(beliefs[0], initial)

    def test_respects_cap(self, emn_system):
        beliefs = sample_reachable_beliefs(
            emn_system.model.pomdp,
            emn_system.model.initial_belief(),
            depth=3,
            max_beliefs=10,
        )
        assert beliefs.shape[0] <= 10

    def test_all_rows_are_distributions(self, simple_system):
        beliefs = sample_reachable_beliefs(
            simple_system.model.pomdp,
            simple_system.model.initial_belief(),
            depth=2,
            max_beliefs=64,
        )
        assert np.allclose(beliefs.sum(axis=1), 1.0)
        assert np.all(beliefs >= -1e-12)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_refinement_monotone_at_random_beliefs(seed):
    """Property: refine_at never lowers the bound anywhere."""
    system = build_simple_system(recovery_notification=False)
    pomdp = system.model.pomdp
    bound_set = BoundVectorSet(ra_bound_vector(pomdp))
    rng = np.random.default_rng(seed)
    target = rng.dirichlet(np.ones(pomdp.n_states))
    probes = rng.dirichlet(np.ones(pomdp.n_states), size=8)
    before = [bound_set.value(p) for p in probes]
    refine_at(pomdp, bound_set, target)
    after = [bound_set.value(p) for p in probes]
    assert all(b >= a - 1e-9 for a, b in zip(before, after))
