"""Tests for the RA-Bound scalability experiment."""

import numpy as np

from repro.experiments.scalability import (
    format_scalability,
    run_scalability,
    verify_against_dense,
)


class TestScalability:
    def test_sparse_matches_dense_on_small_instance(self):
        assert verify_against_dense((2, 2, 2)) < 1e-8

    def test_sweep_points_have_expected_sizes(self):
        points = run_scalability(sizes=(2, 10), n_tiers=3)
        assert [point.n_states for point in points] == [14, 62]
        assert all(point.solve_seconds >= 0 for point in points)
        assert all(np.isfinite(point.sample_value) for point in points)

    def test_handles_large_instance(self):
        points = run_scalability(sizes=(5_000,), n_tiers=3)
        assert points[0].n_states == 30_002
        assert points[0].sample_value < 0

    def test_formatting(self):
        points = run_scalability(sizes=(2,), n_tiers=2)
        text = format_scalability(points)
        assert "RA solve (ms)" in text
        assert "States" in text
