"""Exact POMDP value iteration by Monahan enumeration with pruning.

Solving a POMDP exactly is undecidable in general (Section 2, citing Madani
et al.), but *discounted* finite POMDPs admit arbitrarily tight
piecewise-linear-convex approximations: ``k`` steps of exact value iteration
leave an error of at most ``beta^k * |r|_max / (1 - beta)``.  This module
implements Monahan's enumeration (per-action, per-observation backprojection
followed by cross-sums and pruning), which is tractable for the paper's small
worked example (Figure 1(a)) and serves as the ground truth the test suite
validates the RA-Bound and the lookahead tree against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError, NotConvergedError
from repro.pomdp import alpha
from repro.pomdp.model import POMDP


@dataclass(frozen=True)
class ExactSolution:
    """A piecewise-linear-convex (PWLC) approximation of the value function.

    Attributes:
        vectors: ``(k, |S|)`` stack of alpha vectors; the value at belief
            ``pi`` is ``max_i pi . vectors[i]``.
        iterations: value-iteration stages performed.
        error_bound: sup-norm distance to the true value function,
            ``beta^k |r|_max / (1 - beta)``.
    """

    vectors: np.ndarray
    iterations: int
    error_bound: float

    def value(self, belief: np.ndarray) -> float:
        """The (approximately optimal) value at ``belief``."""
        return alpha.evaluate(self.vectors, np.asarray(belief, dtype=float))

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        return alpha.evaluate_batch(self.vectors, np.asarray(beliefs, dtype=float))

    def greedy_action(self, pomdp: POMDP, belief: np.ndarray) -> int:
        """One-step greedy action with respect to this value function."""
        from repro.pomdp.tree import expand_tree

        return expand_tree(pomdp, belief, depth=1, leaf=self).action


def _backproject(pomdp: POMDP, vectors: np.ndarray, action: int) -> list[np.ndarray]:
    """Per-observation backprojections ``Gamma^{a,o}`` of a vector stack."""
    projections = []
    for observation in range(pomdp.n_observations):
        # weight[s, s'] = p(s'|s,a) * q(o|s',a)
        weight = pomdp.transitions[action] * pomdp.observations[action][
            None, :, observation
        ]
        projections.append(pomdp.discount * (vectors @ weight.T))
    return projections


def solve_exact(
    pomdp: POMDP,
    tol: float = 1e-6,
    max_iterations: int = 500,
    max_vectors: int = 10_000,
    prune: str = "lp",
) -> ExactSolution:
    """Run exact value iteration until the discount-geometric error <= tol.

    Args:
        pomdp: a *discounted* model (``discount < 1``); undiscounted exact
            solution is undecidable and is rejected with
            :class:`~repro.exceptions.ModelError`.
        tol: target sup-norm error of the returned PWLC function.
        max_iterations: stage budget.
        max_vectors: guard against representation blow-up; exceeded stacks
            raise :class:`~repro.exceptions.NotConvergedError` so callers
            know the model is too large for exact solution.
        prune: ``"lp"`` for exact Lark pruning, ``"pointwise"`` for the
            cheaper sufficient filter.
    """
    if pomdp.discount >= 1.0:
        raise ModelError(
            "exact value iteration requires discount < 1; undiscounted "
            "POMDP solution is undecidable (Section 2)"
        )
    prune_fn = alpha.prune_lp if prune == "lp" else alpha.prune_pointwise

    reward_span = float(np.max(np.abs(pomdp.rewards)))
    vectors = np.zeros((1, pomdp.n_states))
    for iteration in range(1, max_iterations + 1):
        stage: list[np.ndarray] = []
        for action in range(pomdp.n_actions):
            projections = _backproject(pomdp, vectors, action)
            combined = np.asarray([pomdp.rewards[action]])
            for projection in projections:
                combined = alpha.cross_sum(combined, projection)
                combined = prune_fn(combined)
                if combined.shape[0] > max_vectors:
                    raise NotConvergedError(
                        "alpha-vector stack exceeded max_vectors during "
                        f"cross-sum ({combined.shape[0]} > {max_vectors})",
                        iterations=iteration,
                        residual=float("inf"),
                    )
            stage.append(combined)
        updated = prune_fn(np.vstack(stage))
        error_bound = (
            pomdp.discount**iteration * reward_span / (1.0 - pomdp.discount)
        )
        vectors = updated
        if error_bound <= tol:
            return ExactSolution(
                vectors=vectors, iterations=iteration, error_bound=error_bound
            )
    raise NotConvergedError(
        f"exact value iteration did not reach tol={tol} in "
        f"{max_iterations} stages",
        iterations=max_iterations,
        residual=error_bound,
    )
