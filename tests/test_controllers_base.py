"""Tests for the controller lifecycle and belief-tracking base class."""

import numpy as np
import pytest

from repro.controllers.base import NO_ACTION, Decision, RecoveryController
from repro.exceptions import ControllerError
from repro.sim.environment import NO_OBSERVATION


class FixedActionController(RecoveryController):
    """Minimal concrete controller for lifecycle tests."""

    name = "fixed"

    def __init__(self, model, action=0):
        super().__init__(model)
        self.action = action

    def _decide(self, belief):
        return Decision(action=self.action)


class TestLifecycle:
    def test_decide_before_reset_rejected(self, simple_system):
        controller = FixedActionController(simple_system.model)
        with pytest.raises(ControllerError):
            controller.decide()

    def test_observe_before_reset_rejected(self, simple_system):
        controller = FixedActionController(simple_system.model)
        with pytest.raises(ControllerError):
            controller.observe(0, 0)

    def test_belief_before_reset_rejected(self, simple_system):
        controller = FixedActionController(simple_system.model)
        with pytest.raises(ControllerError):
            _ = controller.belief

    def test_reset_installs_initial_fault_belief(self, simple_system):
        controller = FixedActionController(simple_system.model)
        controller.reset()
        assert np.allclose(controller.belief, simple_system.model.initial_belief())
        assert not controller.done

    def test_custom_initial_belief(self, simple_system):
        controller = FixedActionController(simple_system.model)
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.fault_a] = 1.0
        controller.reset(initial_belief=belief)
        assert np.allclose(controller.belief, belief)

    def test_wrong_length_initial_belief_rejected(self, simple_system):
        controller = FixedActionController(simple_system.model)
        with pytest.raises(ControllerError):
            controller.reset(initial_belief=np.array([1.0]))

    def test_decide_after_terminate_rejected(self, simple_system):
        class Terminator(FixedActionController):
            def _decide(self, belief):
                return Decision(action=-1, is_terminate=True)

        controller = Terminator(simple_system.model)
        controller.reset()
        decision = controller.decide()
        assert decision.is_terminate
        assert controller.done
        with pytest.raises(ControllerError):
            controller.decide()

    def test_belief_returns_copy(self, simple_system):
        controller = FixedActionController(simple_system.model)
        controller.reset()
        controller.belief[:] = 0.0
        assert np.isclose(controller.belief.sum(), 1.0)


class TestObserve:
    def test_bayes_update_applied(self, simple_system):
        controller = FixedActionController(simple_system.model)
        controller.reset()
        pomdp = simple_system.model.pomdp
        looks_a = pomdp.observation_index("looks(a)")
        controller.observe(simple_system.observe_action, looks_a)
        belief = controller.belief
        assert belief[simple_system.fault_a] > belief[simple_system.fault_b]

    def test_impossible_observation_triggers_rediagnosis(self, simple_system):
        """An observation with zero probability under the belief must reseed
        from the initial fault distribution instead of crashing."""
        controller = FixedActionController(simple_system.model)
        pomdp = simple_system.model.pomdp
        n = pomdp.n_states
        certain_null = np.zeros(n)
        certain_null[simple_system.null_state] = 1.0
        controller.reset(initial_belief=certain_null)
        looks_a = pomdp.observation_index("looks(a)")
        # From certain-null, observe cannot produce looks(a) (fp = 0).
        controller.observe(simple_system.observe_action, looks_a)
        belief = controller.belief
        assert np.isclose(belief.sum(), 1.0)
        assert belief[simple_system.fault_a] > 0.0

    def test_sync_true_state_is_noop_by_default(self, simple_system):
        controller = FixedActionController(simple_system.model)
        controller.reset()
        before = controller.belief
        controller.sync_true_state(simple_system.fault_b)
        assert np.allclose(controller.belief, before)

    def test_negative_observation_rejected(self, simple_system):
        """Regression: the NO_OBSERVATION sentinel must never reach Eq. 4 —
        numpy would wrap the -1 to the last observation column and silently
        corrupt the belief instead of failing."""
        controller = FixedActionController(simple_system.model)
        controller.reset()
        with pytest.raises(ControllerError, match="negative observation"):
            controller.observe(simple_system.observe_action, NO_OBSERVATION)


class TestTerminateDecision:
    def test_carries_terminate_action_when_model_has_one(self, simple_system):
        controller = FixedActionController(simple_system.model)
        decision = controller._terminate_decision(value=1.5)
        assert decision.is_terminate
        assert decision.action == simple_system.model.terminate_action
        assert decision.executes_action
        assert decision.value == 1.5

    def test_falls_back_to_sentinel_on_notification_models(
        self, simple_notified_system
    ):
        controller = FixedActionController(simple_notified_system.model)
        decision = controller._terminate_decision()
        assert decision.is_terminate
        assert decision.action == NO_ACTION
        assert not decision.executes_action

    def test_executes_action_property(self):
        assert Decision(action=0).executes_action
        assert not Decision(action=NO_ACTION, is_terminate=True).executes_action


class TestTiming:
    def test_decide_accumulates_stopwatch(self, simple_system):
        controller = FixedActionController(simple_system.model)
        controller.reset()
        controller.decide()
        controller.decide()
        assert controller.stopwatch.laps == 2
