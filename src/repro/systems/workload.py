"""Request-mix workload model.

Costs in the EMN recovery model "accrue at a rate equal to the fraction of
requests being dropped by the system" (Section 5).  A request class follows
a *path*: a set of components every request needs (its gateway and the
database) plus a pool it is load-balanced over (the EMN servers, 50/50 in
Figure 4).  The drop fraction of a component-availability state is then a
simple sum over request classes.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import ModelError


@dataclass(frozen=True)
class RequestPath:
    """One request class and the components it traverses.

    Attributes:
        name: class name (e.g. ``"http"``).
        fraction: share of total traffic in ``[0, 1]``.
        fixed: components every request of this class must traverse.
        balanced: pool the class is load-balanced over uniformly; a request
            picks exactly one pool member (empty pool means none needed).
    """

    name: str
    fraction: float
    fixed: tuple[str, ...]
    balanced: tuple[str, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.fraction <= 1.0:
            raise ModelError(
                f"path {self.name!r} fraction must be in [0, 1], "
                f"got {self.fraction}"
            )

    def drop_probability(self, unavailable: frozenset[str]) -> float:
        """Probability one request of this class is dropped.

        A request fails if any fixed component is unavailable, or if the
        uniformly-chosen pool member is.
        """
        if any(component in unavailable for component in self.fixed):
            return 1.0
        if not self.balanced:
            return 0.0
        down = sum(1 for member in self.balanced if member in unavailable)
        return down / len(self.balanced)


def drop_fraction(
    paths: Iterable[RequestPath], unavailable: frozenset[str]
) -> float:
    """Total fraction of traffic dropped given the unavailable set.

    This is the cost *rate* (per second, at a unit request rate) of a system
    state, and — with the action's own victims added to ``unavailable`` —
    the rate while a recovery action runs.
    """
    return sum(
        path.fraction * path.drop_probability(unavailable) for path in paths
    )


def check_fractions(paths: Iterable[RequestPath], tol: float = 1e-9) -> None:
    """Validate that the class fractions partition the traffic."""
    total = sum(path.fraction for path in paths)
    if abs(total - 1.0) > tol:
        raise ModelError(
            f"request-class fractions must sum to 1, got {total:.6f}"
        )
