"""Belief states and Bayesian belief updates (Eqs. 3 and 4).

A belief state ``pi`` is a probability distribution over the POMDP's states.
These functions are the innermost loop of every controller, so they operate
on plain :class:`numpy.ndarray` vectors; validation is the caller's job (the
model constructors validate the matrices once).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BeliefError
from repro.linalg.ops import (
    GAMMA_EPSILON,
    belief_update_batch,
    observation_column,
    observation_matrix_dense,
    observation_probabilities_from_predicted,
    predict,
    reward_row,
)
from repro.pomdp.cache import get_joint_cache
from repro.pomdp.model import POMDP

__all__ = [
    "GAMMA_EPSILON",
    "belief_bellman_backup",
    "belief_reward",
    "next_beliefs",
    "observation_probabilities",
    "point_belief",
    "predicted_belief",
    "uniform_belief",
    "update_belief",
    "update_belief_batch",
]


def uniform_belief(pomdp: POMDP, support: np.ndarray | None = None) -> np.ndarray:
    """The uniform belief, optionally restricted to a ``support`` mask.

    The paper's controller starts "from a belief-state in which all faults
    are equally likely" (Section 4); the recovery layer passes the fault-state
    mask as ``support`` to build exactly that belief.
    """
    if support is None:
        return np.full(pomdp.n_states, 1.0 / pomdp.n_states)
    mask = np.asarray(support, dtype=bool)
    if mask.shape != (pomdp.n_states,) or not mask.any():
        raise BeliefError("support must be a non-empty state mask")
    belief = np.zeros(pomdp.n_states)
    belief[mask] = 1.0 / mask.sum()
    return belief


def point_belief(pomdp: POMDP, state: int) -> np.ndarray:
    """A belief concentrated on a single ``state``."""
    if not 0 <= state < pomdp.n_states:
        raise BeliefError(f"state {state} out of range for {pomdp.n_states} states")
    belief = np.zeros(pomdp.n_states)
    belief[state] = 1.0
    return belief


def predicted_belief(pomdp: POMDP, belief: np.ndarray, action: int) -> np.ndarray:
    """The pre-observation next-state distribution ``sum_s p(.|s,a) pi(s)``."""
    return predict(pomdp.transitions, belief, action)


def observation_probabilities(
    pomdp: POMDP, belief: np.ndarray, action: int
) -> np.ndarray:
    """Eq. 3: ``gamma^{pi,a}(o)`` for every observation ``o``.

    ``gamma[o]`` is the probability of observing ``o`` after choosing
    ``action`` in ``belief``.
    """
    return observation_probabilities_from_predicted(
        pomdp.observations, predicted_belief(pomdp, belief, action), action
    )


def update_belief(
    pomdp: POMDP, belief: np.ndarray, action: int, observation: int
) -> np.ndarray:
    """Eq. 4: the posterior belief ``pi^{pi,a,o}``.

    Raises :class:`~repro.exceptions.BeliefError` when ``observation`` has
    zero probability under ``belief`` and ``action`` — i.e., the model says
    the observation cannot happen, which indicates a model/environment
    mismatch the caller must handle.
    """
    predicted = predicted_belief(pomdp, belief, action)
    joint = predicted * observation_column(pomdp.observations, action, observation)
    total = joint.sum()
    if total <= GAMMA_EPSILON:
        raise BeliefError(
            f"observation {observation} has probability ~0 under action "
            f"{action} and the current belief"
        )
    return joint / total


def update_belief_batch(
    pomdp: POMDP,
    beliefs: np.ndarray,
    action: int,
    observations: np.ndarray | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Eq. 4 over a ``(m, |S|)`` stack of beliefs.

    With ``observations=None`` returns ``(gamma, posteriors)`` of shapes
    ``(m, |O|)`` and ``(m, |O|, |S|)`` — every observation branch of every
    belief, with impossible branches (``gamma <= GAMMA_EPSILON``) zeroed.

    With ``observations`` given (one index, or one per belief) the chosen
    branches are selected and the shapes collapse to ``(m,)`` and
    ``(m, |S|)``.  Mirroring the scalar path's strictness, a zero-probability
    selection raises :class:`~repro.exceptions.BeliefError`, and so does a
    negative index: the environment's ``NO_OBSERVATION`` sentinel (``-1``)
    marks "no observation was emitted" and must never reach Eq. 4 — numpy
    would silently wrap it to the last observation column and corrupt every
    posterior in the batch.
    """
    beliefs = np.atleast_2d(np.asarray(beliefs, dtype=float))
    gamma, posteriors = belief_update_batch(
        pomdp.transitions, pomdp.observations, beliefs, action
    )
    if observations is None:
        return gamma, posteriors
    chosen = np.asarray(observations, dtype=np.int64)
    if chosen.ndim == 0:
        chosen = np.full(beliefs.shape[0], int(chosen), dtype=np.int64)
    if chosen.shape != (beliefs.shape[0],):
        raise BeliefError(
            f"need one observation per belief: got {chosen.shape} "
            f"for {beliefs.shape[0]} beliefs"
        )
    if np.any(chosen < 0):
        raise BeliefError(
            "negative observation index (the NO_OBSERVATION sentinel) "
            "cannot be folded into Eq. 4"
        )
    if np.any(chosen >= pomdp.n_observations):
        raise BeliefError(
            f"observation index out of range for {pomdp.n_observations} "
            "observations"
        )
    rows = np.arange(beliefs.shape[0])
    selected_gamma = gamma[rows, chosen]
    impossible = np.flatnonzero(selected_gamma <= GAMMA_EPSILON)
    if impossible.size:
        i = int(impossible[0])
        raise BeliefError(
            f"observation {int(chosen[i])} has probability ~0 under action "
            f"{action} and belief {i} of the batch"
        )
    return selected_gamma, posteriors[rows, chosen]


def next_beliefs(
    pomdp: POMDP, belief: np.ndarray, action: int, epsilon: float = GAMMA_EPSILON
) -> tuple[np.ndarray, np.ndarray]:
    """All reachable posteriors for ``(belief, action)`` in one shot.

    Returns ``(observation_indices, beliefs)`` where ``beliefs`` has shape
    ``(len(observation_indices), |S|)`` and row ``i`` is the posterior after
    observing ``observation_indices[i]``.  Only observations with
    ``gamma(o) > epsilon`` are included; this is the branch pruning that
    makes the finite-depth tree of Figure 1(b) tractable.

    The joint factor comes from the shared per-model
    :class:`~repro.pomdp.cache.JointFactorCache` when the model is small
    enough to cache, so repeated enumeration from the same model does one
    matrix product per call instead of rebuilding the transition/observation
    product.
    """
    cache = get_joint_cache(pomdp)
    if cache is not None:
        joint = cache.joint(belief, action)  # (|S|, |O|)
    else:
        predicted = predicted_belief(pomdp, belief, action)
        joint = predicted[:, None] * observation_matrix_dense(
            pomdp.observations, action
        )
    gamma = joint.sum(axis=0)
    reachable = np.flatnonzero(gamma > epsilon)
    posteriors = (joint[:, reachable] / gamma[reachable]).T
    return reachable, posteriors


def belief_reward(pomdp: POMDP, belief: np.ndarray, action: int) -> float:
    """Expected single-step reward ``pi . r(a)`` of ``action`` in ``belief``."""
    if pomdp.backend.is_sparse:
        return float(reward_row(pomdp.rewards, action) @ belief)
    return float(belief @ pomdp.rewards[action])


def belief_bellman_backup(pomdp: POMDP, belief: np.ndarray, value_fn) -> float:
    """One application of the operator ``L_p`` of Eq. 2 at ``belief``.

    ``value_fn(next_belief) -> float`` supplies the value of successor
    beliefs.  Used by the bound-invariant checker (Property 1(b) requires
    ``V_B^- <= L_p V_B^-``) and by the tests that validate the tree
    expansion against a direct implementation.
    """
    best = -np.inf
    for action in range(pomdp.n_actions):
        gamma = observation_probabilities(pomdp, belief, action)
        total = belief_reward(pomdp, belief, action)
        for observation in np.flatnonzero(gamma > GAMMA_EPSILON):
            posterior = update_belief(pomdp, belief, action, int(observation))
            total += pomdp.discount * gamma[observation] * value_fn(posterior)
        best = max(best, total)
    return best
