"""Quickstart: automatic recovery on the paper's EMN e-commerce system.

Builds the Figure 4 deployment model, bootstraps the bounded controller's
lower bounds (Section 4.1), injects a handful of hard-to-diagnose zombie
faults, and prints per-fault recovery metrics — a miniature of the paper's
Table 1 experiment.

Run:  python examples/quickstart.py
"""

from repro import BoundedController, bootstrap_bounds, build_emn_system, run_campaign
from repro.systems import FaultKind
from repro.util import render_table

INJECTIONS = 50
SEED = 2006


def main() -> None:
    # 1. Generate the recovery POMDP for the EMN deployment (14 system
    #    states + terminate state, 10 actions, 128 joint monitor outputs).
    system = build_emn_system()
    print(f"Model: {system.model.pomdp}")
    print(f"Recovery notification: {system.model.recovery_notification}")

    # 2. Bootstrapping phase: refine the RA-Bound on simulated recoveries
    #    before any real fault occurs (the paper uses 10 runs at depth 2).
    bound_set, trace = bootstrap_bounds(
        system.model, iterations=10, depth=2, variant="average", seed=SEED
    )
    print(
        f"Bound at the uniform belief: {-trace.initial_bound:.0f} -> "
        f"{trace.cost_upper_bounds[-1]:.0f} dropped requests "
        f"(|B| = {len(bound_set)})"
    )

    # 3. Online recovery: inject zombie faults (invisible to ping monitors)
    #    and let the bounded controller diagnose and repair them.
    controller = BoundedController(
        system.model, depth=1, bound_set=bound_set, refine_min_improvement=1.0
    )
    result = run_campaign(
        controller,
        fault_states=system.fault_states(FaultKind.ZOMBIE),
        injections=INJECTIONS,
        seed=SEED,
        monitor_tail=5.0,
    )

    summary = result.summary
    print()
    print(
        render_table(
            ["Metric", "Per-fault average"],
            [
                ["Cost (dropped requests)", summary.cost],
                ["Recovery time (s)", summary.recovery_time],
                ["Residual time (s)", summary.residual_time],
                ["Algorithm time (ms)", summary.algorithm_time_ms],
                ["Recovery actions", summary.actions],
                ["Monitor calls", summary.monitor_calls],
            ],
            title=f"Bounded controller over {INJECTIONS} zombie injections",
        )
    )
    print()
    print(
        f"Early terminations: {summary.early_terminations} "
        f"(the controller never quits before the system is repaired)"
    )


if __name__ == "__main__":
    main()
