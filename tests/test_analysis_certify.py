"""Bound-soundness certificates (R3xx) and the certified io load path.

Acceptance contract: the certifier accepts every bound set the shipped
refinement path produces (RA-Bound seed + ``refine_at`` at reachable and
random beliefs, both Figure 2 variants, discounted and undiscounted) and
rejects perturbed/corrupted/mismatched sets with the right R3xx code.
"""

import numpy as np
import pytest

from repro.analysis import certify_bound_set
from repro.bounds import BoundVectorSet, ra_bound_vector, refine_at
from repro.bounds.incremental import sample_reachable_beliefs
from repro.exceptions import AnalysisError
from repro.io import load_bound_set, save_bound_set
from repro.systems.simple import build_simple_system


def _refined_set(system, n_beliefs=40, seed=3) -> BoundVectorSet:
    pomdp = system.model.pomdp
    bound_set = BoundVectorSet(ra_bound_vector(pomdp))
    rng = np.random.default_rng(seed)
    for belief in rng.dirichlet(np.ones(pomdp.n_states), size=n_beliefs):
        refine_at(pomdp, bound_set, belief)
    return bound_set


@pytest.fixture(scope="module")
def notified_system():
    return build_simple_system(recovery_notification=True, miss_rate=0.0)


@pytest.fixture(scope="module")
def terminate_system():
    return build_simple_system(recovery_notification=False)


class TestShippedPathIsAccepted:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"recovery_notification": True, "miss_rate": 0.0},
            {"recovery_notification": False},
            {"recovery_notification": False, "discount": 0.85},
        ],
        ids=["notified", "terminate", "terminate-discounted"],
    )
    def test_refined_sets_certify_clean(self, kwargs):
        system = build_simple_system(**kwargs)
        bound_set = _refined_set(system)
        assert len(bound_set) > 1  # refinement actually added vectors
        report = certify_bound_set(system.model, bound_set)
        assert report.exit_code == 0, report.format()
        assert any(d.code == "R204" for d in report.findings)

    def test_ra_seed_alone_certifies(self, terminate_system):
        seed_only = BoundVectorSet(
            ra_bound_vector(terminate_system.model.pomdp)
        )
        report = certify_bound_set(terminate_system.model, seed_only)
        assert report.exit_code == 0, report.format()

    def test_reachable_belief_refinement_certifies(self, notified_system):
        pomdp = notified_system.model.pomdp
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))
        beliefs = sample_reachable_beliefs(
            pomdp, notified_system.model.initial_belief(), depth=2, max_beliefs=48
        )
        for belief in beliefs:
            refine_at(pomdp, bound_set, belief)
        report = certify_bound_set(notified_system.model, bound_set)
        assert report.exit_code == 0, report.format()

    def test_raw_array_input_accepted(self, terminate_system):
        vectors = _refined_set(terminate_system).vectors
        report = certify_bound_set(terminate_system.model, np.asarray(vectors))
        assert report.exit_code == 0


class TestCorruptionIsRejected:
    def test_perturbed_entry_fails_r302(self, notified_system):
        corrupted = _refined_set(notified_system).vectors.copy()
        corrupted[corrupted.shape[0] // 2, 1] += 0.5
        report = certify_bound_set(notified_system.model, corrupted)
        assert report.exit_code == 2
        r302 = [d for d in report.findings if d.code == "R302"]
        assert r302 and r302[0].location.startswith("vector[")

    def test_positive_at_terminate_state_fails_r303(self, terminate_system):
        model = terminate_system.model
        corrupted = _refined_set(terminate_system).vectors.copy()
        corrupted[0, model.terminate_state] = 1e-3
        report = certify_bound_set(model, corrupted)
        assert any(d.code == "R303" for d in report.findings)
        assert report.exit_code == 2

    def test_positive_on_null_set_fails_r303(self, notified_system):
        model = notified_system.model
        corrupted = _refined_set(notified_system).vectors.copy()
        null = int(np.flatnonzero(model.null_states)[0])
        corrupted[0, null] = 0.25
        report = certify_bound_set(model, corrupted)
        assert any(d.code == "R303" for d in report.findings)

    def test_wrong_dimension_fails_r301(self, notified_system):
        model = notified_system.model
        wrong = np.zeros((2, model.pomdp.n_states + 1))
        report = certify_bound_set(model, wrong)
        assert any(d.code == "R301" for d in report.findings)
        assert report.exit_code == 2

    def test_nan_entries_fail_r301(self, notified_system):
        model = notified_system.model
        corrupted = _refined_set(notified_system).vectors.copy()
        corrupted[0, 0] = np.nan
        report = certify_bound_set(model, corrupted)
        r301 = [d for d in report.findings if d.code == "R301"]
        assert r301 and "non-finite" in r301[0].message

    def test_failed_certificate_summarised_in_r204(self, notified_system):
        corrupted = _refined_set(notified_system).vectors.copy()
        corrupted[corrupted.shape[0] // 2, 1] += 0.5
        report = certify_bound_set(notified_system.model, corrupted)
        summary = [d for d in report.findings if d.code == "R204"]
        assert summary and "FAILED" in summary[0].message


class TestCertifiedLoadPath:
    def test_round_trip_with_model_certifies(self, tmp_path, notified_system):
        bound_set = _refined_set(notified_system)
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        loaded = load_bound_set(path, model=notified_system.model)
        assert np.array_equal(loaded.vectors, bound_set.vectors)

    def test_load_without_model_skips_certification(self, tmp_path, notified_system):
        """Backwards compatible: no model, no certificate, no rejection."""
        corrupted = _refined_set(notified_system)
        corrupted._vectors[0, 1] += 5.0
        path = tmp_path / "bounds.npz"
        save_bound_set(path, corrupted)
        loaded = load_bound_set(path)  # must not raise
        assert len(loaded) == len(corrupted)

    def test_corrupted_archive_rejected_on_load(self, tmp_path, notified_system):
        corrupted = _refined_set(notified_system)
        corrupted._vectors[0, 1] += 5.0  # unsound hyperplane
        path = tmp_path / "bounds.npz"
        save_bound_set(path, corrupted)
        with pytest.raises(AnalysisError) as excinfo:
            load_bound_set(path, model=notified_system.model)
        assert "R302" in str(excinfo.value)

    def test_stale_archive_rejected_on_load(self, tmp_path, notified_system):
        """A set saved for a *different* model fails certification."""
        other = build_simple_system(recovery_notification=False)
        bound_set = _refined_set(other)
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        with pytest.raises(AnalysisError):
            load_bound_set(path, model=notified_system.model)
