"""The recovery model: a POMDP plus recovery semantics (Section 3).

A :class:`RecoveryModel` is what controllers and the fault-injection
environment consume.  Its POMDP is already *augmented*: for systems with
recovery notification the null states are absorbing and zero-reward
(Figure 2(a)); for systems without, a terminate state ``s_T`` and action
``a_T`` have been appended with termination rewards
``r(s, a_T) = rbar(s) * t_op`` (Figure 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.passes import (
    condition_1_diagnostics,
    condition_2_diagnostics,
)
from repro.analysis.view import ModelView
from repro.exceptions import ModelError
from repro.linalg.backends import (
    densify_observations,
    densify_rewards,
    densify_transitions,
    resolve_backend,
    sparsify_observations,
    sparsify_rewards,
    sparsify_transitions,
    transition_density,
)
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.pomdp.model import POMDP

#: Label given to the appended terminate state / action.
TERMINATE_LABEL = "terminate"


def _condition_view(pomdp: POMDP, null_states: np.ndarray | None) -> ModelView:
    return ModelView(
        transitions=pomdp.transitions,
        rewards=pomdp.rewards,
        observations=pomdp.observations,
        state_labels=pomdp.state_labels,
        action_labels=pomdp.action_labels,
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
        null_states=null_states,
    )


def check_condition_1(
    pomdp: POMDP,
    null_states: np.ndarray,
    exempt_states: np.ndarray | None = None,
) -> None:
    """Condition 1: every state can reach some null-fault state.

    "Starting in any state s not in S_phi, there is at least one way to
    recover the system" — i.e. ``S_phi`` is reachable from every state in
    the graph whose edges are the union of all actions' transitions.

    This is the strict-mode adapter over the static analyzer's Condition 1
    pass (:func:`repro.analysis.condition_1_diagnostics`); use the analyzer
    directly for a full (non-fail-fast) report.

    Args:
        pomdp: the model to check.
        null_states: the ``S_phi`` mask.
        exempt_states: states excluded from the requirement; the appended
            terminate state ``s_T`` is absorbing *by design* and is the one
            legitimate exemption.

    Raises:
        ConditionViolation: naming the unrecoverable states.
    """
    mask = np.asarray(null_states, dtype=bool)
    if mask.shape != (pomdp.n_states,):
        raise ModelError(
            f"null_states must be a mask of length {pomdp.n_states}"
        )
    view = _condition_view(pomdp, mask)
    findings = condition_1_diagnostics(view, exempt_states=exempt_states)
    AnalysisReport(findings=tuple(findings)).raise_if_errors()


def check_condition_2(pomdp: POMDP) -> None:
    """Condition 2: all single-step rewards are non-positive.

    Strict-mode adapter over :func:`repro.analysis.condition_2_diagnostics`.
    """
    findings = condition_2_diagnostics(_condition_view(pomdp, None))
    AnalysisReport(findings=tuple(findings)).raise_if_errors()


def termination_rewards(
    rate_rewards: np.ndarray,
    operator_response_time: float,
    null_states: np.ndarray,
) -> np.ndarray:
    """Termination rewards ``r(s, a_T)`` (Section 3.1).

    ``r(s, a_T) = rbar(s) * t_op`` for fault states and 0 for null states:
    terminating early leaves the system paying the fault's cost rate until a
    human operator responds, ``t_op`` seconds later.  ``rate_rewards`` are
    non-positive cost rates per second.
    """
    if operator_response_time < 0:
        raise ModelError(
            f"operator response time must be >= 0, got {operator_response_time}"
        )
    rates = np.asarray(rate_rewards, dtype=float)
    rewards = rates * operator_response_time
    rewards = np.where(np.asarray(null_states, dtype=bool), 0.0, rewards)
    return rewards


def null_absorbing_arrays(
    transitions: np.ndarray, rewards: np.ndarray, null_states: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Array-level core of :func:`make_null_absorbing`.

    Operates on raw ``(|A|, |S|, |S|)`` / ``(|A|, |S|)`` arrays so the
    static analyzer's report mode can preview the Figure 2(a) rewiring for
    models that would not survive POMDP validation.
    """
    mask = np.asarray(null_states, dtype=bool)
    transitions = np.asarray(transitions, dtype=float).copy()
    rewards = np.asarray(rewards, dtype=float).copy()
    null_index = np.flatnonzero(mask)
    for action in range(transitions.shape[0]):
        transitions[action][null_index, :] = 0.0
        transitions[action][null_index, null_index] = 1.0
        rewards[action][null_index] = 0.0
    return transitions, rewards


def _replace_rows_with_self_loops(matrix, row_states, null_mask):
    """Rows of CSR ``matrix`` whose ``row_states`` entry is null become
    ``e_{row_states[r]}`` self-loop rows; everything else is untouched."""
    coo = matrix.tocoo()
    null_rows = np.flatnonzero(null_mask[row_states])
    keep = ~null_mask[row_states][coo.row] if coo.nnz else np.zeros(0, bool)
    rows = np.concatenate([coo.row[keep], null_rows])
    cols = np.concatenate([coo.col[keep], row_states[null_rows]])
    data = np.concatenate([coo.data[keep], np.ones(null_rows.size)])
    return sp.csr_matrix((data, (rows, cols)), shape=matrix.shape)


def _null_absorbing_sparse(
    transitions: SparseTransitions,
    rewards,
    null_states: np.ndarray,
):
    """Figure 2(a) on the sparse containers, without densifying."""
    mask = np.asarray(null_states, dtype=bool)
    n_states = transitions.n_states
    n_actions = transitions.n_actions
    new_base = _replace_rows_with_self_loops(
        transitions.base, np.arange(n_states), mask
    )
    new_rows = _replace_rows_with_self_loops(
        transitions.rows, transitions.row_state, mask
    )
    new_transitions = SparseTransitions(
        base=new_base,
        row_action=transitions.row_action,
        row_state=transitions.row_state,
        rows=new_rows,
        n_actions=n_actions,
    )
    null_index = np.flatnonzero(mask)
    if isinstance(rewards, StructuredRewards):
        # Replacement overrides pin r(a, s) to exactly 0.0 on S_phi for
        # every action; existing overrides at those positions are dropped
        # first so the explicit zeros are authoritative.
        coo = rewards.override.tocoo()
        keep = ~mask[coo.col] if coo.nnz else np.zeros(0, bool)
        zero_rows = np.repeat(np.arange(n_actions), null_index.size)
        zero_cols = np.tile(null_index, n_actions)
        new_override = sp.csr_matrix(
            (
                np.concatenate([coo.data[keep], np.zeros(zero_rows.size)]),
                (
                    np.concatenate([coo.row[keep], zero_rows]),
                    np.concatenate([coo.col[keep], zero_cols]),
                ),
            ),
            shape=rewards.override.shape,
        )
        new_rewards = StructuredRewards(
            time_scale=rewards.time_scale,
            rate=rewards.rate,
            fixed=rewards.fixed,
            override=new_override,
        )
    else:
        new_rewards = np.asarray(rewards, dtype=float).copy()
        new_rewards[:, null_index] = 0.0
    return new_transitions, new_rewards


def make_null_absorbing(pomdp: POMDP, null_states: np.ndarray) -> POMDP:
    """Figure 2(a): rewire every action in ``S_phi`` to a zero-reward self-loop.

    With recovery notification the controller stops on entering ``S_phi``,
    so nothing that happens "after" matters; making the null states
    absorbing and free encodes that and gives Eq. 5 a finite solution.
    Works on both backends; the sparse path rewrites only the affected
    base/override rows.
    """
    if pomdp.backend.is_sparse:
        transitions, rewards = _null_absorbing_sparse(
            pomdp.transitions, pomdp.rewards, null_states
        )
    else:
        transitions, rewards = null_absorbing_arrays(
            pomdp.transitions, pomdp.rewards, null_states
        )
    return POMDP(
        transitions=transitions,
        observations=pomdp.observations,
        rewards=rewards,
        state_labels=pomdp.state_labels,
        action_labels=pomdp.action_labels,
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )


def termination_arrays(
    transitions: np.ndarray,
    observations: np.ndarray,
    rewards: np.ndarray,
    null_states: np.ndarray,
    rate_rewards: np.ndarray,
    operator_response_time: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array-level core of :func:`with_termination_action`.

    Returns the augmented ``(transitions, observations, rewards)`` with
    ``s_T`` appended as the last state and ``a_T`` as the last action;
    usable on raw arrays (the analyzer's report mode) as well as on
    validated POMDP fields.
    """
    transitions = np.asarray(transitions, dtype=float)
    observations = np.asarray(observations, dtype=float)
    rewards = np.asarray(rewards, dtype=float)
    n_actions, n_states = transitions.shape[0], transitions.shape[1]
    n_observations = observations.shape[2]
    terminate_state = n_states
    terminate_action = n_actions

    new_transitions = np.zeros((n_actions + 1, n_states + 1, n_states + 1))
    new_transitions[:n_actions, :n_states, :n_states] = transitions
    # Every original action self-loops in s_T.
    new_transitions[:n_actions, terminate_state, terminate_state] = 1.0
    # a_T sends every state (including s_T) to s_T.
    new_transitions[terminate_action, :, terminate_state] = 1.0

    new_observations = np.zeros((n_actions + 1, n_states + 1, n_observations))
    new_observations[:n_actions, :n_states, :] = observations
    new_observations[:n_actions, terminate_state, :] = 1.0 / n_observations
    new_observations[terminate_action, :, :] = 1.0 / n_observations

    term_rewards = termination_rewards(
        rate_rewards, operator_response_time, null_states
    )
    new_rewards = np.zeros((n_actions + 1, n_states + 1))
    new_rewards[:n_actions, :n_states] = rewards
    new_rewards[:n_actions, terminate_state] = 0.0
    new_rewards[terminate_action, :n_states] = term_rewards
    new_rewards[terminate_action, terminate_state] = 0.0
    return new_transitions, new_observations, new_rewards


def _pad_csr(matrix, shape) -> sp.csr_matrix:
    """``matrix`` embedded top-left into a zero CSR of ``shape``."""
    coo = matrix.tocoo()
    return sp.csr_matrix((coo.data, (coo.row, coo.col)), shape=shape)


def _uniform_observation_matrix(n_states: int, n_observations: int) -> sp.csr_matrix:
    data = np.full(n_states * n_observations, 1.0 / n_observations)
    indices = np.tile(np.arange(n_observations), n_states)
    indptr = np.arange(n_states + 1) * n_observations
    return sp.csr_matrix(
        (data, indices, indptr), shape=(n_states, n_observations)
    )


def _append_uniform_row(matrix, n_observations: int) -> sp.csr_matrix:
    """``matrix`` with one extra state row observing uniformly."""
    padded = _pad_csr(matrix, (matrix.shape[0] + 1, n_observations))
    uniform = sp.csr_matrix(
        (
            np.full(n_observations, 1.0 / n_observations),
            (
                np.full(n_observations, matrix.shape[0]),
                np.arange(n_observations),
            ),
        ),
        shape=padded.shape,
    )
    return (padded + uniform).tocsr()


def _termination_containers(
    transitions: SparseTransitions,
    observations: SparseObservations,
    rewards,
    null_states: np.ndarray,
    rate_rewards: np.ndarray,
    operator_response_time: float,
):
    """Figure 2(b) on the sparse containers, without densifying.

    ``s_T`` lands in the shared base (one absorbing row), and ``a_T``
    becomes a block of ``|S| + 1`` override rows all pointing at ``s_T`` —
    the same "one shared matrix plus exceptions" shape the rest of the
    model uses, so a 300k-state augmentation stays a few megabytes.
    """
    n_actions, n_states, _ = transitions.shape
    n_observations = observations.n_observations
    s_t, a_t = n_states, n_actions

    base = _pad_csr(transitions.base, (n_states + 1, n_states + 1))
    base = (
        base
        + sp.csr_matrix(([1.0], ([s_t], [s_t])), shape=base.shape)
    ).tocsr()
    terminate_rows = sp.csr_matrix(
        (
            np.ones(n_states + 1),
            (np.arange(n_states + 1), np.full(n_states + 1, s_t)),
        ),
        shape=(n_states + 1, n_states + 1),
    )
    new_transitions = SparseTransitions(
        base=base,
        row_action=np.concatenate(
            [transitions.row_action, np.full(n_states + 1, a_t)]
        ),
        row_state=np.concatenate(
            [transitions.row_state, np.arange(n_states + 1)]
        ),
        rows=sp.vstack(
            [
                _pad_csr(
                    transitions.rows,
                    (transitions.rows.shape[0], n_states + 1),
                ),
                terminate_rows,
            ]
        ).tocsr(),
        n_actions=n_actions + 1,
    )

    new_observations = SparseObservations(
        base=_append_uniform_row(observations.base, n_observations),
        overrides={
            **{
                action: _append_uniform_row(matrix, n_observations)
                for action, matrix in observations.overrides.items()
            },
            a_t: _uniform_observation_matrix(n_states + 1, n_observations),
        },
        n_actions=n_actions + 1,
    )

    term_rewards = termination_rewards(
        rate_rewards, operator_response_time, null_states
    )
    if isinstance(rewards, StructuredRewards):
        new_time_scale = np.append(rewards.time_scale, operator_response_time)
        new_fixed = np.append(rewards.fixed, 0.0)
        new_rate = np.append(rewards.rate, 0.0)
        override = _pad_csr(rewards.override, (n_actions + 1, n_states + 1))
        extra_rows, extra_cols, extra_data = [], [], []
        # Original actions must be exactly free in s_T; the rank-one part
        # gives -fixed[a] there (a negative zero when the fee is zero), so
        # every original action gets an explicit 0.0 pin.
        fee_actions = np.arange(n_actions)
        extra_rows.append(fee_actions)
        extra_cols.append(np.full(fee_actions.size, s_t))
        extra_data.append(np.zeros(fee_actions.size))
        # a_T must reproduce termination_rewards() bit-for-bit; pin every
        # state where t_op * rate differs from it (null states, and any
        # state whose structured rate is not the recovery rate).
        base_row = np.ascontiguousarray(operator_response_time * rewards.rate)
        mismatch = np.flatnonzero(
            base_row.view(np.int64)
            != np.ascontiguousarray(term_rewards).view(np.int64)
        )
        extra_rows.append(np.full(mismatch.size, a_t))
        extra_cols.append(mismatch)
        extra_data.append(term_rewards[mismatch])
        extra = sp.csr_matrix(
            (
                np.concatenate(extra_data),
                (np.concatenate(extra_rows), np.concatenate(extra_cols)),
            ),
            shape=override.shape,
        )
        ocoo = override.tocoo()
        ecoo = extra.tocoo()
        new_override = sp.csr_matrix(
            (
                np.concatenate([ocoo.data, ecoo.data]),
                (
                    np.concatenate([ocoo.row, ecoo.row]),
                    np.concatenate([ocoo.col, ecoo.col]),
                ),
            ),
            shape=override.shape,
        )
        new_rewards = StructuredRewards(
            time_scale=new_time_scale,
            rate=new_rate,
            fixed=new_fixed,
            override=new_override,
        )
    else:
        dense = np.asarray(rewards, dtype=float)
        new_rewards = np.zeros((n_actions + 1, n_states + 1))
        new_rewards[:n_actions, :n_states] = dense
        new_rewards[a_t, :n_states] = term_rewards
    return new_transitions, new_observations, new_rewards


def with_termination_action(
    pomdp: POMDP,
    null_states: np.ndarray,
    rate_rewards: np.ndarray,
    operator_response_time: float,
) -> tuple[POMDP, int, int]:
    """Figure 2(b): append the terminate state ``s_T`` and action ``a_T``.

    * ``s_T`` is absorbing under every action with zero reward;
    * ``a_T`` moves every state to ``s_T`` with probability one and reward
      ``r(s, a_T)`` from :func:`termination_rewards`;
    * observations in ``s_T`` are uniform (they are never informative —
      the controller has already stopped).

    Returns ``(augmented_pomdp, terminate_state_index, terminate_action_index)``.
    """
    terminate_state = pomdp.n_states
    terminate_action = pomdp.n_actions
    if pomdp.backend.is_sparse:
        transitions, observations, rewards = _termination_containers(
            pomdp.transitions,
            pomdp.observations,
            pomdp.rewards,
            null_states,
            rate_rewards,
            operator_response_time,
        )
    else:
        transitions, observations, rewards = termination_arrays(
            pomdp.transitions,
            pomdp.observations,
            pomdp.rewards,
            null_states,
            rate_rewards,
            operator_response_time,
        )

    augmented = POMDP(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        state_labels=pomdp.state_labels + (TERMINATE_LABEL,),
        action_labels=pomdp.action_labels + (TERMINATE_LABEL,),
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )
    return augmented, terminate_state, terminate_action


@dataclass(frozen=True)
class RecoveryModel:
    """A controller-ready recovery model.

    Attributes:
        pomdp: the augmented POMDP (see module docstring).
        null_states: mask over the augmented state space; True on ``S_phi``.
        rate_rewards: per-state cost rates ``rbar(s) <= 0`` (per second) on
            the augmented space (0 on ``s_T``).
        durations: per-action execution time ``t_a`` in seconds on the
            augmented action space (0 for ``a_T``).
        passive_actions: mask of purely observational actions (they never
            change the system state); used by the metrics layer to separate
            "monitor calls" from "recovery actions" in Table 1.
        recovery_notification: True when monitors reveal entry into
            ``S_phi`` (Figure 2(a) augmentation); False when the terminate
            pair was added (Figure 2(b)).
        terminate_state / terminate_action: indices of ``s_T`` / ``a_T``
            (None with recovery notification).
        operator_response_time: ``t_op`` used for the termination rewards
            (None with recovery notification).
    """

    pomdp: POMDP
    null_states: np.ndarray
    rate_rewards: np.ndarray
    durations: np.ndarray
    passive_actions: np.ndarray
    recovery_notification: bool
    terminate_state: int | None = None
    terminate_action: int | None = None
    operator_response_time: float | None = None
    fault_states: np.ndarray = field(init=False)

    def __post_init__(self):
        pomdp = self.pomdp
        null_states = np.asarray(self.null_states, dtype=bool)
        rate_rewards = np.asarray(self.rate_rewards, dtype=float)
        durations = np.asarray(self.durations, dtype=float)
        passive = np.asarray(self.passive_actions, dtype=bool)
        if null_states.shape != (pomdp.n_states,):
            raise ModelError("null_states mask has the wrong length")
        if rate_rewards.shape != (pomdp.n_states,):
            raise ModelError("rate_rewards has the wrong length")
        if np.any(rate_rewards > 1e-9):
            raise ModelError("rate_rewards must be non-positive cost rates")
        if durations.shape != (pomdp.n_actions,):
            raise ModelError("durations has the wrong length")
        if np.any(durations < 0):
            raise ModelError("durations must be non-negative")
        if passive.shape != (pomdp.n_actions,):
            raise ModelError("passive_actions mask has the wrong length")
        if self.recovery_notification:
            if self.terminate_action is not None or self.terminate_state is not None:
                raise ModelError(
                    "models with recovery notification have no terminate pair"
                )
        else:
            if self.terminate_action is None or self.terminate_state is None:
                raise ModelError(
                    "models without recovery notification need s_T and a_T"
                )
        exempt = None
        if self.terminate_state is not None:
            exempt = np.zeros(pomdp.n_states, dtype=bool)
            exempt[self.terminate_state] = True
        check_condition_1(pomdp, null_states, exempt_states=exempt)
        check_condition_2(pomdp)

        fault_states = ~null_states
        if self.terminate_state is not None:
            fault_states = fault_states.copy()
            fault_states[self.terminate_state] = False
        object.__setattr__(self, "null_states", null_states)
        object.__setattr__(self, "rate_rewards", rate_rewards)
        object.__setattr__(self, "durations", durations)
        object.__setattr__(self, "passive_actions", passive)
        object.__setattr__(self, "fault_states", fault_states)

    @property
    def recovery_actions(self) -> np.ndarray:
        """Mask of actions that actually repair state (not passive, not a_T)."""
        mask = ~self.passive_actions
        if self.terminate_action is not None:
            mask = mask.copy()
            mask[self.terminate_action] = False
        return mask

    def initial_belief(self) -> np.ndarray:
        """The paper's starting belief: all faults equally likely (Section 4)."""
        belief = np.zeros(self.pomdp.n_states)
        faults = self.fault_states
        belief[faults] = 1.0 / faults.sum()
        return belief

    def analyze(self) -> "AnalysisReport":
        """Full static-analysis report for this model.

        Unlike construction-time validation (which fails fast), this runs
        every analyzer pass and returns all findings; a constructed model
        has no ``R0xx`` errors by definition, so the interest is in the
        ``R1xx`` warnings and ``R2xx`` statistics.
        """
        from repro.analysis.passes import analyze

        return analyze(self)

    def is_recovered(self, state: int) -> bool:
        """True when ``state`` is a null-fault state."""
        return bool(self.null_states[state])

    def recovered_probability(self, belief: np.ndarray) -> float:
        """``P[s in S_phi]`` under ``belief`` (plus ``s_T``, if present).

        This is the quantity baseline controllers threshold on to decide
        termination (Section 5's termination probability).
        """
        probability = float(belief[self.null_states].sum())
        if self.terminate_state is not None:
            probability += float(belief[self.terminate_state])
        return probability


def convert_backend(model: RecoveryModel, backend: str = "sparse") -> RecoveryModel:
    """The same recovery model on a different storage backend.

    Conversion is lossless in both directions (``sparsify_rewards`` stores
    every entry as a bit-exact replacement override), so a converted model
    produces identical campaign fingerprints.  ``backend`` accepts
    ``"dense"``, ``"sparse"``, or ``"auto"`` (the PR 2 density heuristic).
    """
    pomdp = model.pomdp
    resolved = resolve_backend(
        backend,
        pomdp.n_states,
        density=transition_density(pomdp.transitions),
    )
    if resolved == pomdp.backend:
        return model
    if resolved.is_sparse:
        converted = POMDP(
            transitions=sparsify_transitions(pomdp.transitions),
            observations=sparsify_observations(pomdp.observations),
            rewards=sparsify_rewards(pomdp.rewards),
            state_labels=pomdp.state_labels,
            action_labels=pomdp.action_labels,
            observation_labels=pomdp.observation_labels,
            discount=pomdp.discount,
        )
    else:
        converted = POMDP(
            transitions=densify_transitions(pomdp.transitions),
            observations=densify_observations(pomdp.observations),
            rewards=densify_rewards(pomdp.rewards),
            state_labels=pomdp.state_labels,
            action_labels=pomdp.action_labels,
            observation_labels=pomdp.observation_labels,
            discount=pomdp.discount,
        )
    return RecoveryModel(
        pomdp=converted,
        null_states=model.null_states,
        rate_rewards=model.rate_rewards,
        durations=model.durations,
        passive_actions=model.passive_actions,
        recovery_notification=model.recovery_notification,
        terminate_state=model.terminate_state,
        terminate_action=model.terminate_action,
        operator_response_time=model.operator_response_time,
    )
