"""State classification for Markov chains.

The convergence arguments of Section 3.1 hinge on which states of the
RA-Bound chain are recurrent: Eq. 5 has a finite solution iff every action
originating in a recurrent state has zero reward.  This module computes the
recurrent/transient split from the chain's strongly-connected components.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

#: Probabilities below this are treated as structural zeros.
EDGE_EPSILON = 1e-12


@dataclass(frozen=True)
class ChainClassification:
    """Recurrent/transient structure of a finite Markov chain.

    Attributes:
        recurrent: boolean mask over states; ``True`` for states inside some
            closed (bottom) strongly-connected component.
        transient: boolean mask, the complement of ``recurrent``.
        absorbing: boolean mask of single-state closed classes with a
            self-loop probability of one.
        recurrent_classes: tuple of frozensets, one per closed SCC.
    """

    recurrent: np.ndarray
    transient: np.ndarray
    absorbing: np.ndarray
    recurrent_classes: tuple[frozenset, ...]


def classify_chain(chain: np.ndarray) -> ChainClassification:
    """Classify the states of a row-stochastic ``chain``.

    A strongly-connected component is *closed* (and hence recurrent in a
    finite chain) iff no edge leaves it.
    """
    chain = np.asarray(chain, dtype=float)
    n = chain.shape[0]
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(chain > EDGE_EPSILON)
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))

    recurrent = np.zeros(n, dtype=bool)
    recurrent_classes = []
    condensation = nx.condensation(graph)
    for node in condensation.nodes:
        if condensation.out_degree(node) == 0:
            members = condensation.nodes[node]["members"]
            recurrent_classes.append(frozenset(members))
            for s in members:
                recurrent[s] = True

    absorbing = np.array(
        [chain[s, s] >= 1.0 - EDGE_EPSILON for s in range(n)], dtype=bool
    )
    return ChainClassification(
        recurrent=recurrent,
        transient=~recurrent,
        absorbing=absorbing,
        recurrent_classes=tuple(recurrent_classes),
    )


def reachable_set(chain: np.ndarray, sources: np.ndarray) -> np.ndarray:
    """States reachable (in any number of steps) from the ``sources`` mask."""
    chain = np.asarray(chain, dtype=float)
    adjacency = chain > EDGE_EPSILON
    reached = np.asarray(sources, dtype=bool).copy()
    frontier = reached.copy()
    while frontier.any():
        successors = adjacency[frontier].any(axis=0)
        frontier = successors & ~reached
        reached |= successors
    return reached
