"""Crash-safe serialization for models and bound sets.

Section 4.3 positions the RA-Bound computation and much of the refinement
as *off-line* work; a production controller therefore needs to persist what
it computed — the model it was built for and the bound hyperplanes it has
accumulated — and reload them at startup.  Everything serialises to a
single ``.npz`` archive (arrays) with labels stored as fixed-width unicode
arrays, so an archive is self-contained and loadable without pickle.

**Format v2** stores sparse-backend models natively: the CSR component
arrays (``data`` / ``indices`` / ``indptr`` / ``shape``) of
:class:`~repro.linalg.containers.SparseTransitions` /
:class:`~repro.linalg.containers.SparseObservations` and the rank-one
components of :class:`~repro.linalg.containers.StructuredRewards` are
written as first-class archive entries, so a 300k-state model round-trips
bit-for-bit without ever densifying.  v1 archives (dense tensors only)
remain readable.

**Crash safety**: every save writes to a sibling temporary file and
``os.replace``-s it into place, so an interrupted write can never corrupt
a previously saved archive — the worst case is a leftover ``*.tmp`` file,
which interrupted saves clean up on any Python-level failure and which
:meth:`repro.experiments.store.ResultsStore.sweep_temp` removes after a
hard kill.

**Path normalization**: ``numpy.savez_compressed`` silently appends
``.npz`` to suffixless paths; the loaders here apply the same
normalization, so ``save_*(path)`` followed by ``load_*(path)`` round-trips
for any spelling of ``path``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import ModelError
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.model import POMDP
from repro.recovery.model import RecoveryModel

#: Archive format version; bumped on layout changes.  v2 adds native CSR
#: storage for sparse-backend models and is what every save produces.
FORMAT_VERSION = 2

#: Versions :func:`load_pomdp` / :func:`load_recovery_model` /
#: :func:`load_bound_set` accept.  v1 archives are dense-only and keep the
#: exact key layout this module wrote before v2.
READABLE_VERSIONS = (1, 2)

#: Suffix of in-flight temporary files (see :func:`_atomic_savez`).
TEMP_SUFFIX = ".tmp"

#: Schema tag of the certification sidecar (see :func:`certificate_path`).
CERT_SCHEMA = "repro-cert/v1"

#: Suffix appended to the archive path for the certification sidecar.
CERT_SUFFIX = ".cert.json"


def _labels_array(labels: tuple[str, ...]) -> np.ndarray:
    return np.array(list(labels), dtype=np.str_)


def _labels_tuple(array: np.ndarray) -> tuple[str, ...]:
    return tuple(str(label) for label in array)


def archive_path(path) -> Path:
    """``path`` with the ``.npz`` suffix ``numpy.savez`` would give it.

    Both the save and the load side normalise through this helper, fixing
    the historical asymmetry where ``save_pomdp("foo")`` silently wrote
    ``foo.npz`` but ``load_pomdp("foo")`` raised ``FileNotFoundError``.
    """
    path = Path(os.fspath(path))
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _atomic_savez(path, **arrays) -> Path:
    """``np.savez_compressed`` into ``path`` via a sibling temp file.

    The archive is fully written and fsynced under a temporary name in the
    target directory, then atomically renamed over ``path`` with
    ``os.replace``.  A crash mid-write therefore leaves any previous
    archive at ``path`` untouched; a Python-level interruption (including
    ``KeyboardInterrupt``) additionally removes the temp file.
    """
    target = archive_path(path)
    fd, temp_name = tempfile.mkstemp(
        dir=target.parent or Path("."),
        prefix=target.name + ".",
        suffix=TEMP_SUFFIX,
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            np.savez_compressed(stream, **arrays)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_name, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.remove(temp_name)
        raise
    return target


def _pack_csr(prefix: str, matrix: sp.csr_matrix) -> dict[str, np.ndarray]:
    """The CSR component arrays of ``matrix`` under dotted ``prefix`` keys."""
    return {
        f"{prefix}.data": matrix.data,
        f"{prefix}.indices": matrix.indices,
        f"{prefix}.indptr": matrix.indptr,
        f"{prefix}.shape": np.asarray(matrix.shape, dtype=np.int64),
    }


def _unpack_csr(archive, prefix: str) -> sp.csr_matrix:
    """Rebuild a CSR matrix from its packed component arrays.

    The components were written from a canonical matrix (sorted indices,
    no duplicates), so the rebuilt matrix is bit-identical to the saved
    one — container ``__post_init__`` re-canonicalisation is a no-op.
    """
    return sp.csr_matrix(
        (
            archive[f"{prefix}.data"],
            archive[f"{prefix}.indices"],
            archive[f"{prefix}.indptr"],
        ),
        shape=tuple(int(n) for n in archive[f"{prefix}.shape"]),
    )


def _pack_model_tensors(pomdp: POMDP) -> dict[str, np.ndarray]:
    """Backend-native archive entries for a POMDP's three tensors."""
    if not pomdp.backend.is_sparse:
        return {
            "backend": np.array("dense"),
            "transitions": np.asarray(pomdp.transitions),
            "observations": np.asarray(pomdp.observations),
            "rewards": np.asarray(pomdp.rewards),
        }
    transitions = pomdp.transitions
    observations = pomdp.observations
    rewards = pomdp.rewards
    assert isinstance(transitions, SparseTransitions)
    assert isinstance(observations, SparseObservations)
    assert isinstance(rewards, StructuredRewards)
    arrays: dict[str, np.ndarray] = {"backend": np.array("sparse")}
    arrays.update(_pack_csr("transitions.base", transitions.base))
    arrays["transitions.row_action"] = transitions.row_action
    arrays["transitions.row_state"] = transitions.row_state
    arrays.update(_pack_csr("transitions.rows", transitions.rows))
    arrays["transitions.n_actions"] = np.array(transitions.n_actions)
    arrays.update(_pack_csr("observations.base", observations.base))
    override_actions = sorted(observations.overrides)
    arrays["observations.override_actions"] = np.asarray(
        override_actions, dtype=np.int64
    )
    for action in override_actions:
        arrays.update(
            _pack_csr(
                f"observations.override{action}",
                observations.overrides[action],
            )
        )
    arrays["rewards.time_scale"] = rewards.time_scale
    arrays["rewards.rate"] = rewards.rate
    arrays["rewards.fixed"] = rewards.fixed
    arrays.update(_pack_csr("rewards.override", rewards.override))
    return arrays


def _unpack_model_tensors(archive):
    """The ``(transitions, observations, rewards)`` tensors of an archive.

    v1 archives carry no ``backend`` entry and are always dense.
    """
    backend = str(archive["backend"]) if "backend" in archive else "dense"
    if backend == "dense":
        return (
            archive["transitions"],
            archive["observations"],
            archive["rewards"],
        )
    if backend != "sparse":
        raise ModelError(f"archive names unknown backend {backend!r}")
    transitions = SparseTransitions(
        base=_unpack_csr(archive, "transitions.base"),
        row_action=archive["transitions.row_action"],
        row_state=archive["transitions.row_state"],
        rows=_unpack_csr(archive, "transitions.rows"),
        n_actions=int(archive["transitions.n_actions"]),
    )
    observations = SparseObservations(
        base=_unpack_csr(archive, "observations.base"),
        overrides={
            int(action): _unpack_csr(
                archive, f"observations.override{int(action)}"
            )
            for action in archive["observations.override_actions"]
        },
        n_actions=transitions.n_actions,
    )
    rewards = StructuredRewards(
        time_scale=archive["rewards.time_scale"],
        rate=archive["rewards.rate"],
        fixed=archive["rewards.fixed"],
        override=_unpack_csr(archive, "rewards.override"),
    )
    return transitions, observations, rewards


def save_pomdp(path, pomdp: POMDP) -> None:
    """Write ``pomdp`` to ``path`` as a ``.npz`` archive (atomically)."""
    _atomic_savez(
        path,
        kind=np.array("pomdp"),
        version=np.array(FORMAT_VERSION),
        state_labels=_labels_array(pomdp.state_labels),
        action_labels=_labels_array(pomdp.action_labels),
        observation_labels=_labels_array(pomdp.observation_labels),
        discount=np.array(pomdp.discount),
        **_pack_model_tensors(pomdp),
    )


def _check_kind(archive, expected: str, path) -> None:
    kind = str(archive.get("kind", ""))
    if kind != expected:
        raise ModelError(
            f"{path} holds a {kind or 'unknown'} archive, expected {expected}"
        )
    version = int(archive.get("version", -1))
    if version not in READABLE_VERSIONS:
        raise ModelError(
            f"{path} uses archive format {version}, this build reads "
            f"{sorted(READABLE_VERSIONS)}"
        )


def load_pomdp(path) -> POMDP:
    """Read a POMDP previously written by :func:`save_pomdp`."""
    with np.load(archive_path(path), allow_pickle=False) as archive:
        _check_kind(archive, "pomdp", path)
        transitions, observations, rewards = _unpack_model_tensors(archive)
        return POMDP(
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            state_labels=_labels_tuple(archive["state_labels"]),
            action_labels=_labels_tuple(archive["action_labels"]),
            observation_labels=_labels_tuple(archive["observation_labels"]),
            discount=float(archive["discount"]),
        )


def save_recovery_model(path, model: RecoveryModel) -> None:
    """Write a recovery model (augmented POMDP + recovery metadata)."""
    optional = {}
    if model.terminate_state is not None:
        optional["terminate_state"] = np.array(model.terminate_state)
        optional["terminate_action"] = np.array(model.terminate_action)
        optional["operator_response_time"] = np.array(
            model.operator_response_time
        )
    _atomic_savez(
        path,
        kind=np.array("recovery-model"),
        version=np.array(FORMAT_VERSION),
        state_labels=_labels_array(model.pomdp.state_labels),
        action_labels=_labels_array(model.pomdp.action_labels),
        observation_labels=_labels_array(model.pomdp.observation_labels),
        discount=np.array(model.pomdp.discount),
        null_states=model.null_states,
        rate_rewards=model.rate_rewards,
        durations=model.durations,
        passive_actions=model.passive_actions,
        recovery_notification=np.array(model.recovery_notification),
        **_pack_model_tensors(model.pomdp),
        **optional,
    )


def load_recovery_model(path) -> RecoveryModel:
    """Read a recovery model previously written by :func:`save_recovery_model`."""
    with np.load(archive_path(path), allow_pickle=False) as archive:
        _check_kind(archive, "recovery-model", path)
        transitions, observations, rewards = _unpack_model_tensors(archive)
        pomdp = POMDP(
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            state_labels=_labels_tuple(archive["state_labels"]),
            action_labels=_labels_tuple(archive["action_labels"]),
            observation_labels=_labels_tuple(archive["observation_labels"]),
            discount=float(archive["discount"]),
        )
        has_terminate = "terminate_state" in archive
        return RecoveryModel(
            pomdp=pomdp,
            null_states=archive["null_states"],
            rate_rewards=archive["rate_rewards"],
            durations=archive["durations"],
            passive_actions=archive["passive_actions"],
            recovery_notification=bool(archive["recovery_notification"]),
            terminate_state=(
                int(archive["terminate_state"]) if has_terminate else None
            ),
            terminate_action=(
                int(archive["terminate_action"]) if has_terminate else None
            ),
            operator_response_time=(
                float(archive["operator_response_time"])
                if has_terminate
                else None
            ),
        )


def save_bound_set(path, bound_set: BoundVectorSet) -> None:
    """Persist a refined bound set (the off-line artefact of Section 4.3)."""
    _atomic_savez(
        path,
        kind=np.array("bound-set"),
        version=np.array(FORMAT_VERSION),
        vectors=bound_set.vectors,
        usage=bound_set._usage,
        pinned=np.array(bound_set._pinned),
        max_vectors=np.array(
            -1 if bound_set.max_vectors is None else bound_set.max_vectors
        ),
    )


def certificate_path(path) -> Path:
    """The sidecar recording an archive's last clean R3xx certification."""
    target = archive_path(path)
    return target.with_name(target.name + CERT_SUFFIX)


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for block in iter(lambda: stream.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def model_fingerprint(model) -> str | None:
    """SHA-256 content digest of a model's tensors, labels, and discount.

    Accepts a :class:`~repro.recovery.model.RecoveryModel` or
    :class:`~repro.pomdp.model.POMDP`; anything else (e.g. a prepared
    :class:`~repro.analysis.view.ModelView`, which may hold derived
    matrices rather than the originals) returns ``None``, meaning "no
    stable fingerprint" — callers must then fall back to certifying.
    """
    pomdp = getattr(model, "pomdp", model)
    if not isinstance(pomdp, POMDP):
        return None
    digest = hashlib.sha256()
    arrays = _pack_model_tensors(pomdp)
    for key in sorted(arrays):
        value = np.asarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(value.dtype).encode())
        digest.update(repr(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    for label in (
        *pomdp.state_labels,
        *pomdp.action_labels,
        *pomdp.observation_labels,
    ):
        digest.update(label.encode())
        digest.update(b"\x00")
    digest.update(repr(float(pomdp.discount)).encode())
    return digest.hexdigest()


def _read_certificate(cert_file: Path) -> dict | None:
    try:
        with open(cert_file, encoding="utf-8") as stream:
            record = json.load(stream)
    except (OSError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def _write_certificate(cert_file: Path, record: dict) -> None:
    """Atomically persist the sidecar; failure to cache never fails the load."""
    with contextlib.suppress(OSError):
        fd, temp_name = tempfile.mkstemp(
            dir=cert_file.parent or Path("."),
            prefix=cert_file.name + ".",
            suffix=TEMP_SUFFIX,
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(record, stream, sort_keys=True)
                stream.write("\n")
            os.replace(temp_name, cert_file)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(temp_name)
            raise


def _certify_loaded(
    target: Path, path, model, bound_set: BoundVectorSet, recertify: bool
) -> None:
    """Certify a freshly loaded bound set, memoised by content digests.

    The full R3xx sweep (a Bellman-backup envelope over every vector) is
    exactly the cost warm restarts are supposed to avoid, so a clean pass
    is recorded in a sidecar keyed by the SHA-256 of the archive *file*
    and of the model's packed tensors.  A later load of the same archive
    against the same model skips straight through; any change to either —
    a re-saved archive, a different model — misses the cache and pays the
    sweep again.  Models without a stable fingerprint (prepared views)
    always certify.
    """
    telemetry = telemetry_active()
    model_digest = model_fingerprint(model)
    cert_file = certificate_path(target)
    archive_digest = _file_sha256(target)
    if not recertify and model_digest is not None:
        cached = _read_certificate(cert_file)
        if (
            cached is not None
            and cached.get("schema") == CERT_SCHEMA
            and cached.get("archive_sha256") == archive_digest
            and cached.get("model_sha256") == model_digest
        ):
            if telemetry is not None:
                telemetry.count_process("io.certify_skipped")
            return
    from repro.analysis.certify import certify_bound_set

    certify_bound_set(
        model, bound_set, title=f"bound-set certificate for {path}"
    ).raise_if_errors()
    if telemetry is not None:
        telemetry.count_process("io.certify_runs")
    if model_digest is not None:
        _write_certificate(
            cert_file,
            {
                "schema": CERT_SCHEMA,
                "archive_sha256": archive_digest,
                "model_sha256": model_digest,
                "vectors": int(bound_set.vectors.shape[0]),
            },
        )


def load_bound_set(path, model=None, recertify: bool = False) -> BoundVectorSet:
    """Reload a bound set; usage counters and pinning survive the round trip.

    When ``model`` is given (a RecoveryModel, POMDP, or prepared
    :class:`~repro.analysis.view.ModelView`), the loaded set is certified
    against it with the R3xx bound-soundness passes
    (:func:`repro.analysis.certify.certify_bound_set`) before being
    returned; a stale or corrupted archive — wrong dimension, non-finite
    entries, vectors above the Bellman backup of the set's envelope, or
    positive mass on pinned zero-value states — raises
    :class:`~repro.exceptions.AnalysisError` instead of silently steering
    the controller with an unsound bound.

    A clean certification is memoised in a ``.cert.json`` sidecar next to
    the archive, keyed by content digests of the archive and the model, so
    repeated loads of an unchanged pair — a service warm-restarting from
    its checkpoint — skip the Bellman-envelope sweep.  Pass
    ``recertify=True`` to force the sweep regardless of the sidecar (it
    re-records the sidecar on success).
    """
    target = archive_path(path)
    with np.load(target, allow_pickle=False) as archive:
        _check_kind(archive, "bound-set", path)
        max_vectors = int(archive["max_vectors"])
        bound_set = BoundVectorSet(
            archive["vectors"],
            max_vectors=None if max_vectors < 0 else max_vectors,
        )
        bound_set._usage = archive["usage"].copy()
        bound_set._pinned = int(archive["pinned"])
    if model is not None:
        _certify_loaded(target, path, model, bound_set, recertify)
    return bound_set
