"""Tests for value iteration, policy iteration, and policy evaluation."""

import numpy as np
import pytest

from repro.exceptions import DivergenceError
from repro.mdp.model import MDP
from repro.mdp.policy import Policy, evaluate_policy, greedy_policy
from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.value_iteration import value_iteration


def recovery_mdp() -> MDP:
    """Fully observable Figure 1(a): fault(a), fault(b), null (absorbing).

    restart(x) repairs fault(x) at cost 0.5, costs 1.0 in the other fault,
    0.5 in null; null is made absorbing and free (Figure 2(a) treatment).
    """
    # states: fault(a)=0, fault(b)=1, null=2
    transitions = np.array(
        [
            # restart(a)
            [[0.0, 0.0, 1.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            # restart(b)
            [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 1.0]],
            # observe
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        ]
    )
    rewards = np.array(
        [
            [-0.5, -1.0, 0.0],
            [-1.0, -0.5, 0.0],
            [-0.5, -0.5, 0.0],
        ]
    )
    return MDP(
        transitions=transitions,
        rewards=rewards,
        state_labels=("fault(a)", "fault(b)", "null"),
        action_labels=("restart(a)", "restart(b)", "observe"),
    )


class TestValueIteration:
    def test_undiscounted_recovery_value(self):
        solution = value_iteration(recovery_mdp())
        # With full observability the right restart fixes each fault at 0.5.
        assert np.allclose(solution.value, [-0.5, -0.5, 0.0], atol=1e-8)
        assert solution.policy[0] == 0
        assert solution.policy[1] == 1

    def test_gauss_seidel_matches_jacobi_sweeps(self):
        plain = value_iteration(recovery_mdp())
        in_place = value_iteration(recovery_mdp(), gauss_seidel=True)
        assert np.allclose(plain.value, in_place.value, atol=1e-8)
        assert in_place.iterations <= plain.iterations

    def test_discounted_value(self):
        mdp = recovery_mdp().with_discount(0.9)
        solution = value_iteration(mdp)
        assert np.allclose(solution.value, [-0.5, -0.5, 0.0], atol=1e-8)

    def test_minimize_diverges_on_undiscounted_recovery(self):
        # The worst action never repairs and accrues cost forever.
        with pytest.raises(DivergenceError):
            value_iteration(recovery_mdp(), minimize=True)

    def test_minimize_converges_when_discounted(self):
        mdp = recovery_mdp().with_discount(0.5)
        solution = value_iteration(mdp, minimize=True)
        # Worst-case from fault(a): pay 1.0 forever discounted = -2.0.
        assert np.allclose(solution.value[0], -2.0, atol=1e-8)

    def test_initial_value_honoured(self):
        solution = value_iteration(
            recovery_mdp(), initial_value=np.array([-0.5, -0.5, 0.0])
        )
        assert solution.iterations <= 2


class TestPolicyEvaluation:
    def test_optimal_policy_value(self):
        mdp = recovery_mdp()
        value = evaluate_policy(mdp, Policy(actions=np.array([0, 1, 2])))
        assert np.allclose(value, [-0.5, -0.5, 0.0], atol=1e-10)

    def test_bad_policy_diverges(self):
        mdp = recovery_mdp()
        # restart(b) everywhere never repairs fault(a).
        with pytest.raises(DivergenceError):
            evaluate_policy(mdp, Policy(actions=np.array([1, 1, 1])))

    def test_greedy_policy_from_optimal_value(self):
        mdp = recovery_mdp()
        policy = greedy_policy(mdp, np.array([-0.5, -0.5, 0.0]))
        assert policy[0] == 0
        assert policy[1] == 1


class TestPolicyIteration:
    def test_matches_value_iteration(self):
        vi = value_iteration(recovery_mdp())
        pi = policy_iteration(recovery_mdp())
        assert np.allclose(vi.value, pi.value, atol=1e-8)
        assert np.array_equal(
            vi.policy.actions[:2], pi.policy.actions[:2]
        )  # null state action is arbitrary

    def test_discounted_matches_value_iteration(self):
        mdp = recovery_mdp().with_discount(0.8)
        vi = value_iteration(mdp)
        pi = policy_iteration(mdp)
        assert np.allclose(vi.value, pi.value, atol=1e-8)

    def test_accepts_explicit_initial_policy(self):
        solution = policy_iteration(
            recovery_mdp(), initial_policy=np.array([0, 1, 2])
        )
        assert np.allclose(solution.value, [-0.5, -0.5, 0.0], atol=1e-8)


class TestPolicyType:
    def test_describe_uses_labels(self):
        mdp = recovery_mdp()
        policy = Policy(actions=np.array([0, 1, 2]), action_labels=mdp.action_labels)
        text = policy.describe(mdp.state_labels)
        assert "fault(a) -> restart(a)" in text

    def test_len_and_getitem(self):
        policy = Policy(actions=np.array([2, 0]))
        assert len(policy) == 2
        assert policy[0] == 2

    def test_label_without_names(self):
        policy = Policy(actions=np.array([1]))
        assert policy.label(0) == "a1"
