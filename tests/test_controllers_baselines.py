"""Tests for the most-likely, oracle, random, and heuristic controllers."""

import numpy as np
import pytest

from repro.controllers.heuristic import HeuristicController, HeuristicLeaf
from repro.controllers.most_likely import (
    MostLikelyController,
    cheapest_fixing_actions,
)
from repro.controllers.oracle import OracleController
from repro.controllers.random_controller import RandomController
from repro.exceptions import ControllerError
from repro.sim.campaign import run_campaign, run_episode
from repro.sim.environment import RecoveryEnvironment


class TestCheapestFixingActions:
    def test_simple_model_mapping(self, simple_system):
        mapping = cheapest_fixing_actions(simple_system.model)
        pomdp = simple_system.model.pomdp
        assert mapping[simple_system.fault_a] == pomdp.action_index("restart(a)")
        assert mapping[simple_system.fault_b] == pomdp.action_index("restart(b)")

    def test_emn_prefers_restart_over_reboot(self, emn_system):
        """Restart fixes a zombie as surely as a reboot but cheaper."""
        mapping = cheapest_fixing_actions(emn_system.model)
        pomdp = emn_system.model.pomdp
        zombie_s1 = pomdp.state_index("zombie(S1)")
        assert mapping[zombie_s1] == pomdp.action_index("restart(S1)")
        host_crash = pomdp.state_index("host_crash(hostA)")
        assert mapping[host_crash] == pomdp.action_index("reboot(hostA)")


class TestMostLikely:
    def test_acts_on_belief_mode(self, simple_system):
        controller = MostLikelyController(simple_system.model)
        pomdp = simple_system.model.pomdp
        n = pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.fault_b] = 0.7
        belief[simple_system.fault_a] = 0.3
        controller.reset(initial_belief=belief)
        decision = controller.decide()
        assert decision.action == pomdp.action_index("restart(b)")

    def test_terminates_at_threshold(self, simple_system):
        controller = MostLikelyController(
            simple_system.model, termination_probability=0.9
        )
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.null_state] = 0.95
        belief[simple_system.fault_a] = 0.05
        controller.reset(initial_belief=belief)
        assert controller.decide().is_terminate

    def test_invalid_threshold_rejected(self, simple_system):
        with pytest.raises(ValueError):
            MostLikelyController(simple_system.model, termination_probability=0.0)

    def test_recovers_all_faults(self, simple_system):
        controller = MostLikelyController(
            simple_system.model, termination_probability=0.999
        )
        result = run_campaign(
            controller,
            fault_states=np.array(
                [simple_system.fault_a, simple_system.fault_b]
            ),
            injections=40,
            seed=5,
        )
        assert result.summary.unrecovered == 0
        assert result.summary.early_terminations == 0


class TestOracle:
    def test_requires_true_state(self, simple_system):
        controller = OracleController(simple_system.model)
        controller.reset()
        with pytest.raises(ControllerError, match="true state"):
            controller.decide()

    def test_fixes_known_fault_in_one_action(self, simple_system):
        controller = OracleController(simple_system.model)
        environment = RecoveryEnvironment(simple_system.model, seed=0)
        metrics = run_episode(controller, environment, simple_system.fault_b)
        assert metrics.actions == 1
        assert metrics.recovered

    def test_terminates_immediately_when_recovered(self, simple_system):
        controller = OracleController(simple_system.model)
        controller.reset()
        controller.sync_true_state(simple_system.null_state)
        assert controller.decide().is_terminate


class TestRandomController:
    def test_draws_cover_action_space(self, simple_system):
        controller = RandomController(simple_system.model, seed=0)
        controller.reset()
        seen = set()
        for _ in range(200):
            decision = controller.decide()
            seen.add(decision.action)
            if decision.is_terminate:
                controller.reset()
        assert seen == set(range(simple_system.model.pomdp.n_actions))

    def test_terminate_action_ends_episode(self, simple_system):
        controller = RandomController(simple_system.model, seed=0)
        controller.reset()
        a_t = simple_system.model.terminate_action
        while True:
            decision = controller.decide()
            if decision.action == a_t:
                assert decision.is_terminate
                break
            controller.reset() if decision.is_terminate else None
        assert controller.done

    def test_restricted_draw_excludes_passive_and_terminate(self, simple_system):
        controller = RandomController(
            simple_system.model, include_all_actions=False, seed=1
        )
        controller.reset()
        recovery = set(np.flatnonzero(simple_system.model.recovery_actions))
        for _ in range(100):
            decision = controller.decide()
            if decision.is_terminate:
                controller.reset()
                continue
            assert decision.action in recovery


class TestHeuristicLeaf:
    def test_value_formula(self, simple_system):
        leaf = HeuristicLeaf(simple_system.model)
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.fault_a] = 1.0
        # Most expensive recovery action: the wrong restart at cost 1.
        assert np.isclose(leaf.value(belief), -1.0)
        belief = np.zeros(n)
        belief[simple_system.null_state] = 1.0
        assert leaf.value(belief) == 0.0

    def test_literal_max_variant_is_zero(self, simple_system):
        """The formula's literal max over r(s,a) is 0 for recovery models
        (e.g. observe in null) — documenting why the prose reading is the
        default."""
        leaf = HeuristicLeaf(simple_system.model, literal_max=True)
        n = simple_system.model.pomdp.n_states
        belief = np.full(n, 1.0 / n)
        assert leaf.value(belief) == 0.0

    def test_batch_matches_scalar(self, simple_system):
        leaf = HeuristicLeaf(simple_system.model)
        rng = np.random.default_rng(0)
        beliefs = rng.dirichlet(
            np.ones(simple_system.model.pomdp.n_states), size=8
        )
        assert np.allclose(
            leaf.value_batch(beliefs), [leaf.value(b) for b in beliefs]
        )


class TestHeuristicController:
    def test_never_chooses_terminate_action(self, simple_system):
        controller = HeuristicController(simple_system.model, depth=1)
        controller.reset()
        a_t = simple_system.model.terminate_action
        for _ in range(10):
            decision = controller.decide()
            if decision.is_terminate:
                break
            assert decision.action != a_t

    def test_recovers_and_terminates(self, simple_system):
        # 0.999 rather than 0.99: with a looser threshold the heuristic can
        # legitimately quit while the fault is live (~1% of episodes), which
        # would make this assertion seed-dependent.
        controller = HeuristicController(
            simple_system.model, depth=1, termination_probability=0.999
        )
        result = run_campaign(
            controller,
            fault_states=np.array(
                [simple_system.fault_a, simple_system.fault_b]
            ),
            injections=30,
            seed=9,
        )
        assert result.summary.unrecovered == 0

    def test_invalid_parameters_rejected(self, simple_system):
        with pytest.raises(ValueError):
            HeuristicController(simple_system.model, depth=0)
        with pytest.raises(ValueError):
            HeuristicController(
                simple_system.model, termination_probability=1.5
            )
