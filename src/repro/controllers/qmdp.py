"""QMDP baseline policy.

A classic POMDP heuristic (Littman et al.) added as an extra baseline: act
greedily with respect to the *fully observable* Q-values,
``argmax_a pi . Q_m(., a)``.  QMDP assumes all uncertainty resolves for
free after one step, which produces a characteristic pathology on recovery
models: at a belief split across faults, observing scores
``pi . Q(., observe)`` — the cheap action under the
everything-will-be-revealed assumption — so when the observation function
*cannot* actually resolve the split (the EMN model's zombie(S1)/zombie(S2)
pair is observationally identical), the controller procrastinates
indefinitely, racking up monitor calls without ever committing to a
restart.  Belief-space lookahead does not share the pathology because it
evaluates what observations really reveal.  Keeping QMDP in the controller
zoo makes that argument measurable (see
``tests/test_controllers_qmdp.py::test_procrastinates_on_unresolvable_ambiguity``).

Termination uses the recovered-probability threshold, like the other
baselines without bound-based termination semantics.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.upper import QMDPBound
from repro.controllers.base import RecoveryController
from repro.controllers.engine import Decision, PolicyEngine, RecoverySession
from repro.recovery.model import RecoveryModel


class QMDPPolicyEngine(PolicyEngine):
    """Greedy in the fully-observable Q-values.

    Args:
        model: the recovery model.
        termination_probability: recovered-probability threshold at which
            recovery stops.
        allow_terminate_action: let the policy pick ``a_T`` when the
            Q-values favour it (the default); when False, ``a_T`` is masked
            and only the threshold ends recovery.
    """

    def __init__(
        self,
        model: RecoveryModel,
        termination_probability: float = 0.9999,
        allow_terminate_action: bool = True,
        preflight: bool = False,
    ):
        super().__init__(model, preflight=preflight)
        if not 0.0 < termination_probability <= 1.0:
            raise ValueError(
                "termination_probability must be in (0, 1], got "
                f"{termination_probability}"
            )
        self.termination_probability = termination_probability
        self.q_values = QMDPBound(model.pomdp).q_values  # (|A|, |S|)
        self._allowed = np.ones(model.pomdp.n_actions, dtype=bool)
        if not allow_terminate_action and model.terminate_action is not None:
            self._allowed[model.terminate_action] = False
        self.name = "qmdp"

    def decide(self, session: RecoverySession) -> Decision:
        belief = session.belief_view()
        recovered = self.model.recovered_probability(belief)
        if recovered >= self.termination_probability:
            return self.terminate_decision()
        scores = self.q_values @ belief
        scores[~self._allowed] = -np.inf
        action = int(np.argmax(scores))
        return Decision(
            action=action,
            is_terminate=action == self.model.terminate_action,
            value=float(scores[action]),
        )


class QMDPController(RecoveryController):
    """Campaign-facing adapter over a :class:`QMDPPolicyEngine`."""

    def __init__(
        self,
        model: RecoveryModel,
        termination_probability: float = 0.9999,
        allow_terminate_action: bool = True,
        preflight: bool = False,
    ):
        super().__init__(
            engine=QMDPPolicyEngine(
                model,
                termination_probability=termination_probability,
                allow_terminate_action=allow_terminate_action,
                preflight=preflight,
            )
        )

    @property
    def termination_probability(self) -> float:
        return self.engine.termination_probability

    @property
    def q_values(self) -> np.ndarray:
        return self.engine.q_values
