"""Linear-system solvers for Markov reward chains.

The RA-Bound (Eq. 5) reduces to the linear system ``v = r + beta * P v`` for
the uniform-random chain.  Section 3.1 of the paper solves it with
"Gauss-Seidel iterations with successive over-relaxation"; this module
provides that solver plus a Jacobi iteration and a direct sparse solve, all
verified against each other in the test suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import DivergenceError, NotConvergedError

#: Value magnitude past which an undiscounted iteration is declared divergent.
DIVERGENCE_THRESHOLD = 1e12

#: Sweeps between residual-stagnation checks.  A linearly diverging
#: iteration (constant per-sweep decrement, e.g. a recurrent state accruing
#: cost forever) keeps a constant residual, while any convergent iteration
#: shrinks it; comparing residuals one window apart separates the two long
#: before the magnitude threshold trips.
STAGNATION_WINDOW = 1_000
STAGNATION_RATIO = 0.99


def _check_stagnation(
    residual: float, checkpoint: float, values_growing: bool, context: str
) -> None:
    if values_growing and residual > 0 and residual >= STAGNATION_RATIO * checkpoint:
        raise DivergenceError(
            f"{context}: residual stalled at {residual:.3g} over "
            f"{STAGNATION_WINDOW} sweeps while values keep growing — the "
            "iteration diverges linearly (a recurrent state accrues reward; "
            "see Section 3.1 conditions)"
        )


def gauss_seidel(
    chain: np.ndarray,
    reward: np.ndarray,
    discount: float = 1.0,
    omega: float = 1.0,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Solve ``v = r + discount * P v`` by Gauss-Seidel with SOR.

    Args:
        chain: row-stochastic transition matrix ``P`` of shape ``(n, n)``.
        reward: expected single-step reward vector ``r`` of shape ``(n,)``.
        discount: the factor ``beta``; 1.0 for the paper's undiscounted
            criterion.
        omega: SOR relaxation factor in ``(0, 2)``; 1.0 is plain
            Gauss-Seidel, values above 1 over-relax ("successive
            over-relaxation", as used by the paper's implementation).
        tol: sup-norm change below which the iteration stops.
        max_iterations: iteration budget.

    Raises:
        DivergenceError: if iterates blow past :data:`DIVERGENCE_THRESHOLD`
            (the chain accumulates unbounded reward, e.g. a recurrent state
            with non-zero reward in an undiscounted model).
        NotConvergedError: if the budget is exhausted first.
    """
    if not 0.0 < omega < 2.0:
        raise ValueError(f"omega must be in (0, 2), got {omega}")
    chain = np.asarray(chain, dtype=float)
    reward = np.asarray(reward, dtype=float)
    n = reward.shape[0]
    value = np.zeros(n)
    checkpoint_residual = np.inf
    checkpoint_norm = 0.0
    for iteration in range(max_iterations):
        delta = 0.0
        for s in range(n):
            # The self-loop term is moved to the left-hand side so states
            # with high self-transition probability converge in one sweep.
            row = chain[s]
            diagonal = discount * row[s]
            others = discount * (row @ value) - diagonal * value[s]
            if diagonal >= 1.0:
                # Absorbing state with discount 1: value is determined by its
                # own reward stream; finite only when the reward is zero.
                if abs(reward[s]) > 0.0:
                    raise DivergenceError(
                        f"state {s} is absorbing with non-zero reward "
                        f"{reward[s]:.3g}; undiscounted value is infinite"
                    )
                updated = 0.0
            else:
                updated = (reward[s] + others) / (1.0 - diagonal)
            updated = value[s] + omega * (updated - value[s])
            delta = max(delta, abs(updated - value[s]))
            value[s] = updated
        if not np.all(np.isfinite(value)) or np.max(np.abs(value)) > DIVERGENCE_THRESHOLD:
            raise DivergenceError(
                "Gauss-Seidel iterates diverged; the chain has recurrent "
                "reward-accruing states (see Section 3.1 conditions)"
            )
        if delta < tol:
            return value
        if (iteration + 1) % STAGNATION_WINDOW == 0:
            norm = float(np.max(np.abs(value)))
            _check_stagnation(
                delta, checkpoint_residual, norm > checkpoint_norm, "Gauss-Seidel"
            )
            checkpoint_residual = delta
            checkpoint_norm = norm
    raise NotConvergedError(
        f"Gauss-Seidel did not reach tol={tol} in {max_iterations} iterations",
        iterations=max_iterations,
        residual=delta,
    )


def jacobi(
    chain: np.ndarray,
    reward: np.ndarray,
    discount: float = 1.0,
    tol: float = 1e-10,
    max_iterations: int = 200_000,
) -> np.ndarray:
    """Solve ``v = r + discount * P v`` by Jacobi (simultaneous) iteration.

    Kept as an independently-implemented cross-check for
    :func:`gauss_seidel`; the test suite asserts the two agree.
    """
    chain = np.asarray(chain, dtype=float)
    reward = np.asarray(reward, dtype=float)
    value = np.zeros_like(reward)
    checkpoint_residual = np.inf
    checkpoint_norm = 0.0
    for iteration in range(max_iterations):
        updated = reward + discount * (chain @ value)
        if not np.all(np.isfinite(updated)) or np.max(np.abs(updated)) > DIVERGENCE_THRESHOLD:
            raise DivergenceError("Jacobi iterates diverged")
        residual = float(np.max(np.abs(updated - value)))
        if residual < tol:
            return updated
        value = updated
        if (iteration + 1) % STAGNATION_WINDOW == 0:
            norm = float(np.max(np.abs(value)))
            _check_stagnation(
                residual, checkpoint_residual, norm > checkpoint_norm, "Jacobi"
            )
            checkpoint_residual = residual
            checkpoint_norm = norm
    raise NotConvergedError(
        f"Jacobi did not reach tol={tol} in {max_iterations} iterations",
        iterations=max_iterations,
        residual=residual,
    )


def solve_direct(
    chain: np.ndarray,
    reward: np.ndarray,
    discount: float = 1.0,
    transient_states: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``(I - discount * P) v = r`` with a direct sparse factorisation.

    For an undiscounted chain, ``I - P`` is singular whenever the chain has a
    recurrent class, so the caller must restrict the solve to the transient
    states (whose sub-matrix is non-singular) and pin recurrent states to
    zero — exactly the structure the paper's model modifications guarantee
    (recurrent states are zero-reward absorbing states).  Pass
    ``transient_states`` as a boolean mask to do that; with ``None`` the full
    system is solved (valid for ``discount < 1``).
    """
    chain = np.asarray(chain, dtype=float)
    reward = np.asarray(reward, dtype=float)
    n = reward.shape[0]
    if transient_states is None:
        matrix = sp.eye(n, format="csc") - discount * sp.csc_matrix(chain)
        return spla.spsolve(matrix, reward)
    mask = np.asarray(transient_states, dtype=bool)
    value = np.zeros(n)
    if not mask.any():
        return value
    sub_chain = chain[np.ix_(mask, mask)]
    size = int(mask.sum())
    matrix = sp.eye(size, format="csc") - discount * sp.csc_matrix(sub_chain)
    value[mask] = spla.spsolve(matrix, reward[mask])
    return value


def solve_markov_reward(
    chain: np.ndarray,
    reward: np.ndarray,
    discount: float = 1.0,
    method: str = "gauss-seidel",
    omega: float = 1.05,
    tol: float = 1e-10,
    transient_states: np.ndarray | None = None,
) -> np.ndarray:
    """Front door for expected-accumulated-reward solves.

    ``method`` selects between ``"gauss-seidel"`` (the paper's choice, with
    mild over-relaxation by default), ``"jacobi"``, and ``"direct"``.
    """
    if method == "gauss-seidel":
        return gauss_seidel(chain, reward, discount=discount, omega=omega, tol=tol)
    if method == "jacobi":
        return jacobi(chain, reward, discount=discount, tol=tol)
    if method == "direct":
        return solve_direct(
            chain, reward, discount=discount, transient_states=transient_states
        )
    raise ValueError(f"unknown method {method!r}")
