"""Component and path monitors (Figure 4's HGMon, HPathMon, etc.).

Two monitor families, matching Section 5:

* **Component monitors** ping one component.  They locate crash faults
  precisely but have low coverage: a zombie answers pings, so they miss it
  entirely.
* **Path monitors** issue a synthetic end-to-end request and check the
  response.  They catch zombies (high coverage) but localise poorly: the
  probe is load-balanced like real traffic, so a single zombie EMN server
  fails an HTTP-path probe only with probability 1/2, and the same alarm is
  raised by several different faults.

A monitor reading is binary (alarm / clear); the POMDP observation space is
the joint outcome vector of all monitors, and — monitors being independent
given the system state — ``q(o|s)`` is a product of per-monitor Bernoullis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.systems.components import Deployment
from repro.systems.faults import Fault, ping_dead_components, unavailable_components
from repro.systems.workload import RequestPath


def _check_rates(coverage: float, false_positive_rate: float, name: str) -> None:
    if not 0.0 <= coverage <= 1.0:
        raise ModelError(f"monitor {name!r} coverage must be in [0, 1]")
    if not 0.0 <= false_positive_rate <= 1.0:
        raise ModelError(f"monitor {name!r} false-positive rate must be in [0, 1]")


@dataclass(frozen=True)
class ComponentMonitor:
    """Ping monitor for one component.

    Attributes:
        name: monitor name (e.g. ``"HGMon"``).
        component: the component it pings.
        coverage: probability an actually ping-dead component raises the
            alarm (1.0 = perfect crash detection).
        false_positive_rate: probability of an alarm on a healthy component.
    """

    name: str
    component: str
    coverage: float = 1.0
    false_positive_rate: float = 0.0

    def __post_init__(self):
        _check_rates(self.coverage, self.false_positive_rate, self.name)

    def alarm_probability(self, fault: Fault | None, deployment: Deployment) -> float:
        """P[this monitor alarms | fault] — zombies never trip pings."""
        dead = ping_dead_components(fault, deployment)
        if self.component in dead:
            return self.coverage
        return self.false_positive_rate


@dataclass(frozen=True)
class PathMonitor:
    """End-to-end probe monitor for one request class.

    Attributes:
        name: monitor name (e.g. ``"HPathMon"``).
        path: the request path probes follow (load-balanced exactly like
            real traffic — the source of the "routed around the zombie"
            diagnostic ambiguity).
        coverage: probability a genuinely failing probe is reported.
        false_positive_rate: probability of reporting failure when the
            probe actually succeeded.
    """

    name: str
    path: RequestPath
    coverage: float = 1.0
    false_positive_rate: float = 0.0

    def __post_init__(self):
        _check_rates(self.coverage, self.false_positive_rate, self.name)

    def alarm_probability(self, fault: Fault | None, deployment: Deployment) -> float:
        """P[this monitor alarms | fault], marginalised over probe routing."""
        unavailable = unavailable_components(fault, deployment)
        failure = self.path.drop_probability(unavailable)
        return self.coverage * failure + self.false_positive_rate * (1.0 - failure)


Monitor = ComponentMonitor | PathMonitor


def observation_labels(monitors: Sequence[Monitor]) -> tuple[str, ...]:
    """Labels for the joint observation space, e.g. ``"HGMon!,HPathMon-"``.

    ``!`` marks an alarm, ``-`` a clear reading; outcomes enumerate in
    binary-counter order with the first monitor as the most significant bit.
    """
    labels = []
    for outcome in itertools.product((0, 1), repeat=len(monitors)):
        parts = [
            f"{monitor.name}{'!' if bit else '-'}"
            for monitor, bit in zip(monitors, outcome)
        ]
        labels.append(",".join(parts))
    return tuple(labels)


def observation_matrix(
    monitors: Sequence[Monitor],
    faults: Sequence[Fault | None],
    deployment: Deployment,
) -> np.ndarray:
    """Joint observation distribution ``q(o|s)`` for each fault state.

    Args:
        monitors: the monitor suite; the observation space is its joint
            binary outcome vector (``2**len(monitors)`` observations).
        faults: one entry per model state; ``None`` for null-fault states.
        deployment: the architecture, for fault-to-component resolution.

    Returns:
        ``(len(faults), 2**len(monitors))`` row-stochastic matrix ordered
        like :func:`observation_labels`.
    """
    if not monitors:
        raise ModelError("at least one monitor is required")
    alarm = np.array(
        [
            [monitor.alarm_probability(fault, deployment) for monitor in monitors]
            for fault in faults
        ]
    )  # (|S|, n_monitors)
    n_states, n_monitors = alarm.shape
    matrix = np.ones((n_states, 2**n_monitors))
    for o, outcome in enumerate(itertools.product((0, 1), repeat=n_monitors)):
        for m, bit in enumerate(outcome):
            matrix[:, o] *= alarm[:, m] if bit else (1.0 - alarm[:, m])
    return matrix
