"""Per-fault recovery metrics — the columns of Table 1.

* **cost** — "the reward metric defined on the recovery model ... a measure
  of the number of requests dropped by the system" (accumulated
  non-positive rewards, reported as a positive magnitude).
* **recovery time** — wall-clock seconds until the controller terminated
  recovery.
* **residual time** — wall-clock seconds the fault was present.
* **algorithm time** — seconds the controller spent deciding (reported in
  milliseconds, like the paper).
* **actions** — recovery actions invoked (restarts/reboots; not observes).
* **monitor calls** — monitor-suite executions the controller requested.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, fields

import numpy as np


@dataclass(frozen=True)
class EpisodeMetrics:
    """Metrics for one injected fault."""

    fault_state: int
    cost: float
    recovery_time: float
    residual_time: float
    algorithm_time: float
    actions: int
    monitor_calls: int
    recovered: bool
    terminated: bool
    steps: int

    @property
    def early_termination(self) -> bool:
        """True when the controller quit while the fault was still live."""
        return self.terminated and not self.recovered


@dataclass(frozen=True)
class MetricSummary:
    """Per-fault averages over a campaign — one Table 1 row.

    All time figures are seconds except ``algorithm_time_ms``.
    """

    episodes: int
    cost: float
    recovery_time: float
    residual_time: float
    algorithm_time_ms: float
    actions: float
    monitor_calls: float
    early_terminations: int
    unrecovered: int

    def as_row(self, name: str) -> list:
        """Format for the Table 1 renderer."""
        return [
            name,
            self.cost,
            self.recovery_time,
            self.residual_time,
            self.algorithm_time_ms,
            self.actions,
            self.monitor_calls,
        ]


def summarize(episodes: list[EpisodeMetrics]) -> MetricSummary:
    """Aggregate per-episode metrics into per-fault averages."""
    if not episodes:
        raise ValueError("cannot summarise an empty campaign")
    return MetricSummary(
        episodes=len(episodes),
        cost=float(np.mean([episode.cost for episode in episodes])),
        recovery_time=float(
            np.mean([episode.recovery_time for episode in episodes])
        ),
        residual_time=float(
            np.mean([episode.residual_time for episode in episodes])
        ),
        algorithm_time_ms=float(
            np.mean([episode.algorithm_time for episode in episodes]) * 1000.0
        ),
        actions=float(np.mean([episode.actions for episode in episodes])),
        monitor_calls=float(
            np.mean([episode.monitor_calls for episode in episodes])
        ),
        early_terminations=sum(
            1 for episode in episodes if episode.early_termination
        ),
        unrecovered=sum(1 for episode in episodes if not episode.recovered),
    )


def metrics_field_names() -> tuple[str, ...]:
    """Column names of :class:`EpisodeMetrics` (for CSV-style exports)."""
    return tuple(field.name for field in fields(EpisodeMetrics))


#: Fields excluded from fingerprints: wall-clock measurements that differ
#: between otherwise identical runs.
NONDETERMINISTIC_FIELDS = ("algorithm_time",)


def episode_fingerprint_bytes(episode: EpisodeMetrics) -> bytes:
    """The deterministic fields of one episode, packed canonically.

    Floats are packed as IEEE-754 doubles (no rounding), so two episodes
    fingerprint equal iff their deterministic fields are bit-identical.
    """
    packed = []
    for field in fields(EpisodeMetrics):
        if field.name in NONDETERMINISTIC_FIELDS:
            continue
        value = getattr(episode, field.name)
        if isinstance(value, bool):
            packed.append(struct.pack("<?", value))
        elif isinstance(value, (int, np.integer)):
            packed.append(struct.pack("<q", int(value)))
        else:
            packed.append(struct.pack("<d", float(value)))
    return b"".join(packed)


def campaign_fingerprint(episodes: list[EpisodeMetrics]) -> str:
    """SHA-256 over a campaign's deterministic per-episode metrics.

    The determinism contract of :mod:`repro.sim.parallel` is stated in
    terms of this fingerprint: a seeded campaign produces the same
    fingerprint no matter how many workers ran it.  ``algorithm_time`` is
    excluded because it is a wall-clock measurement (it differs even
    between two serial runs); everything else — fault sequence, costs,
    recovery/residual times, action and monitor counts, outcomes — is
    hashed exactly.
    """
    digest = hashlib.sha256()
    for episode in episodes:
        digest.update(episode_fingerprint_bytes(episode))
    return digest.hexdigest()
