"""The BI-POMDP worst-action bound of Washington [14].

``V_m^BI(s)`` solves Eq. 1 with the ``max`` replaced by a ``min``: the value
of always suffering the worst action.  It lower-bounds the POMDP value for
discounted models, but Section 3.1 observes that it fails on undiscounted
recovery models — with or without recovery notification — because the worst
action usually makes no progress while accruing cost, so the recursion
diverges to minus infinity.  This module implements the bound faithfully and
lets that divergence surface as :class:`~repro.exceptions.DivergenceError`,
which is the behaviour the comparison experiment (E5) demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.mdp.model import MDP
from repro.mdp.value_iteration import value_iteration
from repro.pomdp.model import POMDP


def bi_pomdp_vector(
    model: MDP | POMDP, tol: float = 1e-10, max_iterations: int = 100_000
) -> np.ndarray:
    """Compute ``V_m^BI`` by worst-action value iteration.

    Raises:
        DivergenceError: when the recursion is unbounded below, which is the
            generic outcome for undiscounted recovery models (Section 3.1).
    """
    mdp = model.to_mdp() if isinstance(model, POMDP) else model
    solution = value_iteration(
        mdp, tol=tol, max_iterations=max_iterations, minimize=True
    )
    return solution.value


def bi_pomdp_bound(model: MDP | POMDP, belief: np.ndarray, **kwargs) -> float:
    """The BI-POMDP bound at ``belief``: ``sum_s pi(s) V_m^BI(s)``."""
    vector = bi_pomdp_vector(model, **kwargs)
    return float(np.asarray(belief, dtype=float) @ vector)
