"""The obs v3 runtime metrics plane: histograms, snapshots, exposition."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.controllers.bounded import BoundedController
from repro.obs.live import (
    SnapshotRing,
    format_watch,
    render_prometheus,
    snapshot,
    snapshot_event,
)
from repro.obs.schema import validate_event, validate_stream
from repro.obs.telemetry import (
    HISTOGRAM_QUANTILES,
    LATENCY_BUCKET_EDGES,
    LatencyHistogram,
    Telemetry,
    session,
)
from repro.sim.campaign import run_campaign
from repro.sim.metrics import campaign_fingerprint


class TestBucketEdges:
    def test_edges_are_log_spaced_constants(self):
        assert len(LATENCY_BUCKET_EDGES) == 29
        assert LATENCY_BUCKET_EDGES[0] == pytest.approx(1e-5)
        assert LATENCY_BUCKET_EDGES[-1] == pytest.approx(100.0)
        ratios = [
            LATENCY_BUCKET_EDGES[i + 1] / LATENCY_BUCKET_EDGES[i]
            for i in range(len(LATENCY_BUCKET_EDGES) - 1)
        ]
        assert all(r == pytest.approx(10.0 ** 0.25) for r in ratios)

    def test_quantile_constants(self):
        assert HISTOGRAM_QUANTILES == (0.5, 0.95, 0.99)


class TestLatencyHistogram:
    def test_record_buckets_by_upper_edge(self):
        histogram = LatencyHistogram()
        histogram.record(1e-5)  # exactly the first edge -> first bucket
        histogram.record(1.5e-5)  # between edges 0 and 1 -> second bucket
        histogram.record(1000.0)  # beyond the last edge -> overflow slot
        assert histogram.counts[0] == 1
        assert histogram.counts[1] == 1
        assert histogram.counts[-1] == 1
        assert histogram.total == 3

    def test_quantiles_are_bucket_edges(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.003)
        histogram.record(5.0)
        p50 = histogram.quantile(0.5)
        assert p50 in LATENCY_BUCKET_EDGES
        assert p50 >= 0.003
        assert histogram.quantile(0.99) < histogram.quantile(1.0)
        assert histogram.max_seconds() in LATENCY_BUCKET_EDGES

    def test_empty_and_overflow_quantiles(self):
        assert LatencyHistogram().quantile(0.5) == 0.0
        assert LatencyHistogram().max_seconds() == 0.0
        overflow = LatencyHistogram()
        overflow.record(1e9)
        assert math.isinf(overflow.quantile(0.5))
        assert overflow.summary()["p50_ms"] is None

    def test_summary_payload(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        payload = histogram.summary()
        assert payload["count"] == 1
        assert payload["sum_seconds"] == pytest.approx(0.01)
        assert len(payload["counts"]) == len(LATENCY_BUCKET_EDGES) + 1
        assert payload["p50_ms"] == payload["p99_ms"] == payload["max_ms"]

    def test_merge_is_elementwise_addition(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        a.record(0.001)
        b.record(0.1)
        b.record(10.0)
        a.merge(b.counts, b.sum_seconds)
        assert a.total == 3
        assert a.sum_seconds == pytest.approx(10.101)

    def test_rejects_wrong_slot_count(self):
        with pytest.raises(ValueError, match="slots"):
            LatencyHistogram(counts=[0, 1, 2])


class TestChunkedMergeInvariance:
    """The worker-count-invariance contract, stated on merges.

    Raw latencies differ run to run, so the invariance the histograms
    guarantee — and the campaign engine relies on — is algebraic: for a
    *fixed* sequence of observations, recording serially and recording
    across any chunking absorbed in chunk order produce bucket-for-bucket
    identical aggregates (merge is commutative element-wise addition, the
    same contract as the deterministic counters).
    """

    DURATIONS = [10.0 ** (-4 + (i % 17) / 3.0) for i in range(200)]

    def test_serial_equals_four_chunks(self):
        serial = Telemetry()
        for value in self.DURATIONS:
            serial.observe_latency("decide", value)

        merged = Telemetry()
        for chunk in np.array_split(np.asarray(self.DURATIONS), 4):
            worker = Telemetry()
            for value in chunk:
                worker.observe_latency("decide", float(value))
            merged.absorb(worker.snapshot())

        assert (
            merged.histograms["decide"].counts
            == serial.histograms["decide"].counts
        )
        assert merged.histograms["decide"].sum_seconds == pytest.approx(
            serial.histograms["decide"].sum_seconds
        )
        assert (
            merged.histograms["decide"].summary()["p99_ms"]
            == serial.histograms["decide"].summary()["p99_ms"]
        )

    def test_chunk_order_does_not_matter(self):
        chunks = [
            np.asarray(self.DURATIONS[i::3]) for i in range(3)
        ]
        forward, backward = Telemetry(), Telemetry()
        for chunk in chunks:
            worker = Telemetry()
            for value in chunk:
                worker.observe_latency("decide", float(value))
            forward.absorb(worker.snapshot())
        for chunk in reversed(chunks):
            worker = Telemetry()
            for value in chunk:
                worker.observe_latency("decide", float(value))
            backward.absorb(worker.snapshot())
        assert (
            forward.histograms["decide"].counts
            == backward.histograms["decide"].counts
        )


class TestCampaignHistograms:
    """Campaign integration: histogram counts ride the counter contract."""

    INJECTIONS = 16
    SEED = 7

    def _campaign(self, system, parallel, telemetry_on=True):
        controller = BoundedController(system.model, depth=1)
        faults = np.array([system.fault_a, system.fault_b])
        if not telemetry_on:
            return run_campaign(
                controller,
                fault_states=faults,
                injections=self.INJECTIONS,
                seed=self.SEED,
                parallel=parallel,
            )
        with session() as telemetry:
            result = run_campaign(
                controller,
                fault_states=faults,
                injections=self.INJECTIONS,
                seed=self.SEED,
                parallel=parallel,
            )
        return result, telemetry

    def test_histogram_totals_are_worker_count_invariant(self, simple_system):
        _, serial = self._campaign(simple_system, parallel=None)
        _, sharded = self._campaign(simple_system, parallel=4)
        assert serial.histograms.keys() == sharded.histograms.keys()
        assert "session.decide" in serial.histograms
        for name in serial.histograms:
            # Totals (observation counts) are deterministic; the bucket
            # *placement* of each observation is wall-clock and is not.
            assert (
                serial.histograms[name].total == sharded.histograms[name].total
            ), name
        assert (
            serial.histograms["session.decide"].total
            == serial.counters["controller.decisions"]
        )

    def test_fingerprint_identical_with_telemetry_on_and_off(
        self, simple_system
    ):
        result_on, _ = self._campaign(simple_system, parallel=2)
        result_off = self._campaign(
            simple_system, parallel=2, telemetry_on=False
        )
        assert campaign_fingerprint(result_on.episodes) == campaign_fingerprint(
            result_off.episodes
        )


class TestLiveSnapshot:
    def _loaded(self) -> Telemetry:
        telemetry = Telemetry()
        telemetry.count("controller.decisions", 5)
        telemetry.count_process("cache.hits", 2)
        telemetry.gauge("bounds.set_size", 17.0)
        with telemetry.span("solver.solve"):
            pass
        telemetry.observe_latency("serve.session_decide", 0.004)
        return telemetry

    def test_snapshot_sections(self):
        snap = snapshot(self._loaded())
        assert snap["counters"]["controller.decisions"] == 5
        assert snap["process_counters"]["cache.hits"] == 2
        assert snap["gauges"]["bounds.set_size"] == 17.0
        assert snap["timers"]["solver.solve"]["calls"] == 1
        assert snap["histograms"]["serve.session_decide"]["count"] == 1
        json.dumps(snap)  # JSON-ready throughout

    def test_snapshot_while_writers_race(self):
        import threading

        telemetry = Telemetry()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                telemetry.count(f"counter.{i % 50}")
                telemetry.observe_latency(f"histogram.{i % 50}", 0.001)
                i += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                snap = snapshot(telemetry)
                assert isinstance(snap["counters"], dict)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_snapshot_event_is_schema_valid(self, tmp_path):
        telemetry = self._loaded()
        record = snapshot_event(telemetry, seq=1, t=12.5)
        assert record["event"] == "metrics_snapshot"
        assert validate_event(record) == []
        # A flusher stream: header + snapshots, valid at any truncation.
        path = tmp_path / "metrics.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(
                json.dumps(
                    {
                        "event": "session_start",
                        "seq": 0,
                        "schema": "repro-obs/v3",
                    }
                )
                + "\n"
            )
            stream.write(json.dumps(record) + "\n")
            stream.write(
                json.dumps(snapshot_event(telemetry, seq=2, t=22.5)) + "\n"
            )
        assert validate_stream(path) == []


class TestPrometheusExposition:
    def _snap(self):
        telemetry = Telemetry()
        telemetry.count("controller.decisions", 3)
        telemetry.count_process("serve.decisions", 3)
        telemetry.gauge("serve.live_sessions", 2.0)
        with telemetry.span("bounds.refine"):
            pass
        telemetry.observe_latency("serve.session_decide", 0.004)
        telemetry.observe_latency("serve.session_decide", 0.2)
        return snapshot(telemetry)

    def test_renders_all_metric_families(self):
        text = render_prometheus(self._snap())
        assert "# TYPE repro_controller_decisions_total counter" in text
        assert "repro_controller_decisions_total 3" in text
        assert "repro_serve_live_sessions 2" in text
        assert "repro_bounds_refine_seconds_total" in text
        assert (
            "# TYPE repro_serve_session_decide_latency_seconds histogram"
            in text
        )
        assert 'le="+Inf"} 2' in text
        assert "repro_serve_session_decide_latency_seconds_count 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(self._snap())
        values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_serve_session_decide_latency_seconds_bucket")
        ]
        assert len(values) == len(LATENCY_BUCKET_EDGES) + 1
        assert values == sorted(values)
        assert values[-1] == 2

    def test_rendering_is_byte_stable_and_sorted(self):
        snap = self._snap()
        assert render_prometheus(snap) == render_prometheus(snap)
        # Each section renders its metric names in sorted order whatever
        # the insertion order of the underlying dict.
        shuffled = {
            "counters": {"z.last": 1, "a.first": 2, "m.middle": 3},
        }
        names = [
            line.split()[0]
            for line in render_prometheus(shuffled).splitlines()
            if not line.startswith("#")
        ]
        assert names == sorted(names)


class TestSnapshotRing:
    def test_rates_over_window(self):
        ring = SnapshotRing(capacity=4)
        assert ring.rate("serve.decisions", section="process_counters") is None
        for t, count in [(0.0, 0), (1.0, 10), (2.0, 30)]:
            ring.push(t, {"process_counters": {"serve.decisions": count}})
        assert ring.window_seconds == pytest.approx(2.0)
        assert ring.rate(
            "serve.decisions", section="process_counters"
        ) == pytest.approx(15.0)

    def test_capacity_bounds_history(self):
        ring = SnapshotRing(capacity=2)
        for t in range(5):
            ring.push(float(t), {"counters": {"x": t}})
        assert len(ring) == 2
        assert ring.window_seconds == pytest.approx(1.0)

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SnapshotRing(capacity=1)


class TestFormatWatch:
    def test_renders_sessions_latency_and_rates(self):
        telemetry = Telemetry()
        telemetry.count("bounds.refinements", 10)
        telemetry.count("bounds.refinements_accepted", 4)
        telemetry.gauge("bounds.set_size", 9.0)
        telemetry.count_process("cache.hits", 8)
        telemetry.count_process("cache.builds", 2)
        telemetry.observe_latency("serve.session_decide", 0.004)
        metrics = snapshot(telemetry)
        stats = {
            "draining": False,
            "live_sessions": 1,
            "decisions": 12,
            "bound_vectors": 9,
            "sessions": {"s0": {"steps": 3, "done": False}},
        }
        ring = SnapshotRing()
        ring.push(0.0, {"process_counters": {"serve.decisions": 0}})
        ring.push(2.0, {"process_counters": {"serve.decisions": 12}})
        screen = format_watch(metrics, stats, ring)
        assert "repro.serve [serving]" in screen
        assert "decisions/s" in screen
        assert "serve.session_decide" in screen
        assert "refinement: 10 attempts, 4 accepted (40.0%), |B| 9" in screen
        assert "joint-factor cache: 8/10 hits (80.0%)" in screen
        assert "s0" in screen and "steps=3" in screen

    def test_metrics_only_view(self):
        screen = format_watch({"counters": {}, "histograms": {}})
        assert screen.startswith("repro live metrics")
