"""Perf snapshot for the measured hot paths (BENCH_PR2/PR4/PR10.json).

Measures the hot paths the perf PRs optimised and writes three snapshot
documents (schemas documented in EXPERIMENTS.md):

* ``BENCH_PR2.json`` (``bench-pr2/v1``) — **campaign** episodes/second on
  the EMN Table 1 zombie campaign, serial vs sharded, with fingerprints
  compared (the determinism contract of :mod:`repro.sim.parallel`);
  **ra_solve** RA-Bound solve seconds by state count; **tree** Max-Avg
  lookahead decisions/second.
* ``BENCH_PR4.json`` (``bench-pr4/v1``) — dense-vs-sparse backend decision
  latency/storage and cross-backend campaign parity.
* ``BENCH_PR5.json`` (``repro-bench/v1``) — the frozen PR 5-era canonical
  baseline; the PR 7 gate compares against it.
* ``BENCH_PR7.json`` (``repro-bench/v1``) — the frozen PR 7-era snapshot:
  the same measurements normalised into the self-describing metric schema
  of :mod:`repro.obs.bench`, plus the PR 7 batched-decision metrics — the
  fused depth-1 latency at the Section 4.3 scale point
  (``online.tiered300k.uniform_decision_ms`` and
  ``online.tiered300k.episode_decision_ms``) and the shared-memory
  campaign payload size (``parallel.model_handoff_bytes``).  This is what
  ``python -m repro.obs bench compare BENCH_PR5.json BENCH_PR7.json``
  judges.
* ``BENCH_PR9.json`` (``repro-bench/v1``) — the frozen PR 9-era snapshot:
  everything in the PR 7 document plus the policy-service metrics
  (``serve.cold_start_ms``, ``serve.warm_start_ms``,
  ``serve.session_decision_ms``).
* ``BENCH_PR10.json`` (``repro-bench/v1``) — the *canonical* snapshot:
  everything in the PR 9 document plus
  ``serve.session_decision_p99_ms``, the warm-model session-decision
  p99 read from the live ``serve.session_decide`` latency histogram —
  the same bucket-derived number the serve-smoke SLO gate reads over
  the socket.  Generation still enforces the PR 9 warm-start contract
  (warm ≤ 25% of cold on the tiered serve point).

Usage::

    python -m benchmarks.perf_snapshot            # write all three snapshots
    python -m benchmarks.perf_snapshot --check    # run everything, write nothing
    python -m benchmarks.perf_snapshot --bench-dir DIR   # write into DIR

``--check`` is the CI smoke mode: it exercises every measured path and
fails on crashes or determinism violations, never on timing (CI machines
are too noisy for wall-clock assertions).  ``REPRO_BENCH_INJECTIONS``
scales the campaign size down for smoke runs, exactly as in the pytest
benchmarks.  ``--bench-dir`` redirects every snapshot into a scratch
directory — use it to regenerate at full scale without clobbering the
committed PR-era baselines (only the canonical file should move forward).
``REPRO_BENCH_ONLINE_REPLICAS`` scales the 300,002-state online point
down the same way.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.bounds.ra_bound import ra_bound_vector
from repro.controllers.bootstrap import bootstrap_bounds
from repro.experiments.table1 import make_controller
from repro.mdp.linear_solvers import gauss_seidel
from repro.pomdp.tree import expand_tree
from repro.sim.campaign import run_campaign
from repro.sim.metrics import campaign_fingerprint
from repro.systems.emn import MONITOR_DURATION, build_emn_system
from repro.systems.faults import FaultKind
from repro.systems.tiered import solve_tiered_ra_bound, tiered_ra_chain

SCHEMA = "bench-pr2/v1"
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"

#: Dense-vs-sparse backend comparison (the PR 4 tentpole) — written
#: alongside the PR 2 snapshot, schema documented in EXPERIMENTS.md.
BACKEND_SCHEMA = "bench-pr4/v1"
BACKEND_SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"

#: Canonical snapshot (the regression gate's moving side): every
#: measurement above, normalised into ``repro-bench/v1`` metrics via
#: :mod:`repro.obs.bench`, plus the batched-decision, shared-memory-handoff,
#: and policy-service startup/decision metrics.  The PR 5 and PR 7 files
#: stay committed as frozen baselines the gates compare against.
CANONICAL_SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

#: Full-scale defaults (the acceptance configuration): a 1,000-injection
#: campaign compared serial vs 4 workers.
DEFAULT_INJECTIONS = 1_000
DEFAULT_WORKERS = 4
SEED = 2006

#: Controllers measured in the campaign section.  "most likely" is the
#: throughput ceiling (cheapest decisions); "bounded (depth 1)" is the
#: paper's flagship and exercises the refinement-merge path.
CAMPAIGN_CONTROLLERS = ("most likely", "bounded (depth 1)")

#: Tiered-family sizes for the RA-solve section (replicas per tier, 3
#: tiers).  Dense reference timings stop where densifying the chain would
#: dominate the measurement.
RA_SIZES = (2, 100, 1_000, 10_000, 50_000)
RA_DENSE_MAX_STATES = 1_000

#: Replicas per tier for the online batched-decision measurement: 3 tiers
#: at 50,000 replicas each -> 2 + 2 * 3 * 50,000 = 300,002 states, the
#: Section 4.3 "hundreds of thousands" scale point.
ONLINE_REPLICAS = 50_000

#: Decision budget of the measured online episode (matches the episode
#: shape of ``benchmarks.online_smoke``).
ONLINE_EPISODE_STEPS = 8


def snapshot_injections() -> int:
    """Campaign size, scaled down by ``REPRO_BENCH_INJECTIONS`` for smoke."""
    return int(os.environ.get("REPRO_BENCH_INJECTIONS", DEFAULT_INJECTIONS))


def online_replicas() -> int:
    """Online-point size, scaled by ``REPRO_BENCH_ONLINE_REPLICAS`` for smoke."""
    return int(os.environ.get("REPRO_BENCH_ONLINE_REPLICAS", ONLINE_REPLICAS))


def measure_campaigns(injections: int, workers: int) -> list[dict]:
    """Serial-vs-parallel campaign throughput, fingerprints compared."""
    system = build_emn_system()
    zombies = system.fault_states(FaultKind.ZOMBIE)
    rows = []
    for name in CAMPAIGN_CONTROLLERS:
        timings = {}
        fingerprints = {}
        for mode, parallel in (("serial", None), ("parallel", workers)):
            controller = make_controller(name, system)
            started = time.perf_counter()
            result = run_campaign(
                controller,
                fault_states=zombies,
                injections=injections,
                seed=SEED,
                monitor_tail=MONITOR_DURATION,
                parallel=parallel,
            )
            timings[mode] = time.perf_counter() - started
            fingerprints[mode] = campaign_fingerprint(result.episodes)
        rows.append(
            {
                "controller": name,
                "injections": injections,
                "workers": workers,
                "serial_seconds": round(timings["serial"], 3),
                "parallel_seconds": round(timings["parallel"], 3),
                "serial_episodes_per_second": round(
                    injections / timings["serial"], 2
                ),
                "parallel_episodes_per_second": round(
                    injections / timings["parallel"], 2
                ),
                "speedup": round(timings["serial"] / timings["parallel"], 2),
                "fingerprint": fingerprints["serial"],
                "fingerprints_match": fingerprints["serial"]
                == fingerprints["parallel"],
            }
        )
    return rows


def measure_ra_solves(sizes: tuple[int, ...] = RA_SIZES) -> list[dict]:
    """Sparse RA-Bound solve seconds by state count, dense where feasible."""
    rows = []
    for r in sizes:
        replicas = (r, r, r)
        chain, rewards = tiered_ra_chain(replicas)
        n_states = rewards.shape[0]
        started = time.perf_counter()
        sparse_values = solve_tiered_ra_bound(replicas, method="sparse")
        sparse_seconds = time.perf_counter() - started
        dense_seconds = None
        agreement = None
        if n_states <= RA_DENSE_MAX_STATES:
            dense_chain = chain.toarray()
            started = time.perf_counter()
            dense_values = gauss_seidel(dense_chain, rewards)
            dense_seconds = round(time.perf_counter() - started, 4)
            agreement = float(np.max(np.abs(dense_values - sparse_values)))
        rows.append(
            {
                "replicas_per_tier": r,
                "n_states": int(n_states),
                "nnz": int(chain.nnz),
                "sparse_seconds": round(sparse_seconds, 4),
                "dense_seconds": dense_seconds,
                "max_abs_dense_sparse_gap": agreement,
            }
        )
    return rows


def measure_tree(decisions: int = 50, depth: int = 2) -> dict:
    """Lookahead decisions/second with the cached, batched expansion."""
    system = build_emn_system()
    pomdp = system.model.pomdp
    bound_set, _ = bootstrap_bounds(
        system.model, iterations=10, depth=2, variant="average", seed=0
    )
    rng = np.random.default_rng(SEED)
    beliefs = rng.dirichlet(np.ones(pomdp.n_states), size=decisions)
    started = time.perf_counter()
    for belief in beliefs:
        expand_tree(pomdp, belief, depth=depth, leaf=bound_set)
    elapsed = time.perf_counter() - started
    return {
        "decisions": decisions,
        "depth": depth,
        "seconds": round(elapsed, 3),
        "decisions_per_second": round(decisions / elapsed, 2),
    }


def _csr_bytes(matrix) -> int:
    return int(matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes)


def _model_bytes(pomdp) -> int:
    """Actual tensor storage of a model, dense or sparse."""
    from repro.linalg.containers import StructuredRewards

    if not pomdp.backend.is_sparse:
        return int(
            pomdp.transitions.nbytes
            + pomdp.observations.nbytes
            + pomdp.rewards.nbytes
        )
    transitions, observations, rewards = (
        pomdp.transitions, pomdp.observations, pomdp.rewards,
    )
    total = (
        _csr_bytes(transitions.base)
        + _csr_bytes(transitions.rows)
        + transitions.row_action.nbytes
        + transitions.row_state.nbytes
    )
    total += _csr_bytes(observations.base) + sum(
        _csr_bytes(matrix) for matrix in observations.overrides.values()
    )
    if isinstance(rewards, StructuredRewards):
        total += (
            rewards.time_scale.nbytes
            + rewards.rate.nbytes
            + rewards.fixed.nbytes
            + _csr_bytes(rewards.override)
        )
    else:
        total += rewards.nbytes
    return int(total)


def _dense_bytes_estimate(n_actions: int, n_states: int, n_observations: int) -> int:
    """What the same model would need as dense ndarrays."""
    return 8 * n_actions * n_states * (n_states + n_observations + 1)


def _decision_seconds(model, repetitions: int) -> tuple[float, int]:
    """Mean steady-state bounded depth-1 decision latency.

    One untimed warm-up decision first: it absorbs the one-off costs
    (joint-factor cache build, lazy allocations) that would otherwise
    dominate the mean and make the latency metric too noisy to gate
    regressions on.
    """
    from repro.controllers.bounded import BoundedController
    from repro.pomdp.belief import uniform_belief

    controller = BoundedController(model, depth=1, refine_online=False)
    belief = uniform_belief(model.pomdp, support=model.fault_states)
    controller.reset(initial_belief=belief)
    controller.decide()
    elapsed = 0.0
    action = None
    for _ in range(repetitions):
        controller.reset(initial_belief=belief)
        started = time.perf_counter()
        decision = controller.decide()
        elapsed += time.perf_counter() - started
        action = decision.action
    return elapsed / repetitions, action


def measure_backends(repetitions: int = 10) -> list[dict]:
    """Dense-vs-sparse decision latency and storage on the tiered family.

    Small points run both backends and require the chosen action to match
    (the backend-parity contract); the large point is sparse-only — its
    dense tensors would need terabytes — and reports the dense estimate.
    """
    from repro.systems.tiered import build_tiered_system

    rows = []
    for replicas_per_tier, run_dense in ((20, True), (50, True), (2_000, False)):
        replicas = (replicas_per_tier,) * 3
        row: dict = {"replicas_per_tier": replicas_per_tier}
        actions = {}
        for backend in ("dense", "sparse") if run_dense else ("sparse",):
            system = build_tiered_system(replicas=replicas, backend=backend)
            pomdp = system.model.pomdp
            seconds, actions[backend] = _decision_seconds(
                system.model, repetitions
            )
            row[f"{backend}_decision_ms"] = round(seconds * 1000.0, 3)
            row[f"{backend}_model_bytes"] = _model_bytes(pomdp)
            row["n_states"] = pomdp.n_states
            row["n_actions"] = pomdp.n_actions
        row["dense_bytes_estimate"] = _dense_bytes_estimate(
            row["n_actions"], row["n_states"], 16
        )
        row["decisions_match"] = (
            actions["dense"] == actions["sparse"] if run_dense else None
        )
        rows.append(row)
    return rows


def measure_backend_campaign(injections: int, workers: int) -> dict:
    """EMN campaign fingerprints: dense vs sparse, serial vs parallel."""
    from repro.systems.faults import FaultKind

    fingerprints = {}
    timings = {}
    for backend in ("dense", "sparse"):
        system = build_emn_system(backend=backend)
        zombies = system.fault_states(FaultKind.ZOMBIE)
        for mode, parallel in (("serial", None), ("parallel", workers)):
            controller = make_controller("bounded (depth 1)", system)
            started = time.perf_counter()
            result = run_campaign(
                controller,
                fault_states=zombies,
                injections=injections,
                seed=SEED,
                monitor_tail=MONITOR_DURATION,
                parallel=parallel,
            )
            timings[f"{backend}_{mode}"] = round(
                time.perf_counter() - started, 3
            )
            fingerprints[f"{backend}_{mode}"] = campaign_fingerprint(
                result.episodes
            )
    reference = fingerprints["dense_serial"]
    return {
        "controller": "bounded (depth 1)",
        "injections": injections,
        "workers": workers,
        "seconds": timings,
        "fingerprint": reference,
        "fingerprints_match": all(
            value == reference for value in fingerprints.values()
        ),
    }


def build_backend_snapshot(injections: int, workers: int) -> dict:
    """Assemble the PR 4 dense-vs-sparse snapshot document."""
    return {
        "schema": BACKEND_SCHEMA,
        "generated_by": "python -m benchmarks.perf_snapshot",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "seed": SEED,
        "backends": measure_backends(),
        "campaign": measure_backend_campaign(injections, workers),
    }


def measure_online(replicas_per_tier: int) -> dict:
    """Fused batched depth-1 decision latency at the online scale point.

    One uniform-belief decision (every fault equally likely — the worst
    case: all ~|S|/2 repair actions competitive) plus a short fault
    episode with narrowed beliefs, both on the sparse backend with the
    fused single-``value_batch`` expansion.
    """
    from repro.controllers.bounded import BoundedController
    from repro.pomdp.belief import uniform_belief
    from repro.sim.environment import RecoveryEnvironment
    from repro.systems.tiered import build_tiered_system

    system = build_tiered_system(
        replicas=(replicas_per_tier,) * 3, backend="sparse"
    )
    model = system.model
    controller = BoundedController(model, depth=1, refine_online=False)
    controller.reset(
        initial_belief=uniform_belief(model.pomdp, support=model.fault_states)
    )
    started = time.perf_counter()
    controller.decide()
    uniform_seconds = time.perf_counter() - started

    environment = RecoveryEnvironment(model, seed=SEED)
    fault_indices = np.flatnonzero(model.fault_states)
    environment.inject(int(fault_indices[0]))
    suspects = np.zeros(model.pomdp.n_states, dtype=bool)
    suspects[fault_indices[:6]] = True
    controller.reset(
        initial_belief=uniform_belief(model.pomdp, support=suspects)
    )
    passive = int(np.flatnonzero(model.passive_actions)[0])
    controller.observe(passive, environment.initial_observation())
    decision_seconds: list[float] = []
    for _ in range(ONLINE_EPISODE_STEPS):
        started = time.perf_counter()
        step = controller.decide()
        decision_seconds.append(time.perf_counter() - started)
        result = environment.execute(step.action)
        if step.is_terminate:
            break
        controller.observe(step.action, result.observation)
    return {
        "replicas_per_tier": replicas_per_tier,
        "n_states": model.pomdp.n_states,
        "uniform_decision_ms": round(uniform_seconds * 1000.0, 1),
        "episode_decisions": len(decision_seconds),
        "episode_decision_ms": round(
            1000.0 * sum(decision_seconds) / len(decision_seconds), 1
        ),
    }


def measure_handoff(injections: int) -> dict:
    """Per-worker campaign payload bytes with the shared-memory export.

    Measured on the 12,002-state sparse tiered model, whose ~4 MB of CSR
    buffers dominate a raw pickle of the plan; with the arena export the
    payload carries kilobyte handles instead, so this metric is the part
    of the handoff that still scales with the campaign (seed streams and
    chunk layout), not with the model.
    """
    from repro.controllers.bounded import BoundedController
    from repro.sim.parallel import model_handoff_bytes, plan_campaign
    from repro.systems.tiered import build_tiered_system

    system = build_tiered_system(replicas=(2_000,) * 3, backend="sparse")
    controller = BoundedController(system.model, depth=1)
    faults = system.zombie_states()[:4]
    plan = plan_campaign(controller, faults, injections=injections, seed=SEED)
    return {"model_handoff_bytes": model_handoff_bytes(plan)}


#: Replicas per tier for the policy-service startup measurement: 50
#: replicas over 3 tiers -> 302 states, where online refinement is cheap
#: enough to time per decision and the cold-start bootstrap phase (the
#: Section 4.1 off-line refinement a warm start amortises away) dominates
#: startup.
SERVE_REPLICAS = 50

#: Cold-start bootstrap episodes: the off-line phase whose cost the
#: warm-start contract (warm ≤ 25% of cold) is measured against.
SERVE_BOOTSTRAP_ITERATIONS = 12

#: Decisions timed on the warm service session.
SERVE_DECISIONS = 8


def serve_replicas() -> int:
    """Serve-point size, scaled by ``REPRO_BENCH_SERVE_REPLICAS`` for smoke."""
    return int(os.environ.get("REPRO_BENCH_SERVE_REPLICAS", SERVE_REPLICAS))


def measure_serve(replicas_per_tier: int) -> dict:
    """Policy-service cold vs warm startup and per-decision latency.

    Cold start pays RA-Bound seeding plus the Section 4.1 off-line
    bootstrap refinement; warm start reloads the refined, checkpointed
    bound set through :func:`repro.io.load_bound_set` instead.  The first
    warm start runs (and memoises) the R3xx certification sweep; the
    reported ``warm_start_ms`` is the steady state a restarting daemon
    sees — digest sidecar matched, sweep skipped.  Both run in this
    process, so the process-memoised joint-factor cache is excluded from
    the comparison (cold pays its build once, before timing would matter
    to warm): the numbers isolate the bound-set path, which is what the
    warm-start contract is about.
    """
    import tempfile

    from repro.sim.environment import RecoveryEnvironment
    from repro.serve.service import PolicyService, ServiceConfig
    from repro.systems.tiered import build_tiered_system

    system = build_tiered_system(
        replicas=(replicas_per_tier,) * 3, backend="sparse"
    )
    model = system.model
    with tempfile.TemporaryDirectory() as scratch:
        bounds_path = Path(scratch) / "bounds.npz"
        config = ServiceConfig(
            bounds_path=str(bounds_path),
            checkpoint_interval=0,
            bootstrap_iterations=SERVE_BOOTSTRAP_ITERATIONS,
            bootstrap_seed=SEED,
        )
        cold = PolicyService(config, model=model)
        assert not cold.started_warm
        cold_ms = cold.startup_seconds * 1000.0

        # Refine along a short recovery so the checkpoint carries a
        # genuinely refined set, then persist it.
        session_id = cold.open_session()
        environment = RecoveryEnvironment(model, seed=SEED)
        environment.inject(int(np.flatnonzero(model.fault_states)[0]))
        passive = int(np.flatnonzero(model.passive_actions)[0])
        cold.observe(session_id, passive, environment.initial_observation())
        for _ in range(SERVE_DECISIONS):
            decision = cold.decide(session_id)
            if decision["terminate"]:
                break
            result = environment.execute(decision["action"])
            cold.observe(session_id, decision["action"], result.observation)
        cold.close_session(session_id)
        cold.checkpoint()

        # First restart runs the R3xx sweep and records the sidecar ...
        PolicyService(config, model=model)
        # ... the measured restart is the memoised steady state.
        warm = PolicyService(config, model=model)
        assert warm.started_warm
        warm_ms = warm.startup_seconds * 1000.0

        # Episodes can terminate after one decision (a missed-detection
        # belief collapses onto the null state), so collect the timed
        # decisions across as many short sessions as it takes.
        fault_indices = np.flatnonzero(model.fault_states)
        decision_seconds: list[float] = []
        for episode in range(SERVE_DECISIONS):
            if len(decision_seconds) >= SERVE_DECISIONS:
                break
            session_id = warm.open_session()
            environment = RecoveryEnvironment(model, seed=SEED + 1 + episode)
            environment.inject(int(fault_indices[episode % fault_indices.size]))
            warm.observe(
                session_id, passive, environment.initial_observation()
            )
            for _ in range(SERVE_DECISIONS):
                started = time.perf_counter()
                decision = warm.decide(session_id)
                decision_seconds.append(time.perf_counter() - started)
                if decision["terminate"]:
                    break
                result = environment.execute(decision["action"])
                warm.observe(session_id, decision["action"], result.observation)
            warm.close_session(session_id)

        # The p99 the serve-smoke SLO gate reads over the socket, taken
        # here from the warm service's own live registry: the
        # serve.session_decide histogram covers the whole decide() path
        # (engine-lock queueing included) and derives its quantiles from
        # fixed bucket edges, never wall-clock ordering.
        from repro.obs.live import snapshot as live_snapshot

        histogram = live_snapshot(warm.telemetry)["histograms"].get(
            "serve.session_decide", {}
        )
    return {
        "replicas_per_tier": replicas_per_tier,
        "n_states": model.pomdp.n_states,
        "cold_start_ms": round(cold_ms, 2),
        "warm_start_ms": round(warm_ms, 2),
        "warm_fraction": round(warm_ms / cold_ms, 4) if cold_ms else None,
        "session_decisions": len(decision_seconds),
        "session_decision_ms": round(
            1000.0 * sum(decision_seconds) / len(decision_seconds), 2
        ),
        "session_decision_p99_ms": histogram.get("p99_ms"),
        "session_decision_histogram_count": histogram.get("count", 0),
    }


def measure_ra_emn() -> dict:
    """RA-Bound on the EMN model itself (the auto-selected small path)."""
    system = build_emn_system()
    started = time.perf_counter()
    ra_bound_vector(system.model.pomdp)
    return {"solve_seconds": round(time.perf_counter() - started, 4)}


def build_snapshot(injections: int, workers: int) -> dict:
    """Run every measurement and assemble the snapshot document."""
    return {
        "schema": SCHEMA,
        "generated_by": "python -m benchmarks.perf_snapshot",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "seed": SEED,
        "campaign": measure_campaigns(injections, workers),
        "ra_solve": measure_ra_solves(),
        "ra_solve_emn": measure_ra_emn(),
        # Random-dirichlet root beliefs are the worst case for the tree
        # (every observation reachable); scale the count with the campaign
        # knob so smoke runs stay quick.
        "tree": measure_tree(decisions=max(5, min(50, injections // 10))),
    }


def _online_label(n_states: int) -> str:
    """``300,002`` states → ``"tiered300k"`` (smoke sizes keep raw counts)."""
    if n_states >= 1_000:
        return f"tiered{n_states // 1_000}k"
    return f"tiered{n_states}"


def build_canonical_snapshot(
    snapshot: dict,
    backend_snapshot: dict,
    online: dict,
    handoff: dict,
    serve: dict | None = None,
) -> dict:
    """Normalise both PR-era documents into one ``repro-bench/v1`` snapshot."""
    from repro.obs.bench import Metric, canonical_document, normalize

    metrics = {}
    metrics.update(normalize(snapshot).metrics)
    metrics.update(normalize(backend_snapshot).metrics)
    label = _online_label(online["n_states"])
    metrics[f"online.{label}.uniform_decision_ms"] = Metric(
        online["uniform_decision_ms"], "ms", "lower"
    )
    metrics[f"online.{label}.episode_decision_ms"] = Metric(
        online["episode_decision_ms"], "ms", "lower"
    )
    metrics["parallel.model_handoff_bytes"] = Metric(
        handoff["model_handoff_bytes"], "bytes", "info"
    )
    if serve is not None:
        metrics["serve.cold_start_ms"] = Metric(
            serve["cold_start_ms"], "ms", "lower"
        )
        metrics["serve.warm_start_ms"] = Metric(
            serve["warm_start_ms"], "ms", "lower"
        )
        metrics["serve.session_decision_ms"] = Metric(
            serve["session_decision_ms"], "ms", "lower"
        )
        if serve.get("session_decision_p99_ms") is not None:
            metrics["serve.session_decision_p99_ms"] = Metric(
                serve["session_decision_p99_ms"], "ms", "lower"
            )
    return canonical_document(
        metrics,
        machine=snapshot["machine"],
        seed=snapshot["seed"],
        source_schemas=[snapshot["schema"], backend_snapshot["schema"]],
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf-snapshot", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI smoke mode: run every measured path, write nothing, fail "
        "on crashes or determinism violations (never on timing)",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS, metavar="N",
        help="worker count for the parallel campaign measurement",
    )
    parser.add_argument(
        "--output", type=Path, default=SNAPSHOT_PATH,
        help="snapshot destination (default: BENCH_PR2.json at repo root)",
    )
    parser.add_argument(
        "--bench-dir", type=Path, default=None, metavar="DIR",
        help="write every snapshot (PR2/PR4/PR10) into DIR instead of the "
        "repo root, leaving committed baselines untouched",
    )
    args = parser.parse_args(argv)

    output_path = args.output
    backend_path = BACKEND_SNAPSHOT_PATH
    canonical_path = CANONICAL_SNAPSHOT_PATH
    if args.bench_dir is not None:
        args.bench_dir.mkdir(parents=True, exist_ok=True)
        output_path = args.bench_dir / SNAPSHOT_PATH.name
        backend_path = args.bench_dir / BACKEND_SNAPSHOT_PATH.name
        canonical_path = args.bench_dir / CANONICAL_SNAPSHOT_PATH.name

    snapshot = build_snapshot(snapshot_injections(), args.workers)
    mismatches = [
        row["controller"]
        for row in snapshot["campaign"]
        if not row["fingerprints_match"]
    ]
    if mismatches:
        raise SystemExit(
            "determinism violation: serial and parallel campaign "
            f"fingerprints differ for {mismatches}"
        )
    backend_snapshot = build_backend_snapshot(snapshot_injections(), args.workers)
    if not backend_snapshot["campaign"]["fingerprints_match"]:
        raise SystemExit(
            "backend-parity violation: dense and sparse EMN campaign "
            "fingerprints differ"
        )
    disagreements = [
        row["replicas_per_tier"]
        for row in backend_snapshot["backends"]
        if row["decisions_match"] is False
    ]
    if disagreements:
        raise SystemExit(
            "backend-parity violation: dense and sparse decisions differ "
            f"on tiered replicas {disagreements}"
        )
    online = measure_online(online_replicas())
    handoff = measure_handoff(snapshot_injections())
    serve = measure_serve(serve_replicas())
    if serve["warm_start_ms"] > 0.25 * serve["cold_start_ms"]:
        raise SystemExit(
            "warm-start contract violation: warm start took "
            f"{serve['warm_start_ms']}ms, more than 25% of the "
            f"{serve['cold_start_ms']}ms cold start"
        )
    canonical_snapshot = build_canonical_snapshot(
        snapshot, backend_snapshot, online, handoff, serve
    )
    if args.check:
        print("perf snapshot check passed (nothing written):")
        print(json.dumps(snapshot, indent=2))
        print(json.dumps(backend_snapshot, indent=2))
        print(json.dumps(canonical_snapshot, indent=2))
        return 0
    output_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output_path}")
    print(json.dumps(snapshot, indent=2))
    backend_path.write_text(json.dumps(backend_snapshot, indent=2) + "\n")
    print(f"wrote {backend_path}")
    print(json.dumps(backend_snapshot, indent=2))
    canonical_path.write_text(json.dumps(canonical_snapshot, indent=2) + "\n")
    print(f"wrote {canonical_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
