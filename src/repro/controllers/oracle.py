"""The oracle policy (Section 5) — the unattainable ideal.

"A hypothetical controller that knows the fault in the system, and can
always recover from it via a single action."  It exists to put a floor under
Table 1: no diagnosing controller can beat it.  The campaign driver feeds it
the ground-truth state through ``sync_true_state``, the hook every honest
controller ignores; the engine reads it back off the *session* (each
concurrent recovery has its own ground truth).  It makes no monitor calls
at all (``uses_monitors`` is False), matching the zeros in its Table 1 row.
"""

from __future__ import annotations

from repro.controllers.base import RecoveryController
from repro.controllers.engine import Decision, PolicyEngine, RecoverySession
from repro.controllers.most_likely import cheapest_fixing_actions
from repro.exceptions import ControllerError
from repro.recovery.model import RecoveryModel


class OraclePolicyEngine(PolicyEngine):
    """Knows the true fault; repairs it with the single cheapest action."""

    #: The campaign skips monitor invocations for policies that opt out.
    uses_monitors: bool = False

    def __init__(self, model: RecoveryModel, preflight: bool = False):
        super().__init__(model, preflight=preflight)
        self._fixing_action = cheapest_fixing_actions(model)
        self.name = "oracle"

    def decide(self, session: RecoverySession) -> Decision:
        true_state = session.true_state
        if true_state is None:
            raise ControllerError(
                "oracle controller was never given the true state; the "
                "campaign must call sync_true_state() after reset"
            )
        if self.model.is_recovered(true_state):
            return self.terminate_decision()
        return Decision(action=self._fixing_action[true_state])


class OracleController(RecoveryController):
    """Campaign-facing adapter over an :class:`OraclePolicyEngine`."""

    uses_monitors: bool = False

    def __init__(self, model: RecoveryModel, preflight: bool = False):
        super().__init__(engine=OraclePolicyEngine(model, preflight=preflight))
