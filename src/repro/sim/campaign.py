"""Episode and campaign drivers.

An *episode* injects one fault and runs one controller against the
environment until the controller terminates recovery (or a safety cap
trips).  A *campaign* runs many episodes — Section 5 injects 10,000 faults —
and aggregates per-fault averages into a Table 1 row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controllers.base import RecoveryController
from repro.controllers.engine import RecoverySession
from repro.obs.telemetry import active as telemetry_active
from repro.recovery.model import RecoveryModel
from repro.sim.environment import RecoveryEnvironment
from repro.sim.metrics import EpisodeMetrics, MetricSummary, summarize

#: Safety cap: no reasonable controller needs this many steps on the EMN
#: model; hitting it means the controller is stuck in the loop that
#: Property 1 exists to rule out.
DEFAULT_MAX_STEPS = 500


@dataclass(frozen=True)
class CampaignResult:
    """All episodes of a campaign plus their aggregate."""

    controller_name: str
    episodes: list[EpisodeMetrics]
    summary: MetricSummary


def run_episode(
    controller: RecoveryController | RecoverySession,
    environment: RecoveryEnvironment,
    fault_state: int,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> EpisodeMetrics:
    """Inject ``fault_state`` and drive ``controller`` until it terminates.

    ``controller`` is anything speaking the session protocol — a
    :class:`~repro.controllers.engine.RecoverySession` spawned from a
    warm :class:`~repro.controllers.engine.PolicyEngine` (what the chunk
    runner passes), or a classic :class:`RecoveryController` adapter,
    which forwards to its live session.

    Loop structure, following Section 4's controller description: the
    session starts from the all-faults-equally-likely belief, folds in
    the detection-time monitor outputs, then repeatedly decides, executes,
    and observes until it chooses to terminate.
    """
    model = controller.model
    uses_monitors = getattr(controller, "uses_monitors", True)
    environment.inject(fault_state)
    controller.reset()
    controller.stopwatch.reset()
    controller.sync_true_state(environment.state)

    passive = np.flatnonzero(model.passive_actions)
    if uses_monitors and passive.size:
        controller.observe(int(passive[0]), environment.initial_observation())

    actions = 0
    monitor_calls = 0
    steps = 0
    terminated = False
    for _ in range(max_steps):
        decision = controller.decide()
        if decision.is_terminate:
            terminated = True
            # Execute a_T where the decision carries it so the model's
            # termination reward is charged; the NO_ACTION sentinel
            # (notification models, which have no a_T) executes nothing.
            if decision.executes_action and decision.action == model.terminate_action:
                environment.execute(decision.action)
            break
        steps += 1
        result = environment.execute(decision.action)
        if model.recovery_actions[decision.action]:
            actions += 1
        if uses_monitors:
            monitor_calls += 1
            controller.observe(decision.action, result.observation)
        controller.sync_true_state(environment.state)

    telemetry = telemetry_active()
    if telemetry is not None:
        telemetry.count("sim.episodes")
        telemetry.count("sim.steps", steps)
        if environment.recovered:
            telemetry.count("sim.recovered")
        if terminated and not environment.recovered:
            telemetry.count("sim.early_terminations")
        if not terminated:
            telemetry.count("sim.step_cap_hits")

    return EpisodeMetrics(
        fault_state=fault_state,
        cost=environment.cost,
        recovery_time=environment.time,
        residual_time=environment.residual_time(),
        algorithm_time=controller.stopwatch.total_seconds,
        actions=actions,
        monitor_calls=monitor_calls,
        recovered=environment.recovered,
        terminated=terminated,
        steps=steps,
    )


def run_campaign(
    controller: RecoveryController,
    fault_states: np.ndarray,
    injections: int,
    seed=None,
    max_steps: int = DEFAULT_MAX_STEPS,
    monitor_tail: float = 0.0,
    model: RecoveryModel | None = None,
    fault_probabilities: np.ndarray | None = None,
    parallel: int | None = None,
    chunk_size: int | None = None,
    on_chunk=None,
) -> CampaignResult:
    """Run ``injections`` episodes with randomly drawn faults.

    Episodes are scheduled by the campaign engine of
    :mod:`repro.sim.parallel`: faults and per-episode environment streams
    are derived up front from ``seed`` via ``SeedSequence`` spawning, and
    episodes run in fixed-size chunks against clones of ``controller``
    whose bound refinements are merged back on completion.  The metrics are
    therefore a function of ``(seed, injections, chunk_size)`` alone —
    serial and parallel runs of the same campaign agree episode for episode
    (``algorithm_time`` excepted: it is a wall-clock measurement).

    Args:
        controller: the controller under test.  It is never driven
            directly — chunks run clones — but it receives every refinement
            the clones produce (deduplicated and dominance-pruned), so its
            bound set ends the campaign as a long-lived controller
            process's would.
        fault_states: candidate fault-state indices; Section 5 draws only
            zombie faults.
        injections: number of episodes (the paper uses 10,000).
        seed: seed for both fault draws and environment sampling.
        max_steps: per-episode step cap.
        monitor_tail: see :class:`RecoveryEnvironment`.
        model: environment-side model; defaults to the controller's own
            (the paper's setting — pass a different one to study model
            mismatch).
        fault_probabilities: draw weights aligned with ``fault_states``;
            uniform (the paper's fault load) when None.  Use for
            criticality-weighted fault loads.
        parallel: worker-process count; ``None``, 0, or 1 runs in-process.
        chunk_size: episodes per controller-isolation chunk (default
            :data:`repro.sim.parallel.DEFAULT_CHUNK_SIZE`).  Changing it
            changes refinement visibility and hence, potentially, metrics;
            worker count never does.
        on_chunk: per-chunk scheduling hook forwarded to
            :func:`repro.sim.parallel.execute_plan` — called in chunk
            order at join time, which is what the grid runner uses for
            per-cell progress without touching determinism.
    """
    from repro.sim.parallel import execute_plan, plan_campaign

    if injections <= 0:
        raise ValueError(f"injections must be positive, got {injections}")
    fault_states = np.asarray(fault_states, dtype=int)
    if fault_states.size == 0:
        raise ValueError("fault_states must not be empty")
    if fault_probabilities is not None:
        fault_probabilities = np.asarray(fault_probabilities, dtype=float)
        if fault_probabilities.shape != fault_states.shape:
            raise ValueError(
                "fault_probabilities must align with fault_states"
            )
        if np.any(fault_probabilities < 0) or not np.isclose(
            fault_probabilities.sum(), 1.0
        ):
            raise ValueError("fault_probabilities must be a distribution")
    plan = plan_campaign(
        controller,
        fault_states=fault_states,
        injections=injections,
        seed=seed,
        max_steps=max_steps,
        monitor_tail=monitor_tail,
        model=model,
        fault_probabilities=fault_probabilities,
        chunk_size=chunk_size,
    )
    telemetry = telemetry_active()
    if telemetry is not None:
        telemetry.count("sim.campaigns")
        telemetry.event(
            "campaign_start",
            controller=controller.name,
            injections=injections,
            chunk_size=plan.chunk_size,
            workers=parallel,
        )
        # The campaign span stays open while execute_plan absorbs chunk
        # snapshots, so chunk-side episode spans are re-parented under it.
        with telemetry.trace_span(
            "campaign", category="sim", controller=controller.name
        ):
            episodes = execute_plan(plan, workers=parallel, on_chunk=on_chunk)
    else:
        episodes = execute_plan(plan, workers=parallel, on_chunk=on_chunk)
    if telemetry is not None:
        telemetry.event(
            "campaign_end",
            controller=controller.name,
            episodes=len(episodes),
        )
    return CampaignResult(
        controller_name=controller.name,
        episodes=episodes,
        summary=summarize(episodes),
    )
