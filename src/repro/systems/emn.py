"""The EMN e-commerce system of Figure 4 and Section 5.

A three-tier deployment of AT&T's enterprise messaging network platform:

* front-end gateways — HTTP gateway ``HG`` (host A) and voice gateway
  ``VG`` (host B), serving 80 % and 20 % of the traffic respectively;
* application tier — EMN servers ``S1`` (host A) and ``S2`` (host B), with
  both gateways load-balancing 50/50 across them;
* back-end — the Oracle database ``DB`` (host C), needed by every request.

The model has a null state plus 13 fault states (5 component crashes,
3 host crashes, 5 zombies), restart/reboot/observe actions with the paper's
durations (host reboot 5 min, DB restart 4 min, VG restart 2 min, HG/EMN
server restart 1 min, monitor execution 5 s), and the 5-component-monitor +
2-path-monitor observation model.  The system lacks recovery notification —
"an 'all clear' by the monitors might just mean that an EMN server has
become a zombie, but the path monitor requests were routed around it" — so
the terminate-action augmentation is applied with a 6-hour operator
response time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.recovery.builder import RecoveryModelBuilder
from repro.recovery.model import RecoveryModel
from repro.systems.components import Component, Deployment, Host
from repro.systems.faults import Fault, FaultKind, unavailable_components
from repro.systems.monitors import (
    ComponentMonitor,
    PathMonitor,
    observation_labels,
    observation_matrix,
)
from repro.systems.workload import RequestPath, check_fractions, drop_fraction

#: The paper's action durations, in seconds.
RESTART_DURATIONS = {"HG": 60.0, "VG": 120.0, "S1": 60.0, "S2": 60.0, "DB": 240.0}
REBOOT_DURATION = 300.0
MONITOR_DURATION = 5.0
#: The paper's operator response time: 6 hours.
OPERATOR_RESPONSE_TIME = 6 * 3600.0

#: Monitor-quality defaults.  The paper states no coverage numbers; its
#: Table 1 "actions" column (1.20 recovery actions per fault for the
#: bounded controller — the theoretical floor given that zombie(S1) and
#: zombie(S2) are observationally indistinguishable) implies essentially
#: deterministic probes, so both path monitors report the outcome of their
#: probe exactly.  The knobs remain for the monitor-quality ablation.
PATH_MONITOR_COVERAGE = 1.0
PATH_MONITOR_FALSE_POSITIVE = 0.0
#: Requests consumed by one execution of the monitor suite (the path
#: monitors' synthetic probes are real requests).  Gives every action a
#: strictly negative reward outside S_phi — the "no free actions" premise
#: of Property 1(a) — so terminate-vs-linger is decided by economics rather
#: than floating-point ties.
MONITOR_PROBE_COST = 2.5


@dataclass(frozen=True)
class EMNSystem:
    """The generated recovery model plus the metadata experiments need.

    Attributes:
        model: the augmented recovery model (no recovery notification).
        deployment: hosts and components of Figure 4.
        monitors: the 7-monitor suite, in observation bit order.
        paths: the HTTP and voice request classes.
        state_faults: per *original* state, the active fault (None = null).
        observe_action: index of the passive monitor-invocation action.
    """

    model: RecoveryModel
    deployment: Deployment
    monitors: tuple
    paths: tuple[RequestPath, ...]
    state_faults: tuple[Fault | None, ...]
    observe_action: int

    def fault_states(self, *kinds: FaultKind) -> np.ndarray:
        """Indices of states whose fault is one of ``kinds`` (all if empty).

        Table 1 injects only zombie faults ("because they are difficult to
        diagnose"): ``system.fault_states(FaultKind.ZOMBIE)``.
        """
        wanted = set(kinds) if kinds else set(FaultKind)
        return np.array(
            [
                index
                for index, fault in enumerate(self.state_faults)
                if fault is not None and fault.kind in wanted
            ],
            dtype=int,
        )


def _build_deployment() -> Deployment:
    hosts = (
        Host("hostA", reboot_duration=REBOOT_DURATION),
        Host("hostB", reboot_duration=REBOOT_DURATION),
        Host("hostC", reboot_duration=REBOOT_DURATION),
    )
    components = (
        Component("HG", host="hostA", restart_duration=RESTART_DURATIONS["HG"]),
        Component("VG", host="hostB", restart_duration=RESTART_DURATIONS["VG"]),
        Component("S1", host="hostA", restart_duration=RESTART_DURATIONS["S1"]),
        Component("S2", host="hostB", restart_duration=RESTART_DURATIONS["S2"]),
        Component("DB", host="hostC", restart_duration=RESTART_DURATIONS["DB"]),
    )
    return Deployment(hosts=hosts, components=components)


def _build_paths(http_fraction: float) -> tuple[RequestPath, ...]:
    paths = (
        RequestPath(
            name="http",
            fraction=http_fraction,
            fixed=("HG", "DB"),
            balanced=("S1", "S2"),
        ),
        RequestPath(
            name="voice",
            fraction=1.0 - http_fraction,
            fixed=("VG", "DB"),
            balanced=("S1", "S2"),
        ),
    )
    check_fractions(paths)
    return paths


def _build_states(include_crash_faults: bool) -> tuple[Fault | None, ...]:
    faults: list[Fault | None] = [None]
    if include_crash_faults:
        faults += [
            Fault(FaultKind.CRASH, name) for name in ("HG", "VG", "S1", "S2", "DB")
        ]
        faults += [
            Fault(FaultKind.HOST_CRASH, name)
            for name in ("hostA", "hostB", "hostC")
        ]
    faults += [
        Fault(FaultKind.ZOMBIE, name) for name in ("HG", "VG", "S1", "S2", "DB")
    ]
    return tuple(faults)


def _fixes(action_kind: str, target: str, deployment: Deployment) -> set[str]:
    """Labels of the fault states an action repairs (deterministically)."""
    if action_kind == "restart":
        return {f"crash({target})", f"zombie({target})"}
    repaired = {f"host_crash({target})"}
    for component in deployment.components_on(target):
        repaired.add(f"crash({component})")
        repaired.add(f"zombie({component})")
    return repaired


def build_emn_system(
    operator_response_time: float = OPERATOR_RESPONSE_TIME,
    http_fraction: float = 0.8,
    monitor_duration: float = MONITOR_DURATION,
    monitor_probe_cost: float = MONITOR_PROBE_COST,
    component_monitor_coverage: float = 1.0,
    component_monitor_false_positive: float = 0.0,
    path_monitor_coverage: float = PATH_MONITOR_COVERAGE,
    path_monitor_false_positive: float = PATH_MONITOR_FALSE_POSITIVE,
    include_crash_faults: bool = True,
    backend: str = "dense",
) -> EMNSystem:
    """Generate the EMN recovery model with the paper's parameters.

    Every parameter defaults to the value Section 5 states; the knobs exist
    for the ablation experiments (monitor-quality sweeps, ``t_op`` sweeps)
    and for users adapting the model.

    Args:
        operator_response_time: ``t_op`` for the termination rewards.
        http_fraction: share of HTTP traffic (voice gets the rest).
        monitor_duration: seconds one execution of the monitor suite takes;
            appended to every action (the controller "invokes the monitors
            again" after each action, Section 4).
        monitor_probe_cost: requests consumed per monitor-suite execution
            (see :data:`MONITOR_PROBE_COST`); added to every action's cost.
        component_monitor_coverage / _false_positive: ping-monitor quality.
        path_monitor_coverage / _false_positive: path-monitor quality.
        include_crash_faults: drop the crash/host-crash states to get the
            zombie-only 6-state reduced model used in some tests.
        backend: ``"dense"`` (default), ``"sparse"``, or ``"auto"``; the
            finished model is converted losslessly, so both backends drive
            identical campaigns (same fingerprints).
    """
    deployment = _build_deployment()
    paths = _build_paths(http_fraction)
    state_faults = _build_states(include_crash_faults)

    monitors = tuple(
        ComponentMonitor(
            name=f"{name}Mon",
            component=name,
            coverage=component_monitor_coverage,
            false_positive_rate=component_monitor_false_positive,
        )
        for name in ("HG", "VG", "S1", "S2", "DB")
    ) + (
        PathMonitor(
            name="HPathMon",
            path=paths[0],
            coverage=path_monitor_coverage,
            false_positive_rate=path_monitor_false_positive,
        ),
        PathMonitor(
            name="VPathMon",
            path=paths[1],
            coverage=path_monitor_coverage,
            false_positive_rate=path_monitor_false_positive,
        ),
    )

    def rate(fault: Fault | None, extra_down: frozenset[str] = frozenset()) -> float:
        unavailable = unavailable_components(fault, deployment) | extra_down
        return drop_fraction(paths, unavailable)

    builder = RecoveryModelBuilder()
    state_label = {}
    for index, fault in enumerate(state_faults):
        label = "null" if fault is None else fault.label
        state_label[index] = label
        builder.add_state(label, rate_cost=0.0 if fault is None else rate(fault),
                          null=fault is None)

    actions: list[tuple[str, str, str, float]] = []  # (label, kind, target, t_a)
    for component in deployment.components:
        actions.append(
            (f"restart({component.name})", "restart", component.name,
             component.restart_duration)
        )
    for host in deployment.hosts:
        actions.append((f"reboot({host.name})", "reboot", host.name,
                        host.reboot_duration))

    for label, kind, target, exec_time in actions:
        repaired = _fixes(kind, target, deployment)
        down = (
            frozenset({target})
            if kind == "restart"
            else frozenset(deployment.components_on(target))
        )
        transitions = {}
        costs = {}
        for index, fault in enumerate(state_faults):
            origin = state_label[index]
            fixed = origin in repaired
            if fixed:
                transitions[origin] = {"null": 1.0}
            after = None if (fixed or fault is None) else fault
            costs[origin] = (
                rate(fault, extra_down=down) * exec_time
                + rate(after) * monitor_duration
                + monitor_probe_cost
            )
        builder.add_action(
            label,
            duration=exec_time + monitor_duration,
            transitions=transitions,
            costs=costs,
        )

    builder.add_action(
        "observe",
        duration=monitor_duration,
        costs={
            state_label[index]: rate(fault) * monitor_duration
            + monitor_probe_cost
            for index, fault in enumerate(state_faults)
        },
        passive=True,
    )

    matrix = observation_matrix(monitors, state_faults, deployment)
    builder.set_observation_matrix(observation_labels(monitors), matrix)

    model = builder.build(
        recovery_notification=False,
        operator_response_time=operator_response_time,
        backend=backend,
    )
    return EMNSystem(
        model=model,
        deployment=deployment,
        monitors=monitors,
        paths=paths,
        state_faults=state_faults,
        observe_action=model.pomdp.action_index("observe"),
    )
