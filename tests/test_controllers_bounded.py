"""Tests for the bounded controller, including the termination property."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bounded import BoundedController
from repro.sim.campaign import run_campaign, run_episode
from repro.sim.environment import RecoveryEnvironment


class TestConstruction:
    def test_default_seeds_ra_bound(self, simple_system):
        controller = BoundedController(simple_system.model)
        assert len(controller.bound_set) == 1
        expected = ra_bound_vector(simple_system.model.pomdp)
        assert np.allclose(controller.bound_set.vectors[0], expected)

    def test_shared_bound_set(self, simple_system):
        bound_set = BoundVectorSet(ra_bound_vector(simple_system.model.pomdp))
        controller = BoundedController(simple_system.model, bound_set=bound_set)
        assert controller.bound_set is bound_set

    def test_invalid_depth_rejected(self, simple_system):
        with pytest.raises(ValueError):
            BoundedController(simple_system.model, depth=0)


class TestDecisions:
    def test_repairs_certain_fault(self, simple_system):
        controller = BoundedController(simple_system.model, depth=1)
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.fault_a] = 1.0
        controller.reset(initial_belief=belief)
        decision = controller.decide()
        assert decision.action == simple_system.model.pomdp.action_index(
            "restart(a)"
        )

    def test_terminates_when_certainly_recovered(self, simple_system):
        controller = BoundedController(simple_system.model, depth=1)
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.null_state] = 1.0
        controller.reset(initial_belief=belief)
        decision = controller.decide()
        assert decision.is_terminate

    def test_tree_value_reported(self, simple_system):
        controller = BoundedController(simple_system.model, depth=1)
        controller.reset()
        decision = controller.decide()
        assert decision.value is not None
        assert decision.value <= 0.0


class TestOnlineRefinement:
    def test_refinement_grows_bound_set(self, simple_system):
        controller = BoundedController(
            simple_system.model, depth=1, refine_min_improvement=1e-6
        )
        environment = RecoveryEnvironment(simple_system.model, seed=0)
        run_episode(controller, environment, simple_system.fault_a)
        assert len(controller.bound_set) > 1

    def test_refinement_can_be_disabled(self, simple_system):
        controller = BoundedController(
            simple_system.model, depth=1, refine_online=False
        )
        environment = RecoveryEnvironment(simple_system.model, seed=0)
        run_episode(controller, environment, simple_system.fault_a)
        assert len(controller.bound_set) == 1


class TestTerminationProperty:
    """Property 1: the controller terminates after finitely many actions,
    and (Table 1's observation) never before actually recovering."""

    def test_simple_system_many_episodes(self, simple_system):
        controller = BoundedController(simple_system.model, depth=1)
        result = run_campaign(
            controller,
            fault_states=np.array(
                [simple_system.fault_a, simple_system.fault_b]
            ),
            injections=100,
            seed=3,
            max_steps=200,
        )
        assert all(episode.terminated for episode in result.episodes)
        assert result.summary.early_terminations == 0
        assert result.summary.unrecovered == 0

    def test_emn_zombie_episodes(self, emn_system):
        from repro.systems.faults import FaultKind

        controller = BoundedController(emn_system.model, depth=1)
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
            injections=25,
            seed=11,
            monitor_tail=5.0,
        )
        assert all(episode.terminated for episode in result.episodes)
        assert result.summary.early_terminations == 0

    def test_notified_model_stops_on_certain_recovery(
        self, simple_notified_system
    ):
        controller = BoundedController(simple_notified_system.model, depth=1)
        result = run_campaign(
            controller,
            fault_states=np.array(
                [
                    simple_notified_system.fault_a,
                    simple_notified_system.fault_b,
                ]
            ),
            injections=40,
            seed=4,
        )
        assert result.summary.unrecovered == 0
        assert all(episode.terminated for episode in result.episodes)


class TestDepthTwo:
    def test_depth_two_runs_and_recovers(self, simple_system):
        controller = BoundedController(simple_system.model, depth=2)
        result = run_campaign(
            controller,
            fault_states=np.array([simple_system.fault_a]),
            injections=10,
            seed=6,
        )
        assert result.summary.unrecovered == 0
