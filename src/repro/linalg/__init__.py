"""Array-backend abstraction for the model core.

``repro.linalg`` lets every belief-side operation run on either dense
ndarrays (the original representation) or sparse shared-structure
containers built on ``scipy.sparse`` CSR — the representation that makes
online decisions feasible on the 300,002-state tiered system where the
dense tensors would need hundreds of terabytes.

* :mod:`repro.linalg.containers` — :class:`SparseTransitions`,
  :class:`SparseObservations`, :class:`StructuredRewards`.
* :mod:`repro.linalg.backends` — ``DenseBackend`` / ``SparseBackend``,
  the ``backend="auto"`` selection heuristic, and lossless
  dense<->sparse conversion.
* :mod:`repro.linalg.ops` — dispatch functions used by the belief, tree,
  bounds, recovery and simulation layers.
"""

from repro.linalg.backends import (
    Backend,
    DenseBackend,
    SparseBackend,
    backend_of,
    densify_observations,
    densify_rewards,
    densify_transitions,
    resolve_backend,
    sparsify_observations,
    sparsify_rewards,
    sparsify_transitions,
    transition_density,
)
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.linalg.ops import (
    as_dense_chain,
    is_sparse_transitions,
    mean_transition_matrix,
    observation_column,
    observation_matrix,
    observation_matrix_dense,
    observation_probabilities_from_predicted,
    observation_row,
    predict,
    reward_column,
    reward_row,
    reward_scalar,
    rewards_matvec,
    rewards_max_value,
    rewards_mean_over_actions,
    transition_matrix_dense,
    transition_matvec,
    transition_row,
    union_transition_matrix,
)

__all__ = [
    "Backend",
    "DenseBackend",
    "SparseBackend",
    "SparseObservations",
    "SparseTransitions",
    "StructuredRewards",
    "as_dense_chain",
    "backend_of",
    "densify_observations",
    "densify_rewards",
    "densify_transitions",
    "is_sparse_transitions",
    "mean_transition_matrix",
    "observation_column",
    "observation_matrix",
    "observation_matrix_dense",
    "observation_probabilities_from_predicted",
    "observation_row",
    "predict",
    "resolve_backend",
    "reward_column",
    "reward_row",
    "reward_scalar",
    "rewards_matvec",
    "rewards_max_value",
    "rewards_mean_over_actions",
    "sparsify_observations",
    "sparsify_rewards",
    "sparsify_transitions",
    "transition_density",
    "transition_matrix_dense",
    "transition_matvec",
    "transition_row",
    "union_transition_matrix",
]
