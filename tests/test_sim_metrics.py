"""Tests for per-fault metrics and aggregation."""

import numpy as np
import pytest

from repro.sim.metrics import EpisodeMetrics, metrics_field_names, summarize


def episode(**overrides) -> EpisodeMetrics:
    defaults = dict(
        fault_state=1,
        cost=10.0,
        recovery_time=20.0,
        residual_time=15.0,
        algorithm_time=0.002,
        actions=2,
        monitor_calls=5,
        recovered=True,
        terminated=True,
        steps=7,
    )
    defaults.update(overrides)
    return EpisodeMetrics(**defaults)


class TestEpisodeMetrics:
    def test_early_termination_flag(self):
        assert episode(recovered=False).early_termination
        assert not episode().early_termination
        assert not episode(terminated=False, recovered=False).early_termination


class TestSummarize:
    def test_means(self):
        summary = summarize([episode(cost=10.0), episode(cost=30.0)])
        assert summary.episodes == 2
        assert np.isclose(summary.cost, 20.0)
        assert np.isclose(summary.recovery_time, 20.0)

    def test_algorithm_time_reported_in_ms(self):
        summary = summarize([episode(algorithm_time=0.002)])
        assert np.isclose(summary.algorithm_time_ms, 2.0)

    def test_early_and_unrecovered_counts(self):
        episodes = [
            episode(),
            episode(recovered=False),
            episode(recovered=False, terminated=False),
        ]
        summary = summarize(episodes)
        assert summary.early_terminations == 1
        assert summary.unrecovered == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_layout(self):
        summary = summarize([episode()])
        row = summary.as_row("some controller")
        assert row[0] == "some controller"
        assert len(row) == 7


class TestFieldNames:
    def test_contains_table1_columns(self):
        names = metrics_field_names()
        for column in ("cost", "recovery_time", "residual_time",
                       "algorithm_time", "actions", "monitor_calls"):
            assert column in names
