"""Tests for the Max-Avg lookahead tree (Figure 1(b))."""

import numpy as np
import pytest

from repro.pomdp.belief import belief_bellman_backup
from repro.pomdp.tree import expand_tree
from tests.conftest import random_pomdp
from tests.test_pomdp_model import tiny_pomdp


class ZeroLeaf:
    def value(self, belief):
        return 0.0

    def value_batch(self, beliefs):
        return np.zeros(np.atleast_2d(beliefs).shape[0])


class LinearLeaf:
    """pi . w — a single-hyperplane leaf for cross-checks."""

    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=float)

    def value(self, belief):
        return float(belief @ self.weights)

    def value_batch(self, beliefs):
        return np.atleast_2d(beliefs) @ self.weights


class TestDepthOne:
    def test_equals_bellman_backup(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.5, 0.5])
        leaf = LinearLeaf([-2.0, 0.0])
        decision = expand_tree(pomdp, belief, depth=1, leaf=leaf)
        direct = belief_bellman_backup(pomdp, belief, leaf.value)
        assert np.isclose(decision.value, direct)

    def test_picks_repair_in_fault_belief(self):
        pomdp = tiny_pomdp()
        decision = expand_tree(
            pomdp, np.array([1.0, 0.0]), depth=1, leaf=LinearLeaf([-2.0, 0.0])
        )
        assert decision.action == 0  # repair beats idle (-0.5 vs -1-2)

    def test_action_values_complete(self):
        pomdp = tiny_pomdp()
        decision = expand_tree(
            pomdp, np.array([0.5, 0.5]), depth=1, leaf=ZeroLeaf()
        )
        assert decision.action_values.shape == (pomdp.n_actions,)
        assert np.isfinite(decision.action_values).all()

    def test_counts_leaves(self):
        pomdp = tiny_pomdp()
        decision = expand_tree(
            pomdp, np.array([0.5, 0.5]), depth=1, leaf=ZeroLeaf()
        )
        assert decision.leaf_evaluations > 0
        assert decision.nodes == 1


class TestAllowedActions:
    def test_masked_action_excluded(self):
        pomdp = tiny_pomdp()
        allowed = np.array([False, True])
        decision = expand_tree(
            pomdp,
            np.array([1.0, 0.0]),
            depth=1,
            leaf=ZeroLeaf(),
            allowed_actions=allowed,
        )
        assert decision.action == 1
        assert decision.action_values[0] == -np.inf

    def test_mask_only_applies_to_root(self):
        pomdp = tiny_pomdp()
        allowed = np.array([False, True])
        # Depth 2: the inner node may still use action 0, which the root value
        # of action 1 benefits from — just check it runs and yields finite v.
        decision = expand_tree(
            pomdp,
            np.array([1.0, 0.0]),
            depth=2,
            leaf=ZeroLeaf(),
            allowed_actions=allowed,
        )
        assert np.isfinite(decision.value)


class TestDeeperTrees:
    def test_depth_two_matches_nested_backup(self):
        pomdp = tiny_pomdp()
        belief = np.array([0.6, 0.4])
        leaf = LinearLeaf([-3.0, -0.1])
        decision = expand_tree(pomdp, belief, depth=2, leaf=leaf)
        nested = belief_bellman_backup(
            pomdp,
            belief,
            lambda b: belief_bellman_backup(pomdp, b, leaf.value),
        )
        assert np.isclose(decision.value, nested, atol=1e-10)

    def test_deeper_never_worse_with_zero_leaf_upper_bound(self):
        # With the trivial zero *upper* bound at the leaves, value estimates
        # shrink (get more realistic) as depth grows: more real costs folded.
        pomdp = tiny_pomdp()
        belief = np.array([0.5, 0.5])
        v1 = expand_tree(pomdp, belief, depth=1, leaf=ZeroLeaf()).value
        v2 = expand_tree(pomdp, belief, depth=2, leaf=ZeroLeaf()).value
        assert v2 <= v1 + 1e-12

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            expand_tree(
                tiny_pomdp(), np.array([0.5, 0.5]), depth=0, leaf=ZeroLeaf()
            )


class TestMonotonicityInLeaf:
    def test_better_leaf_never_lowers_root(self):
        rng = np.random.default_rng(5)
        pomdp = random_pomdp(rng)
        belief = rng.dirichlet(np.ones(pomdp.n_states))
        low = LinearLeaf(-rng.uniform(1, 3, size=pomdp.n_states))
        high = LinearLeaf(low.weights + rng.uniform(0, 1, size=pomdp.n_states))
        v_low = expand_tree(pomdp, belief, depth=2, leaf=low).value
        v_high = expand_tree(pomdp, belief, depth=2, leaf=high).value
        assert v_high >= v_low - 1e-9


class TestFusedSparseKernels:
    """The batched and looped fused depth-1 kernels agree with each other
    and with the generic expansion, branch bookkeeping included."""

    @staticmethod
    def _setup(seed=3, n_vectors=4):
        from repro.bounds.ra_bound import ra_bound_vector
        from repro.systems.tiered import build_tiered_system

        system = build_tiered_system(replicas=(2, 2, 2), backend="sparse")
        pomdp = system.model.pomdp
        rng = np.random.default_rng(seed)
        seed_vector = ra_bound_vector(pomdp)
        stack = [seed_vector]
        for _ in range(n_vectors - 1):
            stack.append(seed_vector - rng.uniform(0.0, 2.0, pomdp.n_states))
        belief = rng.dirichlet(np.ones(pomdp.n_states))
        return pomdp, belief, np.array(stack)

    @staticmethod
    def _leaf(stack):
        from repro.bounds.vector_set import BoundVectorSet

        return BoundVectorSet(stack)

    def test_batched_matches_looped_kernel(self):
        from repro.pomdp.tree import (
            _expand_depth1_sparse_batched,
            _expand_depth1_sparse_looped,
        )

        pomdp, belief, stack = self._setup()
        vectors = np.atleast_2d(stack)
        batched_leaf, looped_leaf = self._leaf(stack), self._leaf(stack)
        batched = _expand_depth1_sparse_batched(
            pomdp, belief, vectors, batched_leaf, None
        )
        looped = _expand_depth1_sparse_looped(
            pomdp, belief, vectors, looped_leaf, None
        )
        assert batched.action == looped.action
        np.testing.assert_allclose(
            batched.action_values, looped.action_values, atol=1e-12
        )
        assert batched.leaf_evaluations == looped.leaf_evaluations
        assert batched.nodes == looped.nodes == 1
        np.testing.assert_array_equal(
            batched_leaf._usage, looped_leaf._usage
        )

    def test_kernels_match_generic_expansion(self):
        from repro.pomdp.tree import (
            _expand_depth1_batched,
            _expand_depth1_sparse_batched,
        )

        pomdp, belief, stack = self._setup(seed=11)
        vectors = np.atleast_2d(stack)
        fused = _expand_depth1_sparse_batched(
            pomdp, belief, vectors, self._leaf(stack), None
        )
        generic = _expand_depth1_batched(
            pomdp, belief, self._leaf(stack), None, cache=None
        )
        assert fused.action == generic.action
        np.testing.assert_allclose(
            fused.action_values, generic.action_values, atol=1e-10
        )
        assert fused.leaf_evaluations == generic.leaf_evaluations

    def test_action_mask_respected_by_both_kernels(self):
        from repro.pomdp.tree import (
            _expand_depth1_sparse_batched,
            _expand_depth1_sparse_looped,
        )

        pomdp, belief, stack = self._setup(seed=7)
        vectors = np.atleast_2d(stack)
        mask = np.ones(pomdp.n_actions, dtype=bool)
        mask[::2] = False
        batched = _expand_depth1_sparse_batched(
            pomdp, belief, vectors, self._leaf(stack), mask
        )
        looped = _expand_depth1_sparse_looped(
            pomdp, belief, vectors, self._leaf(stack), mask
        )
        assert np.all(np.isneginf(batched.action_values[~mask]))
        np.testing.assert_allclose(
            batched.action_values, looped.action_values, atol=1e-12
        )
        assert mask[batched.action]
        assert batched.leaf_evaluations == looped.leaf_evaluations

    def test_cache_budget_decline_falls_back_to_looped(self, monkeypatch):
        """REPRO_MAX_CACHE_BYTES=0 declines both the joint cache and the
        batched block; expand_tree then runs the fused looped kernel and
        still agrees with the unconstrained decision."""
        from repro.pomdp.cache import MAX_CACHE_BYTES_ENV, clear_caches
        from repro.obs.telemetry import session

        pomdp, belief, stack = self._setup(seed=19)
        clear_caches()
        free = expand_tree(pomdp, belief, depth=1, leaf=self._leaf(stack))
        monkeypatch.setenv(MAX_CACHE_BYTES_ENV, "0")
        clear_caches()
        with session() as telemetry:
            constrained = expand_tree(
                pomdp, belief, depth=1, leaf=self._leaf(stack)
            )
        assert constrained.action == free.action
        np.testing.assert_allclose(
            constrained.action_values, free.action_values, atol=1e-10
        )
        counters = dict(telemetry.process_counters)
        assert counters.get("cache.declines", 0) >= 1
        events = [
            r
            for r in telemetry.snapshot().events
            if r["event"] == "cache_decline"
        ]
        assert any(r.get("kind") == "tree.depth1_block" for r in events)
        clear_caches()
