"""The oracle controller (Section 5) — the unattainable ideal.

"A hypothetical controller that knows the fault in the system, and can
always recover from it via a single action."  It exists to put a floor under
Table 1: no diagnosing controller can beat it.  The campaign driver feeds it
the ground-truth state through :meth:`sync_true_state`, the hook every
honest controller ignores; it makes no monitor calls at all
(``uses_monitors`` is False), matching the zeros in its Table 1 row.
"""

from __future__ import annotations

import numpy as np

from repro.controllers.base import Decision, RecoveryController
from repro.controllers.most_likely import cheapest_fixing_actions
from repro.exceptions import ControllerError
from repro.recovery.model import RecoveryModel


class OracleController(RecoveryController):
    """Knows the true fault; repairs it with the single cheapest action."""

    #: The campaign skips monitor invocations for controllers that opt out.
    uses_monitors: bool = False

    def __init__(self, model: RecoveryModel, preflight: bool = False):
        super().__init__(model, preflight=preflight)
        self._fixing_action = cheapest_fixing_actions(model)
        self._true_state: int | None = None
        self.name = "oracle"

    def _on_reset(self) -> None:
        self._true_state = None

    def sync_true_state(self, state: int) -> None:
        """Receive the ground truth the campaign exposes only to the oracle."""
        self._true_state = int(state)

    def _decide(self, belief: np.ndarray) -> Decision:
        if self._true_state is None:
            raise ControllerError(
                "oracle controller was never given the true state; the "
                "campaign must call sync_true_state() after reset"
            )
        if self.model.is_recovered(self._true_state):
            return self._terminate_decision()
        return Decision(action=self._fixing_action[self._true_state])
