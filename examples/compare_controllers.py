"""Controller shoot-out on the EMN system — a miniature of Table 1.

Compares the paper's four controller families over the same sequence of
injected zombie faults: the Bayes most-likely baseline, the heuristic
lookahead controller of [8], the bounded controller (this paper), and the
omniscient oracle.

Run:  python examples/compare_controllers.py [injections]
"""

import sys

from repro import (
    BoundedController,
    HeuristicController,
    MostLikelyController,
    OracleController,
    bootstrap_bounds,
    build_emn_system,
    run_campaign,
)
from repro.systems import FaultKind
from repro.util import render_table

SEED = 7


def main(injections: int = 100) -> None:
    system = build_emn_system()
    zombies = system.fault_states(FaultKind.ZOMBIE)

    bound_set, _ = bootstrap_bounds(
        system.model, iterations=10, depth=2, variant="average", seed=0
    )
    controllers = [
        MostLikelyController(system.model),
        HeuristicController(system.model, depth=1),
        HeuristicController(system.model, depth=2),
        BoundedController(
            system.model, depth=1, bound_set=bound_set,
            refine_min_improvement=1.0,
        ),
        OracleController(system.model),
    ]

    rows = []
    for controller in controllers:
        result = run_campaign(
            controller,
            fault_states=zombies,
            injections=injections,
            seed=SEED,
            monitor_tail=5.0,
        )
        rows.append(result.summary.as_row(controller.name))

    print(
        render_table(
            ["Algorithm", "Cost", "Recovery (s)", "Residual (s)",
             "Algo (ms)", "Actions", "Monitor calls"],
            rows,
            title=(
                f"Per-fault averages over {injections} zombie injections "
                "(cf. Table 1 of the paper)"
            ),
        )
    )
    print()
    print("Expected orderings (Section 5): oracle < bounded < heuristics < "
          "most-likely on cost; bounded needs no termination-probability "
          "parameter and recovers fastest among the diagnosing controllers.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
