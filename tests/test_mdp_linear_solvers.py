"""Tests for repro.mdp.linear_solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DivergenceError, NotConvergedError
from repro.mdp.linear_solvers import (
    SPARSE_DENSITY_CUTOFF,
    SPARSE_MIN_STATES,
    chain_density,
    gauss_seidel,
    jacobi,
    select_method,
    solve_direct,
    solve_markov_reward,
    solve_sparse,
)
from repro.util.validation import SUM_ATOL

# Absorbing chain: state 0 -> {0 w.p. .5, 1 w.p. .5}, state 1 absorbing.
CHAIN = np.array([[0.5, 0.5], [0.0, 1.0]])
REWARD = np.array([-1.0, 0.0])
# Expected accumulated reward from state 0: -1 * E[steps] = -2.
EXPECTED = np.array([-2.0, 0.0])


class TestAgreementAcrossSolvers:
    def test_gauss_seidel(self):
        assert np.allclose(gauss_seidel(CHAIN, REWARD), EXPECTED, atol=1e-8)

    def test_jacobi(self):
        assert np.allclose(jacobi(CHAIN, REWARD), EXPECTED, atol=1e-8)

    def test_direct_with_transient_mask(self):
        out = solve_direct(
            CHAIN, REWARD, transient_states=np.array([True, False])
        )
        assert np.allclose(out, EXPECTED, atol=1e-10)

    def test_front_door_dispatch(self):
        for method in ("gauss-seidel", "jacobi"):
            out = solve_markov_reward(CHAIN, REWARD, method=method)
            assert np.allclose(out, EXPECTED, atol=1e-8)
        out = solve_markov_reward(
            CHAIN,
            REWARD,
            method="direct",
            transient_states=np.array([True, False]),
        )
        assert np.allclose(out, EXPECTED, atol=1e-8)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            solve_markov_reward(CHAIN, REWARD, method="magic")


class TestSOR:
    def test_over_relaxation_converges_to_same_answer(self):
        for omega in (0.8, 1.0, 1.3):
            out = gauss_seidel(CHAIN, REWARD, omega=omega)
            assert np.allclose(out, EXPECTED, atol=1e-8)

    def test_invalid_omega_rejected(self):
        with pytest.raises(ValueError, match="omega"):
            gauss_seidel(CHAIN, REWARD, omega=2.5)


class TestDiscounted:
    def test_discounted_absorbing_with_reward(self):
        # Recurrent state with reward -1 and discount 0.5: value = -2.
        chain = np.array([[1.0]])
        reward = np.array([-1.0])
        for solver in (gauss_seidel, jacobi):
            out = solver(chain, reward, discount=0.5)
            assert np.allclose(out, [-2.0], atol=1e-8)
        out = solve_direct(chain, reward, discount=0.5)
        assert np.allclose(out, [-2.0], atol=1e-10)


class TestDivergence:
    def test_absorbing_reward_state_diverges(self):
        chain = np.array([[1.0]])
        reward = np.array([-1.0])
        with pytest.raises(DivergenceError):
            gauss_seidel(chain, reward)
        with pytest.raises(DivergenceError):
            jacobi(chain, reward)

    def test_recurrent_class_with_reward_diverges(self):
        # Two states cycling forever, both accruing cost.
        chain = np.array([[0.0, 1.0], [1.0, 0.0]])
        reward = np.array([-1.0, -1.0])
        with pytest.raises(DivergenceError):
            jacobi(chain, reward)

    def test_slow_linear_divergence_detected(self):
        # A long transient runway into a cost-accruing recurrent state:
        # residuals stall instead of blowing up; the stagnation check must
        # catch it within a couple of windows, not after 1e12 cost.
        chain = np.array([[0.9, 0.1], [0.0, 1.0]])
        reward = np.array([0.0, -0.001])
        with pytest.raises(DivergenceError):
            jacobi(chain, reward, max_iterations=50_000)


class TestDirectSolver:
    def test_no_transient_states_returns_zero(self):
        out = solve_direct(
            np.array([[1.0]]), np.array([0.0]),
            transient_states=np.array([False]),
        )
        assert np.allclose(out, [0.0])

    def test_full_solve_discounted(self):
        out = solve_direct(CHAIN, REWARD, discount=0.9)
        manual = np.linalg.solve(np.eye(2) - 0.9 * CHAIN, REWARD)
        assert np.allclose(out, manual)


class TestSparseBackend:
    def test_sparse_matches_direct(self):
        mask = np.array([True, False])
        assert np.allclose(
            solve_sparse(CHAIN, REWARD, transient_states=mask),
            solve_direct(CHAIN, REWARD, transient_states=mask),
            atol=1e-10,
        )

    def test_accepts_scipy_sparse_input(self):
        mask = np.array([True, False])
        out = solve_sparse(
            sp.csr_matrix(CHAIN), REWARD, transient_states=mask
        )
        assert np.allclose(out, EXPECTED, atol=1e-10)

    def test_no_transient_states_returns_zero(self):
        out = solve_sparse(
            np.array([[1.0]]), np.array([0.0]),
            transient_states=np.array([False]),
        )
        assert np.allclose(out, [0.0])

    def test_inconsistent_singular_system_raises(self):
        # Absorbing state with non-zero reward and no transient mask: the
        # factorisation is singular and no solution exists, so the LGMRES
        # fallback must fail loudly instead of returning garbage.
        with pytest.raises(NotConvergedError):
            solve_sparse(CHAIN, np.array([-1.0, 5.0]), maxiter=200)

    @pytest.mark.parametrize("seed", range(5))
    def test_property_sparse_agrees_with_dense_solvers(self, seed):
        """Random discounted chains: every backend lands within SUM_ATOL."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 12))
        chain = rng.dirichlet(np.ones(n), size=n)
        reward = -rng.uniform(0.0, 3.0, size=n)
        discount = float(rng.uniform(0.5, 0.99))
        dense = gauss_seidel(chain, reward, discount=discount, tol=1e-12)
        sparse = solve_sparse(chain, reward, discount=discount)
        assert np.max(np.abs(dense - sparse)) < SUM_ATOL

    @pytest.mark.parametrize("seed", range(3))
    def test_property_sparse_agrees_undiscounted_absorbing(self, seed):
        """Random undiscounted absorbing chains with the transient mask."""
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(3, 10))
        chain = rng.dirichlet(np.ones(n + 1), size=n)
        # Last column is absorption mass into a zero-reward sink state.
        full = np.zeros((n + 1, n + 1))
        full[:n] = chain
        full[n, n] = 1.0
        reward = np.append(-rng.uniform(0.1, 2.0, size=n), 0.0)
        mask = np.append(np.ones(n, dtype=bool), False)
        dense = gauss_seidel(full, reward, tol=1e-12)
        sparse = solve_sparse(full, reward, transient_states=mask)
        assert np.max(np.abs(dense - sparse)) < SUM_ATOL


class TestAutoSelection:
    def test_scipy_sparse_input_selects_sparse(self):
        assert select_method(sp.csr_matrix(CHAIN)) == "sparse"

    def test_small_dense_selects_gauss_seidel(self):
        assert select_method(CHAIN) == "gauss-seidel"

    def test_large_sparse_dense_array_selects_sparse(self):
        n = SPARSE_MIN_STATES
        chain = np.eye(n)
        assert chain_density(chain) <= SPARSE_DENSITY_CUTOFF
        assert select_method(chain) == "sparse"

    def test_large_dense_chain_stays_gauss_seidel(self):
        n = SPARSE_MIN_STATES
        chain = np.full((n, n), 1.0 / n)
        assert select_method(chain) == "gauss-seidel"

    def test_chain_density(self):
        assert chain_density(np.eye(4)) == 0.25
        assert chain_density(sp.eye(4, format="csr")) == 0.25
        assert chain_density(np.ones((2, 2))) == 1.0

    def test_front_door_auto_dispatch(self):
        out = solve_markov_reward(CHAIN, REWARD, method="auto")
        assert np.allclose(out, EXPECTED, atol=1e-8)
        mask = np.array([True, False])
        out = solve_markov_reward(
            sp.csr_matrix(CHAIN), REWARD, method="auto", transient_states=mask
        )
        assert np.allclose(out, EXPECTED, atol=1e-8)

    def test_iterative_solvers_accept_sparse_chains(self):
        sparse_chain = sp.csr_matrix(CHAIN)
        assert np.allclose(
            gauss_seidel(sparse_chain, REWARD), EXPECTED, atol=1e-8
        )
        assert np.allclose(jacobi(sparse_chain, REWARD), EXPECTED, atol=1e-8)
