"""Benchmarks regenerating Figure 5 (experiments E1 and E2 in DESIGN.md).

Figure 5(a): iterative lower-bound improvement at the uniform belief,
Random vs Average bootstrapping.  Figure 5(b): bound-vector growth.  Each
benchmark runs the full bootstrap trace and asserts the paper's qualitative
claims on the produced series, so a timing regression or a correctness
regression both fail here.
"""

import numpy as np
import pytest

from repro.controllers.bootstrap import bootstrap_bounds

ITERATIONS = 20


@pytest.mark.parametrize("variant", ["random", "average"])
def test_fig5a_bounds_improvement(benchmark, emn_system, variant):
    """E1 / Figure 5(a): 20 bootstrap iterations at depth 1."""

    def run():
        _, trace = bootstrap_bounds(
            emn_system.model,
            iterations=ITERATIONS,
            depth=1,
            variant=variant,
            seed=2006,
        )
        return trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    series = np.concatenate([[-trace.initial_bound], trace.cost_upper_bounds])
    # Paper claims: monotone improvement, rapid at first.
    assert np.all(np.diff(series) <= 1e-6)
    assert series[-1] < series[0] / 5
    benchmark.extra_info["initial_cost_bound"] = float(series[0])
    benchmark.extra_info["final_cost_bound"] = float(series[-1])
    benchmark.extra_info["series"] = [round(float(v), 1) for v in series]


@pytest.mark.parametrize("variant", ["random", "average"])
def test_fig5b_vector_growth(benchmark, emn_system, variant):
    """E2 / Figure 5(b): bound-vector count over bootstrap iterations."""

    def run():
        _, trace = bootstrap_bounds(
            emn_system.model,
            iterations=ITERATIONS,
            depth=1,
            variant=variant,
            seed=2006,
        )
        return trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    growth = np.diff(np.concatenate([[1], trace.vector_counts]))
    # At most one vector per incremental update (Section 4.1).
    assert np.all(growth <= trace.update_counts)
    benchmark.extra_info["final_vectors"] = int(trace.vector_counts[-1])
    benchmark.extra_info["counts"] = trace.vector_counts.tolist()
