"""Tests for the EMN system model (Figure 4 / Section 5 parameters)."""

import numpy as np
import pytest

from repro.systems.emn import (
    MONITOR_DURATION,
    MONITOR_PROBE_COST,
    OPERATOR_RESPONSE_TIME,
    build_emn_system,
)
from repro.systems.faults import FaultKind


class TestStructure:
    def test_state_count(self, emn_system):
        # null + 5 crashes + 3 host crashes + 5 zombies + s_T
        assert emn_system.model.pomdp.n_states == 15

    def test_action_count(self, emn_system):
        # 5 restarts + 3 reboots + observe + a_T
        assert emn_system.model.pomdp.n_actions == 10

    def test_observation_count(self, emn_system):
        assert emn_system.model.pomdp.n_observations == 2**7

    def test_no_recovery_notification(self, emn_system):
        assert not emn_system.model.recovery_notification
        assert emn_system.model.operator_response_time == OPERATOR_RESPONSE_TIME

    def test_fault_state_selector(self, emn_system):
        zombies = emn_system.fault_states(FaultKind.ZOMBIE)
        assert len(zombies) == 5
        labels = [emn_system.model.pomdp.state_labels[i] for i in zombies]
        assert all(label.startswith("zombie") for label in labels)
        assert len(emn_system.fault_states()) == 13

    def test_reduced_model_without_crashes(self, emn_zombie_system):
        assert emn_zombie_system.model.pomdp.n_states == 7  # null + 5 + s_T


class TestDropRates:
    """Hand-computed drop rates from the Figure 4 topology (Section 5)."""

    @pytest.mark.parametrize(
        "label, rate",
        [
            ("zombie(HG)", 0.8),
            ("zombie(VG)", 0.2),
            ("zombie(S1)", 0.5),
            ("zombie(S2)", 0.5),
            ("zombie(DB)", 1.0),
            ("crash(DB)", 1.0),
            ("host_crash(hostA)", 0.9),  # 0.8 + 0.5*0.2
            ("host_crash(hostB)", 0.6),  # 0.2 + 0.5*0.8
            ("host_crash(hostC)", 1.0),
            ("null", 0.0),
        ],
    )
    def test_state_rates(self, emn_system, label, rate):
        index = emn_system.model.pomdp.state_index(label)
        assert np.isclose(-emn_system.model.rate_rewards[index], rate)


class TestDurationsAndCosts:
    def test_durations_include_monitor_tail(self, emn_system):
        pomdp = emn_system.model.pomdp
        durations = emn_system.model.durations
        assert durations[pomdp.action_index("restart(DB)")] == 240.0 + MONITOR_DURATION
        assert durations[pomdp.action_index("reboot(hostA)")] == 300.0 + MONITOR_DURATION
        assert durations[pomdp.action_index("observe")] == MONITOR_DURATION
        assert durations[emn_system.model.terminate_action] == 0.0

    def test_correct_restart_cost(self, emn_system):
        """restart(S1) in zombie(S1): 0.5 drop for 60 s, then healthy tail."""
        pomdp = emn_system.model.pomdp
        action = pomdp.action_index("restart(S1)")
        state = pomdp.state_index("zombie(S1)")
        expected = -(0.5 * 60.0 + 0.0 * MONITOR_DURATION + MONITOR_PROBE_COST)
        assert np.isclose(pomdp.rewards[action, state], expected)

    def test_wrong_restart_cost_merges_unavailability(self, emn_system):
        """restart(S2) in zombie(S1): both EMN servers out => all dropped."""
        pomdp = emn_system.model.pomdp
        action = pomdp.action_index("restart(S2)")
        state = pomdp.state_index("zombie(S1)")
        expected = -(1.0 * 60.0 + 0.5 * MONITOR_DURATION + MONITOR_PROBE_COST)
        assert np.isclose(pomdp.rewards[action, state], expected)

    def test_observe_cost_tracks_state_rate(self, emn_system):
        pomdp = emn_system.model.pomdp
        observe = pomdp.action_index("observe")
        db_zombie = pomdp.state_index("zombie(DB)")
        expected = -(1.0 * MONITOR_DURATION + MONITOR_PROBE_COST)
        assert np.isclose(pomdp.rewards[observe, db_zombie], expected)

    def test_no_free_actions_outside_null(self, emn_system):
        """Property 1(a): |r(s,a)| > 0 for fault states (probe cost floor)."""
        model = emn_system.model
        pomdp = model.pomdp
        faults = np.flatnonzero(model.fault_states)
        original_actions = [
            a for a in range(pomdp.n_actions) if a != model.terminate_action
        ]
        assert np.all(np.abs(pomdp.rewards[np.ix_(original_actions, faults)]) > 0)

    def test_termination_rewards(self, emn_system):
        pomdp = emn_system.model.pomdp
        a_t = emn_system.model.terminate_action
        db_zombie = pomdp.state_index("zombie(DB)")
        assert np.isclose(
            pomdp.rewards[a_t, db_zombie], -1.0 * OPERATOR_RESPONSE_TIME
        )
        assert pomdp.rewards[a_t, pomdp.state_index("null")] == 0.0


class TestTransitions:
    def test_correct_restart_repairs_crash_and_zombie(self, emn_system):
        pomdp = emn_system.model.pomdp
        null = pomdp.state_index("null")
        restart = pomdp.action_index("restart(VG)")
        for label in ("crash(VG)", "zombie(VG)"):
            state = pomdp.state_index(label)
            assert pomdp.transitions[restart, state, null] == 1.0

    def test_wrong_restart_changes_nothing(self, emn_system):
        pomdp = emn_system.model.pomdp
        restart = pomdp.action_index("restart(VG)")
        state = pomdp.state_index("zombie(DB)")
        assert pomdp.transitions[restart, state, state] == 1.0

    def test_reboot_fixes_everything_on_host(self, emn_system):
        pomdp = emn_system.model.pomdp
        null = pomdp.state_index("null")
        reboot = pomdp.action_index("reboot(hostA)")
        for label in ("host_crash(hostA)", "crash(HG)", "zombie(HG)",
                      "crash(S1)", "zombie(S1)"):
            state = pomdp.state_index(label)
            assert pomdp.transitions[reboot, state, null] == 1.0
        # But not faults on other hosts.
        other = pomdp.state_index("zombie(S2)")
        assert pomdp.transitions[reboot, other, other] == 1.0


class TestObservability:
    def test_s1_s2_zombies_indistinguishable(self, emn_system):
        """Both path probes route 50/50, so the two EMN-server zombies have
        identical observation signatures — the irreducible ambiguity that
        forces the 1.2-actions floor in Table 1."""
        pomdp = emn_system.model.pomdp
        s1 = pomdp.state_index("zombie(S1)")
        s2 = pomdp.state_index("zombie(S2)")
        observe = pomdp.action_index("observe")
        assert np.allclose(
            pomdp.observations[observe, s1], pomdp.observations[observe, s2]
        )

    def test_zombies_invisible_to_component_monitors(self, emn_system):
        """In any zombie state, all five component monitors stay silent."""
        pomdp = emn_system.model.pomdp
        observe = pomdp.action_index("observe")
        zombie_hg = pomdp.state_index("zombie(HG)")
        distribution = pomdp.observations[observe, zombie_hg]
        # Reachable observations must all have the component bits clear:
        # component monitors are the first five label positions.
        for obs in np.flatnonzero(distribution > 0):
            label = pomdp.observation_labels[obs]
            parts = label.split(",")
            assert all("!" not in part for part in parts[:5]), label

    def test_db_zombie_fails_both_paths(self, emn_system):
        pomdp = emn_system.model.pomdp
        observe = pomdp.action_index("observe")
        db = pomdp.state_index("zombie(DB)")
        distribution = pomdp.observations[observe, db]
        reachable = np.flatnonzero(distribution > 0)
        assert len(reachable) == 1
        label = pomdp.observation_labels[reachable[0]]
        assert "HPathMon!" in label and "VPathMon!" in label

    def test_null_state_all_clear(self, emn_system):
        pomdp = emn_system.model.pomdp
        observe = pomdp.action_index("observe")
        null = pomdp.state_index("null")
        distribution = pomdp.observations[observe, null]
        reachable = np.flatnonzero(distribution > 0)
        assert len(reachable) == 1
        assert "!" not in pomdp.observation_labels[reachable[0]]
