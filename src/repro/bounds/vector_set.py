"""Sets of bounding hyperplanes (Eq. 6).

A piecewise-linear lower bound is represented as a set ``B`` of "bound
vectors"; the bound at belief ``pi`` is ``V_B^-(pi) = max_{b in B} pi . b``.
The set starts from the RA-Bound hyperplane and grows by incremental updates
(Section 4.1).  Section 4.3 notes that the number of vectors is not bounded
in general and suggests finite storage with least-used eviction; this class
implements that suggestion behind the ``max_vectors`` knob while defaulting
to the paper's unlimited behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.linalg.ops import BACKUP_TIE_EPSILON, tie_break_argmax
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp import alpha

#: Component-wise tolerance under which two hyperplanes count as duplicates.
DUPLICATE_ATOL = 1e-12


class BoundVectorSet:
    """A mutable set of bounding hyperplanes over the belief simplex.

    Implements the :class:`repro.pomdp.tree.LeafValue` protocol so it can be
    plugged directly into the lookahead tree.

    Args:
        initial: one vector ``(|S|,)`` or a stack ``(k, |S|)`` to seed the
            set; for recovery controllers this is the RA-Bound vector.
        max_vectors: optional storage limit.  When adding a vector would
            exceed it, the least-used *non-seed* vector is evicted; the seed
            (index 0) is pinned because Property 1(b) is guaranteed when the
            RA-Bound hyperplane is present.
    """

    def __init__(self, initial: np.ndarray, max_vectors: int | None = None):
        stack = np.atleast_2d(np.asarray(initial, dtype=float)).copy()
        if stack.ndim != 2 or stack.shape[0] == 0:
            raise ModelError(f"initial vectors must be (k, |S|), got {stack.shape}")
        if max_vectors is not None and max_vectors < stack.shape[0]:
            raise ModelError(
                f"max_vectors={max_vectors} below initial count {stack.shape[0]}"
            )
        self._vectors = stack
        self._usage = np.zeros(stack.shape[0], dtype=np.int64)
        self._pinned = stack.shape[0]  # seed vectors are never evicted
        self.max_vectors = max_vectors
        self.additions = 0
        self.rejections = 0
        self.duplicates = 0
        self.dominated = 0
        self.evictions = 0

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the current ``(k, |S|)`` hyperplane stack."""
        view = self._vectors.view()
        view.flags.writeable = False
        return view

    @property
    def n_states(self) -> int:
        """Dimension of the belief simplex the bound lives on."""
        return self._vectors.shape[1]

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def value(self, belief: np.ndarray) -> float:
        """``V_B^-(belief)`` per Eq. 6; records usage for eviction.

        The returned value is the exact maximum; the usage credit goes to
        the first vector within :data:`~repro.linalg.ops.BACKUP_TIE_EPSILON`
        of it, the same tie-break the Eq. 7 backups and the lookahead tree
        use, so eviction order cannot depend on backend representation
        noise.
        """
        scores = self._vectors @ belief
        winner = int(tie_break_argmax(scores, BACKUP_TIE_EPSILON))
        self._usage[winner] += 1
        return float(np.max(scores))

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value` over a ``(m, |S|)`` belief stack.

        One ``(|B|, |S|) x (|S|, m)`` matmul evaluates the whole bound set
        against the whole stack.  A single belief may be passed 1-D; an
        empty stack returns an empty result.  Returned values are the exact
        per-column maxima (bit-identical to :meth:`value`); only the usage
        accounting goes through the shared tie-break.
        """
        if self._vectors.shape[0] == 0:  # unreachable via the constructor
            raise ModelError("bound set has no vectors to evaluate")
        beliefs = np.atleast_2d(np.asarray(beliefs, dtype=float))
        if beliefs.shape[1] != self.n_states:
            raise ModelError(
                f"beliefs must have shape (m, {self.n_states}), "
                f"got {beliefs.shape}"
            )
        if beliefs.shape[0] == 0:
            return np.zeros(0)
        scores = self._vectors @ beliefs.T
        winners = tie_break_argmax(scores, BACKUP_TIE_EPSILON, axis=0)
        np.add.at(self._usage, winners, 1)
        return scores.max(axis=0)

    def record_wins(self, winners: np.ndarray) -> None:
        """Credit usage to the vectors that won a batch of evaluations.

        The fused sparse lookahead (:mod:`repro.pomdp.tree`) computes the
        winning hyperplane of each branch without calling :meth:`value`, so
        it reports the winners here to keep the least-used eviction order
        identical to the dense path.
        """
        winners = np.asarray(winners, dtype=np.int64)
        if winners.size:
            np.add.at(self._usage, winners, 1)

    def improvement_at(self, vector: np.ndarray, belief: np.ndarray) -> float:
        """How much ``vector`` would raise the bound at ``belief``."""
        return float(vector @ belief - np.max(self._vectors @ belief))

    def add(
        self,
        vector: np.ndarray,
        belief: np.ndarray | None = None,
        min_improvement: float = 0.0,
    ) -> bool:
        """Add ``vector`` to the set if it is useful.

        A vector is useful if it is not pointwise-dominated by an existing
        vector ("any additional bound hyperplanes that are not better in at
        least some regions of the probability simplex can be discarded",
        Section 4.1).  When ``belief`` is given, the vector is additionally
        required to improve the bound *at that belief* by more than
        ``min_improvement`` — the acceptance test of the incremental update
        procedure.  A non-zero ``min_improvement`` keeps the set compact by
        rejecting marginal hyperplanes, trading a slightly looser bound for
        bounded storage and update cost (the paper observes exactly this
        rapid-then-stable improvement profile in Figures 5(a)/(b)).

        Returns True when the vector was added.
        """
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.n_states,):
            raise ModelError(
                f"vector must have shape ({self.n_states},), got {vector.shape}"
            )
        telemetry = telemetry_active()
        threshold = max(alpha.LP_EPSILON, min_improvement)
        if belief is not None and self.improvement_at(vector, belief) <= threshold:
            self.rejections += 1
            if telemetry is not None:
                telemetry.count("bounds.vectors_rejected")
            return False
        if self.contains(vector):
            # Exact-duplicate fast path: a copy of an existing hyperplane is
            # always pointwise-dominated, but checking equality first keeps
            # the common case of merging near-identical refinement streams
            # (parallel campaign workers all start from the same seed set)
            # cheap and makes the rejection reason observable.
            self.rejections += 1
            self.duplicates += 1
            if telemetry is not None:
                telemetry.count("bounds.vectors_rejected")
                telemetry.count("bounds.duplicates")
            return False
        if alpha.pointwise_dominated(vector, self._vectors):
            self.rejections += 1
            self.dominated += 1
            if telemetry is not None:
                telemetry.count("bounds.vectors_rejected")
                telemetry.count("bounds.dominated")
            return False
        if self.max_vectors is not None and len(self) >= self.max_vectors:
            self._evict()
        self._vectors = np.vstack([self._vectors, vector])
        self._usage = np.append(self._usage, 0)
        self.additions += 1
        if telemetry is not None:
            telemetry.count("bounds.vectors_added")
            telemetry.gauge("bounds.set_size", len(self))
        return True

    def contains(self, vector: np.ndarray, atol: float = DUPLICATE_ATOL) -> bool:
        """True when an (almost) identical hyperplane is already stored."""
        return bool(
            np.any(
                np.all(np.abs(self._vectors - vector) <= atol, axis=1)
            )
        )

    def merge(
        self,
        vectors: np.ndarray,
        min_improvement: float = 0.0,
        prune_after: bool = False,
    ) -> int:
        """Fold a stack of candidate hyperplanes into the set.

        This is the join step of the parallel campaign engine
        (:mod:`repro.sim.parallel`): workers refine their private copies of
        the bound set, and their new vectors are merged back here.  Each
        candidate goes through :meth:`add`'s duplicate and
        pointwise-dominance rejection, so merging the same refinement stream
        twice is a no-op; with ``prune_after`` the merged set is additionally
        swept for vectors that *became* dominated by later arrivals (the
        dominance-prune-on-join policy).

        Returns the number of vectors actually inserted.
        """
        stack = np.atleast_2d(np.asarray(vectors, dtype=float))
        if stack.size == 0:
            return 0
        if stack.shape[1] != self.n_states:
            raise ModelError(
                f"merge vectors must have shape (k, {self.n_states}), "
                f"got {stack.shape}"
            )
        added = 0
        # Intentionally row-wise: each add() can change the dominance set the
        # next candidate is tested against, so the merge cannot batch.
        for vector in stack:  # codelint: ignore[R904]
            if self.add(vector, min_improvement=min_improvement):
                added += 1
        if prune_after and added:
            self.prune(method="pointwise")
        return added

    def _evict(self) -> None:
        """Drop the least-used evictable vector (Section 4.3's suggestion)."""
        if len(self) <= self._pinned:
            raise ModelError("cannot evict: only pinned seed vectors remain")
        candidates = np.arange(self._pinned, len(self))
        victim = candidates[np.argmin(self._usage[candidates])]
        self._vectors = np.delete(self._vectors, victim, axis=0)
        self._usage = np.delete(self._usage, victim)
        self.evictions += 1
        telemetry = telemetry_active()
        if telemetry is not None:
            telemetry.count("bounds.evictions")
            telemetry.event("bound_evict", set_size=len(self))

    def prune(self, method: str = "pointwise") -> int:
        """Remove redundant vectors; returns how many were dropped.

        ``"pointwise"`` drops pointwise-dominated vectors; ``"lp"`` runs the
        exact witness-LP prune.  Seed pinning is preserved by re-inserting
        the seed rows first if pruning removed them (they may be dominated
        once refinement has swept past them — in that case they are truly
        redundant and dropping them is sound, so we only keep them if
        present; the pin count is adjusted).
        """
        before = len(self)
        if method == "lp":
            pruned = alpha.prune_lp(self._vectors)
        elif method == "pointwise":
            pruned = alpha.prune_pointwise(self._vectors)
        else:
            raise ValueError(f"unknown prune method {method!r}")
        kept_rows = [
            i
            for i in range(before)
            if any(np.array_equal(self._vectors[i], row) for row in pruned)
        ]
        self._vectors = self._vectors[kept_rows]
        self._usage = self._usage[kept_rows]
        self._pinned = sum(1 for i in kept_rows if i < self._pinned)
        return before - len(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BoundVectorSet(|B|={len(self)}, additions={self.additions}, "
            f"rejections={self.rejections}, evictions={self.evictions})"
        )
