"""Tests for heuristic search value iteration."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.pomdp.exact import solve_exact
from repro.pomdp.hsvi import solve_hsvi
from repro.systems.simple import build_simple_system


@pytest.fixture(scope="module")
def discounted_system():
    return build_simple_system(recovery_notification=False, discount=0.9)


@pytest.fixture(scope="module")
def hsvi_solution(discounted_system):
    return solve_hsvi(discounted_system.model.pomdp, epsilon=0.05)


class TestSolveHSVI:
    def test_undiscounted_rejected(self, simple_system):
        with pytest.raises(ModelError, match="discount"):
            solve_hsvi(simple_system.model.pomdp)

    def test_gap_certificate(self, hsvi_solution):
        assert hsvi_solution.gap <= 0.05

    def test_bounds_sandwich_exact_value(self, discounted_system, hsvi_solution):
        pomdp = discounted_system.model.pomdp
        exact = solve_exact(pomdp, tol=1e-6)
        belief = hsvi_solution.initial_belief
        truth = exact.value(belief)
        assert hsvi_solution.lower.value(belief) <= truth + exact.error_bound + 1e-7
        assert hsvi_solution.upper.value(belief) >= truth - exact.error_bound - 1e-7

    def test_midpoint_within_half_gap(self, discounted_system, hsvi_solution):
        pomdp = discounted_system.model.pomdp
        exact = solve_exact(pomdp, tol=1e-6)
        belief = hsvi_solution.initial_belief
        assert abs(hsvi_solution.value(belief) - exact.value(belief)) <= (
            hsvi_solution.gap / 2 + exact.error_bound + 1e-7
        )

    def test_custom_initial_belief(self, discounted_system):
        pomdp = discounted_system.model.pomdp
        belief = np.zeros(pomdp.n_states)
        belief[discounted_system.fault_a] = 1.0
        solution = solve_hsvi(pomdp, initial_belief=belief, epsilon=0.05)
        assert solution.gap <= 0.05
        assert np.allclose(solution.initial_belief, belief)

    def test_tighter_epsilon_needs_no_fewer_trials(self, discounted_system):
        pomdp = discounted_system.model.pomdp
        loose = solve_hsvi(pomdp, epsilon=0.5)
        tight = solve_hsvi(pomdp, epsilon=0.05)
        assert tight.trials >= loose.trials
        assert tight.gap <= loose.gap + 1e-12
