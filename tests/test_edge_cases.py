"""Edge-case and cross-feature tests not covered by the per-module suites."""

import numpy as np
import pytest

from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bounded import BoundedController
from repro.controllers.branch_and_bound import BranchAndBoundController
from repro.controllers.heuristic import HeuristicController
from repro.exceptions import ModelError
from repro.io import load_recovery_model, save_bound_set
from repro.sim.campaign import run_campaign
from repro.sim.environment import RecoveryEnvironment
from repro.sim.trace import trace_episode
from repro.systems.faults import FaultKind


class TestIOErrorPaths:
    def test_bound_set_archive_rejected_as_model(self, tmp_path):
        path = tmp_path / "bounds.npz"
        save_bound_set(path, BoundVectorSet(np.array([-1.0, 0.0])))
        with pytest.raises(ModelError, match="expected recovery-model"):
            load_recovery_model(path)


class TestVectorSetEdge:
    def test_cannot_evict_when_only_pinned_remain(self):
        bound_set = BoundVectorSet(np.array([-1.0, -1.0]), max_vectors=1)
        with pytest.raises(ModelError, match="pinned"):
            bound_set.add(np.array([-0.5, -0.5]))


class TestEnvironmentEdge:
    def test_terminating_twice_is_idempotent_on_state(self, simple_system):
        environment = RecoveryEnvironment(simple_system.model, seed=0)
        environment.inject(simple_system.fault_a)
        a_t = simple_system.model.terminate_action
        environment.execute(a_t)
        first_penalty = environment.termination_penalty
        environment.execute(a_t)
        assert environment.state == simple_system.fault_a
        # Each terminate decision books the operator penalty again; the
        # campaign never issues two, but the accounting must stay sane.
        assert environment.termination_penalty == 2 * first_penalty

    def test_observe_never_moves_the_state(self, emn_system):
        environment = RecoveryEnvironment(
            emn_system.model, seed=1, monitor_tail=5.0
        )
        fault = emn_system.model.pomdp.state_index("zombie(VG)")
        environment.inject(fault)
        for _ in range(10):
            environment.execute(emn_system.observe_action)
        assert environment.state == fault


class TestMixedFaultCampaign:
    def test_bounded_controller_handles_all_13_fault_types(self, emn_system):
        """Table 1 injects only zombies; the controller must be just as
        sound on the full fault mix (crashes diagnose trivially)."""
        controller = BoundedController(
            emn_system.model, depth=1, refine_min_improvement=1.0
        )
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(),  # all 13
            injections=40,
            seed=23,
            monitor_tail=5.0,
        )
        assert result.summary.unrecovered == 0
        assert result.summary.early_terminations == 0
        # Crash-heavy mixes recover faster than the zombie-only Table 1 row.
        assert result.summary.actions <= 2.0


class TestLiteralMaxHeuristic:
    def test_literal_reading_collapses_to_myopia(self, emn_system):
        """Why the prose reading is the default: the formula's literal
        ``max r(s,a)`` is 0, the lookahead degenerates to immediate-cost
        minimisation, and the controller observes forever instead of
        repairing — it cannot reproduce the paper's heuristic rows."""
        controller = HeuristicController(
            emn_system.model, depth=1, literal_max=True
        )
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
            injections=5,
            seed=2,
            monitor_tail=5.0,
            max_steps=120,
        )
        assert result.summary.unrecovered == 5
        assert result.summary.actions == 0.0  # never even tries a restart


class TestTraceWithBranchAndBound:
    def test_trace_records_terminate_step(self, simple_system):
        controller = BranchAndBoundController(simple_system.model, depth=1)
        environment = RecoveryEnvironment(simple_system.model, seed=4)
        trace = trace_episode(controller, environment, simple_system.fault_b)
        assert trace.metrics.recovered
        assert trace.steps[-1].action_label == "terminate"
        assert trace.steps[-1].reward == 0.0  # terminated after recovery
