"""The policy service: one warm engine, many concurrent recovery sessions.

:class:`PolicyService` owns everything the daemon shares across
connections: the loaded :class:`~repro.recovery.model.RecoveryModel`, the
:class:`~repro.controllers.bounded.BoundedPolicyEngine` with its
RA-Bound-seeded (or warm-restarted) bound set, the session registry, and
the checkpointing of refined bounds back to disk.  It is transport-free —
the unix-socket daemon (:mod:`repro.serve.daemon`) and in-process callers
(tests, the perf snapshot) drive the same object.

Concurrency model: belief state is per-session and never shared, but every
decision reads — and, with refinement on, *writes* — the engine's shared
bound set, so :meth:`decide` and :meth:`checkpoint` serialise on one lock.
That is the same single-writer discipline the campaign engine gets from
chunk isolation, here enforced at runtime because sessions are driven by
whichever connection thread speaks next.  Session bookkeeping uses a
separate registry lock so opens/closes never wait on a slow decision.

Since obs v3 the service also owns a :class:`~repro.obs.telemetry.Telemetry`
registry — the daemon activates it process-wide so the deep layers
(controller, bounds, cache) record into it, and in-process callers get the
service-level metrics regardless.  :meth:`metrics` snapshots it live
(:mod:`repro.obs.live`), :meth:`health`/:meth:`ready` answer the probe
ops, and decisions slower than ``config.slow_decision_seconds`` leave a
``slow_decision`` structured event carrying the offending span subtree
when tracing is on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.controllers.bootstrap import bootstrap_bounds
from repro.controllers.bounded import BoundedPolicyEngine
from repro.controllers.engine import RecoverySession
from repro.exceptions import ServeError
from repro.io import load_bound_set, save_bound_set
from repro.obs.live import snapshot as live_snapshot
from repro.obs.telemetry import Telemetry
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.cache import get_joint_cache
from repro.recovery.model import RecoveryModel

#: Telemetry gauge tracking the number of live sessions.
LIVE_SESSIONS_GAUGE = "serve.live_sessions"

#: Latency-histogram name for service-level decisions (engine-lock wait
#: included — the queueing delay is what a caller actually experiences, so
#: it is what the serve-smoke SLO gate reads its p99 from).
SESSION_DECIDE_HISTOGRAM = "serve.session_decide"


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one policy-service process.

    Attributes:
        model_path: ``recovery-model`` archive to load (see
            :func:`repro.io.load_recovery_model`).  Ignored when a model
            object is handed to :class:`PolicyService` directly.
        socket_path: unix-socket path the daemon binds.
        bounds_path: bound-set archive for warm starts and checkpoints.
            When the file exists at startup the service *warm-starts* —
            reloads the refined set (R3xx-certified, digest-memoised)
            instead of re-paying RA-Bound seeding and bootstrap; either
            way, later checkpoints write here.  ``None`` disables
            persistence entirely.
        checkpoint_interval: seconds between automatic bound-set
            checkpoints (0 disables the interval thread; SIGTERM still
            checkpoints).
        depth: lookahead depth of the bounded policy.
        refine_online: engine-wide online-refinement default; individual
            sessions may override (``refine`` on open).
        refine_min_improvement: refinement acceptance threshold, in reward
            units.
        max_vectors: bound-vector storage limit for *cold* starts.
        bootstrap_iterations: cold-start bootstrap episodes (Section 4.1's
            off-line phase) run before serving; 0 serves straight off the
            RA-Bound seed.
        bootstrap_seed: RNG seed for the bootstrap phase.
        recertify: force the R3xx sweep on warm start even when the
            digest sidecar says the (archive, model) pair already passed.
        drain_timeout: seconds :meth:`PolicyService.drain` waits for live
            sessions to finish before giving up and reporting stragglers.
        slow_decision_seconds: decisions slower than this leave a
            ``slow_decision`` structured event on the service telemetry
            (with the span subtree when tracing is on); ``None`` disables
            the log.
        metrics_path: JSONL file the daemon's periodic metrics flusher
            writes ``metrics_snapshot`` events to (``None`` disables).
        metrics_interval: seconds between flushed snapshots (0 disables
            the flusher thread even when a path is set).
        trace: record hierarchical spans on the service telemetry, which
            lets the slow-decision log capture the offending subtree.
    """

    model_path: str | None = None
    socket_path: str = "repro-serve.sock"
    bounds_path: str | None = None
    checkpoint_interval: float = 300.0
    depth: int = 1
    refine_online: bool = True
    refine_min_improvement: float = 0.0
    max_vectors: int | None = None
    bootstrap_iterations: int = 0
    bootstrap_seed: int | None = field(default=2006)
    recertify: bool = False
    drain_timeout: float = 10.0
    slow_decision_seconds: float | None = None
    metrics_path: str | None = None
    metrics_interval: float = 10.0
    trace: bool = False


class PolicyService:
    """Shared engine + session registry + checkpointing (transport-free).

    Args:
        config: static configuration.
        model: a pre-built model, bypassing ``config.model_path`` (the
            in-process path tests and the perf snapshot use).
    """

    def __init__(self, config: ServiceConfig, model: RecoveryModel | None = None):
        self.config = config
        started = time.perf_counter()  # codelint: ignore[R903]
        if model is None:
            if config.model_path is None:
                raise ServeError("ServiceConfig.model_path or a model is required")
            from repro.io import load_recovery_model

            model = load_recovery_model(config.model_path)
        self.model = model

        # The service's own metrics registry (obs v3).  The daemon
        # activates it process-wide so the engine/bounds/cache layers
        # record into it too; in-process callers at least get the
        # service-level counters and histograms recorded below.
        self.telemetry = Telemetry(trace=config.trace)

        bound_set = None
        self.started_warm = False
        if config.bounds_path is not None:
            try:
                bound_set = load_bound_set(
                    config.bounds_path, model=model, recertify=config.recertify
                )
                self.started_warm = True
            except FileNotFoundError:
                bound_set = None
        if bound_set is None and config.bootstrap_iterations > 0:
            bound_set, _ = bootstrap_bounds(
                model,
                iterations=config.bootstrap_iterations,
                depth=config.depth,
                seed=config.bootstrap_seed,
            )
        self.engine = BoundedPolicyEngine(
            model,
            depth=config.depth,
            bound_set=bound_set,
            refine_online=config.refine_online,
            refine_min_improvement=config.refine_min_improvement,
            max_vectors=config.max_vectors if bound_set is None else None,
        )
        # Build the joint-factor cache now rather than on the first decide,
        # so the first session never pays the warm-up.
        get_joint_cache(model.pomdp)
        # Readiness: the bound set is certified either by the R3xx sweep a
        # warm load just passed (load_bound_set raises otherwise) or by
        # construction — RA-Bound seeding and bootstrap refinement only
        # produce sound vectors.  Constructing past this point therefore
        # certifies; the flag exists so ready() states it explicitly and a
        # future lazy-loading path has somewhere to say "not yet".
        self.bounds_certified = True
        self.startup_seconds = time.perf_counter() - started  # codelint: ignore[R903]

        self._sessions: dict[str, RecoverySession] = {}
        self._registry_lock = threading.Lock()
        # Serialises every bound-set reader/writer: decides (refinement and
        # the usage bumps of value_batch), checkpoints, and stats.
        self._engine_lock = threading.Lock()
        self._next_session = 0
        self._draining = threading.Event()
        self._idle = threading.Condition(self._registry_lock)
        self.decisions = 0
        self.checkpoints = 0

    def _telemetry(self) -> Telemetry:
        """The registry service-level instrumentation records into.

        The process-active registry when one is activated (the daemon
        activates :attr:`telemetry` itself, so both names resolve to the
        same object there); the service's own registry otherwise, so
        in-process callers still accumulate service metrics.
        """
        active = telemetry_active()
        return self.telemetry if active is None else active

    # -- session registry -----------------------------------------------------

    @property
    def live_sessions(self) -> int:
        """Number of currently open sessions."""
        with self._registry_lock:
            return len(self._sessions)

    def _gauge_sessions_locked(self) -> None:
        self._telemetry().gauge(LIVE_SESSIONS_GAUGE, float(len(self._sessions)))

    def open_session(
        self,
        session_id: str | None = None,
        refine: bool | None = None,
        initial_belief=None,
    ) -> str:
        """Open (and reset) a new recovery session; returns its id.

        Args:
            session_id: client-chosen id; autogenerated (``s0``, ``s1``,
                ...) when omitted.  Re-using a live id is an error.
            refine: per-session override of the engine's online-refinement
                default — ``False`` gives a read-only session that never
                mutates the shared bound set (replay/audit traffic).
            initial_belief: belief to reset onto; the model's uniform
                fault prior when omitted.
        """
        if self._draining.is_set():
            raise ServeError("service is draining; not accepting new sessions")
        session = self.engine.session(refine=refine)
        with self._registry_lock:
            if session_id is None:
                session_id = f"s{self._next_session}"
                self._next_session += 1
            elif session_id in self._sessions:
                raise ServeError(f"session {session_id!r} is already open")
            session.session_id = session_id
            self._sessions[session_id] = session
            self._gauge_sessions_locked()
        belief = None if initial_belief is None else np.asarray(initial_belief)
        session.reset(belief)
        self._telemetry().count_process("serve.sessions_opened")
        return session_id

    def _session(self, session_id: str) -> RecoverySession:
        with self._registry_lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise ServeError(f"unknown session {session_id!r}") from None

    def observe(self, session_id: str, action: int, observation: int) -> None:
        """Fold monitor outputs into one session's belief (Eq. 4)."""
        session = self._session(session_id)
        session.observe(int(action), int(observation))
        self._telemetry().count_process("serve.observations")

    def decide(self, session_id: str) -> dict:
        """One decision for ``session_id``; serialised on the engine lock.

        The whole call — engine-lock wait included — feeds the
        :data:`SESSION_DECIDE_HISTOGRAM` latency histogram, and decisions
        slower than ``config.slow_decision_seconds`` leave a
        ``slow_decision`` structured event carrying the span subtree
        recorded during the call (when tracing is on).
        """
        session = self._session(session_id)
        telemetry = self._telemetry()
        span_mark = telemetry._next_span_id
        started = time.perf_counter()  # codelint: ignore[R903]
        with self._engine_lock:
            decision = session.decide()
            self.decisions += 1
        elapsed = time.perf_counter() - started  # codelint: ignore[R903]
        telemetry.count_process("serve.decisions")
        telemetry.observe_latency(SESSION_DECIDE_HISTOGRAM, elapsed)
        threshold = self.config.slow_decision_seconds
        if threshold is not None and elapsed > threshold:
            self._log_slow_decision(
                telemetry, session_id, elapsed, threshold, span_mark
            )
        action_label = None
        if decision.executes_action:
            action_label = self.model.pomdp.action_labels[decision.action]
        return {
            "action": int(decision.action),
            "action_label": action_label,
            "terminate": bool(decision.is_terminate),
            "value": None if decision.value is None else float(decision.value),
            "done": bool(session.done),
            "steps": int(session.steps),
        }

    def _log_slow_decision(
        self,
        telemetry: Telemetry,
        session_id: str,
        elapsed: float,
        threshold: float,
        span_mark: int,
    ) -> None:
        """Emit a ``slow_decision`` event, with the offending span subtree.

        ``span_mark`` is the next-span-id watermark taken before the
        decision: every span allocated at or after it was recorded during
        the call.  Other connection threads can interleave spans into the
        same window, but decides themselves serialise on the engine lock,
        so the captured subtree is the slow decision's own work plus at
        most some belief-update noise — and it is capped so one
        pathological decision cannot bloat the event stream.
        """
        slow_spans: list[dict] = []
        if telemetry.trace_enabled:
            with telemetry._lock:
                slow_spans = [
                    record.event_fields()
                    for record in telemetry.spans
                    if record.span_id >= span_mark
                ][:100]
        telemetry.count_process("serve.slow_decisions")
        telemetry.event(
            "slow_decision",
            session=session_id,
            seconds=round(elapsed, 9),
            threshold=threshold,
            spans=slow_spans,
        )

    def close_session(self, session_id: str) -> None:
        """Forget a session (idempotent: closing twice is an error)."""
        with self._registry_lock:
            if session_id not in self._sessions:
                raise ServeError(f"unknown session {session_id!r}")
            del self._sessions[session_id]
            self._gauge_sessions_locked()
            self._idle.notify_all()
        self._telemetry().count_process("serve.sessions_closed")

    # -- shared-state maintenance ---------------------------------------------

    def checkpoint(self, path: str | None = None) -> str | None:
        """Atomically persist the refined bound set; returns the path.

        The engine lock is held across the save so no refinement lands
        mid-serialisation; :func:`repro.io.save_bound_set` is itself
        tmp-then-rename atomic, so a crash mid-checkpoint leaves the
        previous checkpoint intact.  Returns ``None`` when persistence is
        disabled (no path configured or given).
        """
        target = path if path is not None else self.config.bounds_path
        if target is None:
            return None
        with self._engine_lock:
            save_bound_set(target, self.engine.bound_set)
            self.checkpoints += 1
        self._telemetry().count_process("serve.checkpoints")
        return str(target)

    def stats(self) -> dict:
        """Operational snapshot (the ``stats`` protocol op).

        The per-session table is built under a *single* registry-lock
        acquisition, so the session list and the live count always agree
        with each other even while other threads open and close sessions.
        """
        with self._registry_lock:
            live = len(self._sessions)
            refine_default = bool(getattr(self.engine, "refine_online", False))
            sessions = {
                session_id: {
                    "steps": int(session.steps),
                    "done": bool(session.done),
                    # The effective flag: a session with no per-session
                    # override follows the engine's refine_online default.
                    "refine": (
                        refine_default
                        if session.refine is None
                        else bool(session.refine)
                    ),
                }
                for session_id, session in sorted(self._sessions.items())
            }
        with self._engine_lock:
            vectors = int(self.engine.bound_set.vectors.shape[0])
        return {
            "live_sessions": live,
            "sessions_opened": self._next_session,
            "decisions": self.decisions,
            "checkpoints": self.checkpoints,
            "bound_vectors": vectors,
            "started_warm": self.started_warm,
            "startup_seconds": self.startup_seconds,
            "draining": self._draining.is_set(),
            "model_states": int(self.model.pomdp.n_states),
            "sessions": sessions,
        }

    # -- live metrics / probes ------------------------------------------------

    def metrics(self) -> dict:
        """Live snapshot of the service telemetry (the ``metrics`` op).

        Lock-safe against concurrent writers; see
        :func:`repro.obs.live.snapshot`.
        """
        return live_snapshot(self._telemetry())

    def health(self) -> dict:
        """Liveness payload: the process is up and answering (``health`` op).

        Unlike :meth:`ready`, health stays true while draining — the
        process is still alive and finishing in-flight recoveries.
        """
        return {
            "healthy": True,
            "draining": self._draining.is_set(),
            "live_sessions": self.live_sessions,
            "decisions": self.decisions,
            "started_warm": self.started_warm,
        }

    def ready(self) -> dict:
        """Readiness payload (the ``ready`` op).

        Ready means the model is loaded, the bound set is certified, and
        the service is not draining — i.e. a load balancer may route new
        sessions here.
        """
        draining = self._draining.is_set()
        return {
            "ready": self.bounds_certified and not draining,
            "model_loaded": True,
            "bounds_certified": self.bounds_certified,
            "draining": draining,
        }

    # -- shutdown -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has been called."""
        return self._draining.is_set()

    def drain(self, timeout: float | None = None) -> int:
        """Stop accepting sessions and wait for the live ones to close.

        Returns the number of sessions still open when the wait ended (0
        is the graceful outcome).  The daemon calls this on SIGTERM before
        the final checkpoint, so in-flight recoveries get ``drain_timeout``
        seconds to reach their terminate decision.
        """
        self._draining.set()
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget  # codelint: ignore[R903]
        with self._registry_lock:
            while self._sessions:
                remaining = deadline - time.monotonic()  # codelint: ignore[R903]
                if remaining <= 0 or not self._idle.wait(timeout=remaining):
                    break
            return len(self._sessions)
