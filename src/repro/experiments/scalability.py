"""RA-Bound scalability (Section 4.3's state-space claim).

"This linear system is defined on the original state-space of the POMDP
(S) and, with the appropriate sparse structure, can be solved using
standard, numerically stable linear system solvers for models with up to
hundreds of thousands of states."  This experiment measures exactly that:
RA-Bound solve time on the tiered model family
(:mod:`repro.systems.tiered`) as the state count grows from tens to
hundreds of thousands.  Every solve goes through the shared sparse backend
(:func:`repro.mdp.linear_solvers.solve_sparse`); the chain is built
directly in CSR form (~3 non-zeros per row), so the largest default point
(50,000 replicas per tier, 300,002 states) never materialises a dense
matrix anywhere.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass

import numpy as np

from repro.bounds.ra_bound import ra_bound_vector
from repro.mdp.linear_solvers import chain_density
from repro.systems.tiered import (
    build_tiered_system,
    solve_tiered_ra_bound,
    tiered_ra_chain,
)
from repro.util.tables import render_table

#: Default replica counts per tier for the sweep (3 tiers each).  The
#: largest point gives 2 + 2 * 3 * 50,000 = 300,002 states — past the
#: "hundreds of thousands" threshold of Section 4.3.
DEFAULT_SIZES = (2, 10, 100, 1_000, 10_000, 50_000)


@dataclass(frozen=True)
class ScalabilityPoint:
    """One measurement of the sweep."""

    replicas_per_tier: int
    n_states: int
    nnz: int
    backend: str
    solve_seconds: float
    sample_value: float


def run_scalability(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    n_tiers: int = 3,
    method: str = "sparse",
) -> list[ScalabilityPoint]:
    """Time the RA-Bound solve across model sizes.

    Each point is a 3-tier system with ``r`` replicas per tier, i.e.
    ``2 + 2 * n_tiers * r`` states.  Small instances are cross-checked
    against the dense solver elsewhere (:func:`verify_against_dense` and
    the test suite); here we record wall-clock time, the chain's non-zero
    count, and a sample value for sanity.
    """
    points = []
    for r in sizes:
        replicas = tuple([r] * n_tiers)
        chain, _ = tiered_ra_chain(replicas)
        started = time.perf_counter()  # codelint: ignore[R903]
        values = solve_tiered_ra_bound(replicas, method=method)
        elapsed = time.perf_counter() - started  # codelint: ignore[R903]
        points.append(
            ScalabilityPoint(
                replicas_per_tier=r,
                n_states=values.shape[0],
                nnz=int(chain.nnz),
                backend=method,
                solve_seconds=elapsed,
                sample_value=float(values[1]),
            )
        )
    return points


def verify_against_dense(
    replicas: tuple[int, ...], methods: tuple[str, ...] = ("sparse",)
) -> float:
    """Max RA-Bound discrepancy between the sparse path and the dense model.

    The direct sparse construction must agree with the RA-Bound computed
    from the fully-materialised recovery model (the default Gauss-Seidel
    path of :func:`ra_bound_vector`), for every requested sparse-side
    ``method``.  Returns the worst absolute discrepancy across methods.
    """
    system = build_tiered_system(replicas=replicas)
    dense = ra_bound_vector(system.model.pomdp, method="gauss-seidel")
    return max(
        float(np.max(np.abs(dense - solve_tiered_ra_bound(replicas, method=m))))
        for m in methods
    )


def format_scalability(points: list[ScalabilityPoint]) -> str:
    """Render the sweep as a table."""
    rows = [
        [
            point.replicas_per_tier,
            point.n_states,
            point.nnz,
            point.backend,
            point.solve_seconds * 1000.0,
            point.sample_value,
        ]
        for point in points
    ]
    return render_table(
        [
            "Replicas/tier",
            "States",
            "nnz",
            "Backend",
            "RA solve (ms)",
            "V-(first fault)",
        ],
        rows,
        title=(
            "RA-Bound scalability on the tiered model family (Section 4.3: "
            "sparse\nlinear solves scale to hundreds of thousands of states)"
        ),
    )


#: Replicas per tier for the --online demonstration: 300,002 states, the
#: "hundreds of thousands" regime of Section 4.3, now driven end-to-end by
#: the bounded controller instead of just the off-line RA solve.
ONLINE_REPLICAS = (50_000, 50_000, 50_000)


@dataclass(frozen=True)
class OnlineScalabilityResult:
    """The bounded controller running on one very large sparse model."""

    n_states: int
    n_actions: int
    n_observations: int
    build_seconds: float
    controller_init_seconds: float
    uniform_decision_seconds: float
    uniform_action_label: str
    uniform_terminated: bool
    episode_steps: int
    episode_cost: float
    episode_recovered: bool
    episode_terminated: bool
    episode_decision_seconds: list[float]
    peak_rss_mb: float


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_online(
    replicas: tuple[int, ...] = ONLINE_REPLICAS,
    seed: int = 2006,
    depth: int = 1,
) -> OnlineScalabilityResult:
    """Run the bounded controller online on a large sparse tiered model.

    Builds the tiered system on the sparse backend (the dense tensors of the
    default point would need ~100 TB), computes the RA-Bound seed, then

    * times one depth-``depth`` decision from the uniform fault belief —
      with 150,000 equally-likely faults no single repair is worth its
      cost, so the controller escalates to the operator (``a_T``); and
    * injects a single concrete fault and runs a short recovery episode
      from a belief narrowed to a handful of suspect components (e.g. a
      tier alarm cross-referenced with request logs).  With per-replica
      fault rates of ``1/replicas`` the operator-response cost of one
      faulty replica is below the cost of a single restart, so the
      economically correct outcome at this scale is a terminate decision;
      the point of the run is that the controller reaches it online, on a
      model whose dense tensors could never be materialised.

    Online refinement is disabled: one incremental update touches every
    action, which is exactly the per-decision cost the fused depth-1
    expansion avoids; the RA-Bound seed alone is a valid lower bound.
    """
    from repro.controllers.bounded import BoundedController
    from repro.pomdp.belief import uniform_belief
    from repro.sim.environment import RecoveryEnvironment

    started = time.perf_counter()  # codelint: ignore[R903]
    system = build_tiered_system(replicas=replicas, backend="sparse")
    model = system.model
    build_seconds = time.perf_counter() - started  # codelint: ignore[R903]

    started = time.perf_counter()  # codelint: ignore[R903]
    controller = BoundedController(
        model, depth=depth, refine_online=False, preflight=True
    )
    controller_init_seconds = time.perf_counter() - started  # codelint: ignore[R903]

    belief = uniform_belief(model.pomdp, support=model.fault_states)
    controller.reset(initial_belief=belief)
    started = time.perf_counter()  # codelint: ignore[R903]
    decision = controller.decide()
    uniform_decision_seconds = time.perf_counter() - started  # codelint: ignore[R903]
    uniform_action_label = model.pomdp.action_labels[decision.action]

    environment = RecoveryEnvironment(model, seed=seed)
    fault_indices = np.flatnonzero(model.fault_states)
    fault = int(fault_indices[0])
    environment.inject(fault)
    # Narrowed diagnosis: the true fault plus a few siblings are suspects.
    suspects = np.zeros(model.pomdp.n_states, dtype=bool)
    suspects[fault_indices[: min(6, fault_indices.size)]] = True
    controller.reset(initial_belief=uniform_belief(model.pomdp, support=suspects))
    passive = int(np.flatnonzero(model.passive_actions)[0])
    controller.observe(passive, environment.initial_observation())
    decision_seconds: list[float] = []
    terminated = False
    for _ in range(8):
        started = time.perf_counter()  # codelint: ignore[R903]
        step = controller.decide()
        decision_seconds.append(time.perf_counter() - started)  # codelint: ignore[R903]
        result = environment.execute(step.action)
        if step.is_terminate:
            terminated = True
            break
        controller.observe(step.action, result.observation)

    return OnlineScalabilityResult(
        n_states=model.pomdp.n_states,
        n_actions=model.pomdp.n_actions,
        n_observations=model.pomdp.n_observations,
        build_seconds=build_seconds,
        controller_init_seconds=controller_init_seconds,
        uniform_decision_seconds=uniform_decision_seconds,
        uniform_action_label=uniform_action_label,
        uniform_terminated=decision.is_terminate,
        episode_steps=len(decision_seconds),
        episode_cost=environment.cost,
        episode_recovered=environment.recovered,
        episode_terminated=terminated,
        episode_decision_seconds=decision_seconds,
        peak_rss_mb=_peak_rss_mb(),
    )


def format_online(result: OnlineScalabilityResult) -> str:
    """Render the online run as a short report."""
    per_decision = ", ".join(
        f"{seconds * 1000:.0f}" for seconds in result.episode_decision_seconds
    )
    lines = [
        "Bounded controller online on the sparse tiered model",
        f"  model: |S|={result.n_states:,} |A|={result.n_actions:,} "
        f"|O|={result.n_observations}",
        f"  build: {result.build_seconds:.1f} s   "
        f"RA-Bound + controller init: {result.controller_init_seconds:.1f} s",
        f"  uniform-belief decision: {result.uniform_decision_seconds:.1f} s "
        f"-> {result.uniform_action_label!r}"
        + (" (escalates to the operator)" if result.uniform_terminated else ""),
        f"  recovery episode: {result.episode_steps} decisions, "
        f"cost {result.episode_cost:.3f}, "
        f"recovered={result.episode_recovered}"
        + (
            " (rational escalation: one faulty replica's operator-response "
            "cost is below a single restart)"
            if result.episode_terminated and not result.episode_recovered
            else ""
        ),
        f"  per-decision latency (ms): {per_decision}",
        f"  peak RSS: {result.peak_rss_mb:.0f} MB",
    ]
    return "\n".join(lines)


__all__ = [
    "DEFAULT_SIZES",
    "ONLINE_REPLICAS",
    "OnlineScalabilityResult",
    "ScalabilityPoint",
    "chain_density",
    "format_online",
    "format_scalability",
    "run_online",
    "run_scalability",
    "verify_against_dense",
]
