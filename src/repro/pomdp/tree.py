"""Finite-depth Max-Avg lookahead (Figure 1(b)).

The online controller chooses actions by unrolling the belief-state Bellman
recursion (Eq. 2) to a small fixed depth and substituting a value estimate —
a lower bound, in the bounded controller — at the leaf beliefs.  The tree is
a Max-Avg tree: values of sibling observation branches are averaged with the
observation probabilities ``gamma^{pi,a}(o)`` (Eq. 3), and the maximum over
actions is taken at each decision node.

Per-decision cost matters — Table 1's "algorithm time" column is this
expansion — so the tree leans on two model-level optimisations:

* the joint factors ``p(s', o | s, a)`` come from the shared
  :class:`~repro.pomdp.cache.JointFactorCache`, which turns each node's
  per-action child computation into a single matrix product instead of a
  per-action rebuild of the transition/observation product;
* all of a node's leaf beliefs (across *every* action) are evaluated in one
  :meth:`LeafValue.value_batch` call rather than one call per action, so the
  leaf estimator sees one big stack per node; at depth 1 the root expansion
  is a single fused pass (:func:`_expand_depth1_batched`) with exactly one
  such call;
* on the sparse backend with a linear-function leaf, the depth-1 expansion
  skips posteriors entirely: a batched kernel builds the full
  ``(k, |A|, |O|)`` score block from a few CSR × dense-block products, with
  a per-action looped fallback when the block is declined by the cache
  budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.linalg.ops import (
    BACKUP_TIE_EPSILON,
    observation_matrix_dense,
    predict,
    rewards_matvec,
    tie_break_argmax,
)
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.belief import GAMMA_EPSILON
from repro.pomdp.cache import (
    JointFactorCache,
    SparseJointFactorCache,
    charge_block,
    get_joint_cache,
)
from repro.pomdp.model import POMDP

#: Root values within this of the maximum count as tied.  Ties break toward
#: the lowest action index; the tolerance (rather than exact argmax) keeps
#: the winning action identical across storage backends, whose bound vectors
#: agree only to solver precision (~1e-13), not bit-for-bit.
DECISION_TIE_EPSILON = 1e-9


def _best_action(action_values: np.ndarray) -> int:
    """Lowest-index action within :data:`DECISION_TIE_EPSILON` of the max."""
    return int(tie_break_argmax(action_values, DECISION_TIE_EPSILON))


class LeafValue(Protocol):
    """A value estimate evaluated at the leaves of the lookahead tree."""

    def value(self, belief: np.ndarray) -> float:
        """Estimate of the POMDP value at ``belief``."""
        ...  # pragma: no cover - protocol

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value` over a ``(k, |S|)`` stack of beliefs."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class TreeDecision:
    """Outcome of one lookahead expansion.

    Attributes:
        action: index of the maximising action at the root.
        value: root value (the max over ``action_values``).
        action_values: per-action root values; disallowed actions are
            ``-inf``.
        leaf_evaluations: number of leaf-value evaluations performed.
        nodes: number of internal decision nodes expanded.
    """

    action: int
    value: float
    action_values: np.ndarray
    leaf_evaluations: int
    nodes: int


def _children(
    pomdp: POMDP,
    belief: np.ndarray,
    action: int,
    cache: JointFactorCache | SparseJointFactorCache | None = None,
):
    """Reachable ``(gamma, posteriors)`` for one action, pruned by gamma."""
    if cache is not None:
        joint = cache.joint(belief, action)
    else:
        predicted = predict(pomdp.transitions, belief, action)
        joint = predicted[:, None] * observation_matrix_dense(
            pomdp.observations, action
        )
    gamma = joint.sum(axis=0)
    reachable = gamma > GAMMA_EPSILON
    posteriors = (joint[:, reachable] / gamma[reachable]).T
    return gamma[reachable], posteriors


def _children_all(
    pomdp: POMDP,
    belief: np.ndarray,
    cache: JointFactorCache | SparseJointFactorCache | None,
    action_mask: np.ndarray | None = None,
):
    """Per-action ``(gamma, posteriors)`` for every (allowed) action.

    Returns a list indexed by action; masked-out actions hold ``None``.
    With a cache, all joints come from one matrix product.
    """
    joint_all = cache.joint_all(belief) if cache is not None else None
    children: list[tuple[np.ndarray, np.ndarray] | None] = []
    for action in range(pomdp.n_actions):
        if action_mask is not None and not action_mask[action]:
            children.append(None)
            continue
        if joint_all is not None:
            joint = joint_all[action]
            gamma = joint.sum(axis=0)
            reachable = gamma > GAMMA_EPSILON
            posteriors = (joint[:, reachable] / gamma[reachable]).T
            children.append((gamma[reachable], posteriors))
        else:
            children.append(_children(pomdp, belief, action))
    return children


def _batched_leaf_values(
    children: list[tuple[np.ndarray, np.ndarray] | None],
    leaf: LeafValue,
) -> list[np.ndarray | None]:
    """One ``value_batch`` call covering every action's leaf beliefs.

    The per-row arithmetic is identical to per-action calls; only the
    batching changes, so results are bit-for-bit the same for any leaf
    estimator that is row-independent (all shipped ones are).
    """
    stacks = [child[1] for child in children if child is not None]
    if not stacks:
        return [None for _ in children]
    beliefs = np.vstack(stacks)
    telemetry = telemetry_active()
    if telemetry is not None:
        telemetry.count("tree.leaf_batches")
        with telemetry.trace_span(
            "tree.leaf_batch", category="tree", beliefs=int(beliefs.shape[0])
        ):
            values = leaf.value_batch(beliefs)
    else:
        values = leaf.value_batch(beliefs)
    futures: list[np.ndarray | None] = []
    offset = 0
    for child in children:
        if child is None:
            futures.append(None)
            continue
        count = child[1].shape[0]
        futures.append(values[offset : offset + count])
        offset += count
    return futures


def expand_tree(
    pomdp: POMDP,
    belief: np.ndarray,
    depth: int,
    leaf: LeafValue,
    allowed_actions: np.ndarray | None = None,
) -> TreeDecision:
    """Expand the Max-Avg tree of Figure 1(b) and pick the best root action.

    Args:
        pomdp: the model being controlled.
        belief: root belief state.
        depth: number of action layers to expand; must be at least 1.
        leaf: value estimate substituted at depth-0 beliefs.
        allowed_actions: optional boolean mask restricting the *root*
            decision (inner nodes always consider every action, matching the
            recursion of Eq. 2).

    Returns:
        A :class:`TreeDecision`; ties at the root break toward the
        lowest-index action, so action ordering in the model is the
        deterministic tie-breaker.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    cache = get_joint_cache(pomdp)
    fused = (
        depth == 1
        and cache is None
        and pomdp.backend.is_sparse
        and getattr(leaf, "vectors", None) is not None
    )
    telemetry = telemetry_active()
    if telemetry is not None:
        # Mode-tagged so dense and sparse traces of the same campaign are
        # directly comparable (the fused path replaces the generic one).
        mode = "fused_sparse" if fused else "generic"
        telemetry.count(f"tree.expansions.{mode}")
        with telemetry.trace_span(
            "tree.expand", category="tree", depth=depth, mode=mode
        ):
            return _expand(pomdp, belief, depth, leaf, allowed_actions, cache, fused)
    return _expand(pomdp, belief, depth, leaf, allowed_actions, cache, fused)


def _expand(
    pomdp: POMDP,
    belief: np.ndarray,
    depth: int,
    leaf: LeafValue,
    allowed_actions: np.ndarray | None,
    cache: JointFactorCache | SparseJointFactorCache | None,
    fused: bool,
) -> TreeDecision:
    """Dispatch to the fused sparse depth-1 path or the generic recursion."""
    if fused:
        return _expand_depth1_sparse(pomdp, belief, leaf, allowed_actions)
    if depth == 1:
        return _expand_depth1_batched(pomdp, belief, leaf, allowed_actions, cache)
    counters = {"leaves": 0, "nodes": 0}

    def node_value(node_belief: np.ndarray, remaining: int) -> float:
        counters["nodes"] += 1
        rewards = rewards_matvec(pomdp.rewards, node_belief)
        children = _children_all(pomdp, node_belief, cache)
        if remaining == 1:
            futures = _batched_leaf_values(children, leaf)
            counters["leaves"] += sum(
                child[1].shape[0] for child in children if child is not None
            )
        else:
            futures = [
                np.array(
                    [node_value(child, remaining - 1) for child in posteriors]
                )
                for _, posteriors in children
            ]
        best = -np.inf
        for action, child in enumerate(children):
            gamma, _ = child
            total = rewards[action] + pomdp.discount * float(
                gamma @ futures[action]
            )
            best = max(best, total)
        return best

    counters["nodes"] += 1
    rewards = rewards_matvec(pomdp.rewards, belief)
    action_values = np.full(pomdp.n_actions, -np.inf)
    children = _children_all(pomdp, belief, cache, action_mask=allowed_actions)
    futures = [
        None
        if child is None
        else np.array(
            [node_value(posterior, depth - 1) for posterior in child[1]]
        )
        for child in children
    ]
    for action, child in enumerate(children):
        if child is None:
            continue
        gamma, _ = child
        action_values[action] = rewards[action] + pomdp.discount * float(
            gamma @ futures[action]
        )

    best_action = _best_action(action_values)
    return TreeDecision(
        action=best_action,
        value=float(action_values[best_action]),
        action_values=action_values,
        leaf_evaluations=counters["leaves"],
        nodes=counters["nodes"],
    )


def _expand_depth1_batched(
    pomdp: POMDP,
    belief: np.ndarray,
    leaf: LeafValue,
    allowed_actions: np.ndarray | None,
    cache: JointFactorCache | SparseJointFactorCache | None,
) -> TreeDecision:
    """Depth-1 expansion as one successor-matrix build + one leaf batch.

    The full successor-belief matrix (every action's reachable posteriors,
    stacked action-major) is built once by :func:`_children_all` /
    :func:`_batched_leaf_values` and evaluated through a single
    ``leaf.value_batch`` call; the per-action combine then weighs each
    action's slice with its observation probabilities.  Arithmetic is
    bit-identical to the generic recursion at depth 1 — this is the same
    computation with the recursion peeled off, and the campaign
    fingerprints hold it to that.
    """
    rewards = rewards_matvec(pomdp.rewards, belief)
    action_values = np.full(pomdp.n_actions, -np.inf)
    children = _children_all(pomdp, belief, cache, action_mask=allowed_actions)
    futures = _batched_leaf_values(children, leaf)
    leaves = sum(child[1].shape[0] for child in children if child is not None)
    for action, child in enumerate(children):
        if child is None:
            continue
        gamma, _ = child
        action_values[action] = rewards[action] + pomdp.discount * float(
            gamma @ futures[action]
        )
    best_action = _best_action(action_values)
    return TreeDecision(
        action=best_action,
        value=float(action_values[best_action]),
        action_values=action_values,
        leaf_evaluations=leaves,
        nodes=1,
    )


def _expand_depth1_sparse(
    pomdp: POMDP,
    belief: np.ndarray,
    leaf: LeafValue,
    allowed_actions: np.ndarray | None,
) -> TreeDecision:
    """Fused depth-1 expansion on the sparse backend (no factor cache).

    At depth 1 with a linear-function leaf set ``B``, an action's value is

        ``V(a) = r_a . pi + beta * sum_o max_b (pred_a * Z_a[:, o]) . b``

    — the posterior normalisation ``1/gamma_a(o)`` cancels against the
    Max-Avg weighting, so no posterior is ever materialised.  Two kernels
    implement the identity: the batched one materialises the full
    ``(k, |A|, |O|)`` score block in a handful of CSR × dense-block
    products, the looped one visits one action at a time and never holds
    more than one action's scores.  The block is charged against the cache
    budget (:func:`~repro.pomdp.cache.charge_block`) *before* it exists;
    a decline falls back to the looped kernel.
    """
    vectors = np.atleast_2d(np.asarray(leaf.vectors, dtype=float))
    block_bytes = (
        8 * (vectors.shape[0] + 3) * pomdp.n_actions * pomdp.n_observations
    )
    if charge_block(
        block_bytes, n_states=pomdp.n_states, kind="tree.depth1_block"
    ):
        return _expand_depth1_sparse_batched(
            pomdp, belief, vectors, leaf, allowed_actions
        )
    return _expand_depth1_sparse_looped(
        pomdp, belief, vectors, leaf, allowed_actions
    )


def _expand_depth1_sparse_batched(
    pomdp: POMDP,
    belief: np.ndarray,
    vectors: np.ndarray,
    leaf: LeafValue,
    allowed_actions: np.ndarray | None,
) -> TreeDecision:
    """All-actions-at-once kernel of the fused sparse depth-1 expansion.

    The per-action correction loop of the looped kernel collapses into CSR
    × dense-block products: one ``corrections @ Z`` product yields every
    action's observation-probability correction, and one such product per
    bound vector (with the correction data scaled by that vector) yields
    the full ``(k, |A|, |O|)`` score block.  Actions with observation
    overrides are recomputed exactly as the looped kernel computes them,
    since they do not observe through the shared base matrix.

    Values agree with the looped kernel to summation re-association
    (~1e-16): sparse row-times-matrix products may add the same terms in a
    different order.  Branch bookkeeping (reachability, usage winners,
    record order) is identical.
    """
    transitions = pomdp.transitions
    observations = pomdp.observations
    base_obs = observations.base
    k = vectors.shape[0]

    pred_base = transitions.predict_base(belief)
    corrections = transitions.correction_matrix(belief).tocsr()
    gamma_base = np.asarray(base_obs.T @ pred_base).ravel()
    scores_base = np.asarray(base_obs.T @ (vectors * pred_base).T).T  # (k, |O|)

    # gamma_all[a, o] = gamma_base[o] + (corrections[a] @ base_obs)[o]
    gamma_all = (corrections @ base_obs).toarray() + gamma_base[None, :]
    scores_all = np.empty((k, pomdp.n_actions, pomdp.n_observations))
    scaled = corrections.copy()
    for j in range(k):
        scaled.data = corrections.data * vectors[j, corrections.indices]
        scores_all[j] = (scaled @ base_obs).toarray()
    scores_all += scores_base[:, None, :]

    for action in sorted(observations.overrides):
        # Overridden observation rows bypass the base matrix entirely;
        # recompute them exactly as the looped kernel does.
        matrix = observations.matrix(action)
        start, stop = corrections.indptr[action], corrections.indptr[action + 1]
        pred = pred_base.copy()
        pred[corrections.indices[start:stop]] += corrections.data[start:stop]
        gamma_all[action] = np.asarray(matrix.T @ pred).ravel()
        scores_all[:, action, :] = np.asarray(matrix.T @ (vectors * pred).T).T

    rewards = rewards_matvec(pomdp.rewards, belief)
    reachable = gamma_all > GAMMA_EPSILON  # (|A|, |O|)
    if allowed_actions is not None:
        reachable &= np.asarray(allowed_actions, dtype=bool)[:, None]
    leaf_evaluations = int(np.count_nonzero(reachable))

    record = getattr(leaf, "record_wins", None)
    if record is not None and leaf_evaluations:
        # Row-major selection is action-major, observation-ascending — the
        # exact order the looped kernel concatenates its winners in.  A
        # single bound vector wins every branch by construction.
        if k == 1:
            record(np.zeros(leaf_evaluations, dtype=np.intp))
        else:
            winners = tie_break_argmax(scores_all, BACKUP_TIE_EPSILON, axis=0)
            record(winners[reachable])

    # max over one vector is the vector itself; skip the (k, |A|, |O|)
    # reduction on the single-seed hot path.  scores_all is not read again,
    # so zeroing the unreachable branches in place is safe.
    best = scores_all[0] if k == 1 else scores_all.max(axis=0)
    best[~reachable] = 0.0
    future = best.sum(axis=1)
    action_values = rewards + pomdp.discount * future
    if allowed_actions is not None:
        action_values[~np.asarray(allowed_actions, dtype=bool)] = -np.inf
    best_action = _best_action(action_values)
    return TreeDecision(
        action=best_action,
        value=float(action_values[best_action]),
        action_values=action_values,
        leaf_evaluations=leaf_evaluations,
        nodes=1,
    )


def _expand_depth1_sparse_looped(
    pomdp: POMDP,
    belief: np.ndarray,
    vectors: np.ndarray,
    leaf: LeafValue,
    allowed_actions: np.ndarray | None,
) -> TreeDecision:
    """Per-action kernel of the fused sparse depth-1 expansion.

    The base quantities (prediction through the shared transition base,
    scores through the shared observation matrix) are computed once per
    decision; each action then contributes only a correction of the size
    of its overrides.  Actions whose override rows carry no belief mass
    and that observe through the base matrix reuse the base score
    unchanged, which is what makes a 150,002-action decision tractable
    even when the batched block is declined.

    Leaf-usage accounting matches the generic path: the winning bound
    vector of every reachable ``(a, o)`` branch is recorded via
    ``leaf.record_wins`` when the leaf supports it.
    """
    transitions = pomdp.transitions
    observations = pomdp.observations
    base_obs = observations.base

    pred_base = transitions.predict_base(belief)
    corrections = transitions.correction_matrix(belief).tocsr()
    gamma_base = np.asarray(base_obs.T @ pred_base).ravel()
    scores_base = np.asarray(base_obs.T @ (vectors * pred_base).T).T  # (k, |O|)
    reachable_base = gamma_base > GAMMA_EPSILON
    if reachable_base.any():
        branch_scores = scores_base[:, reachable_base]
        winners_base = tie_break_argmax(
            branch_scores, BACKUP_TIE_EPSILON, axis=0
        )
        future_base = float(branch_scores.max(axis=0).sum())
    else:
        winners_base = np.zeros(0, dtype=int)
        future_base = 0.0

    rewards = rewards_matvec(pomdp.rewards, belief)
    action_values = np.full(pomdp.n_actions, -np.inf)
    all_winners: list[np.ndarray] = []
    leaves = 0
    indptr = corrections.indptr
    for action in range(pomdp.n_actions):
        if allowed_actions is not None and not allowed_actions[action]:
            continue
        start, stop = indptr[action], indptr[action + 1]
        overridden_obs = action in observations.overrides
        if start == stop and not overridden_obs:
            action_values[action] = rewards[action] + pomdp.discount * future_base
            all_winners.append(winners_base)
            leaves += winners_base.size
            continue
        cols = corrections.indices[start:stop]
        vals = corrections.data[start:stop]
        if overridden_obs:
            matrix = observations.matrix(action)
            pred = pred_base.copy()
            pred[cols] += vals
            gamma = np.asarray(matrix.T @ pred).ravel()
            scores = np.asarray(matrix.T @ (vectors * pred).T).T
        else:
            gamma = gamma_base + np.asarray(base_obs[cols].T @ vals).ravel()
            scores = scores_base + np.asarray(
                base_obs[cols].T @ (vectors[:, cols] * vals).T
            ).T
        reachable = gamma > GAMMA_EPSILON
        if reachable.any():
            branch_scores = scores[:, reachable]
            winners = tie_break_argmax(branch_scores, BACKUP_TIE_EPSILON, axis=0)
            future = float(branch_scores.max(axis=0).sum())
        else:
            winners = np.zeros(0, dtype=int)
            future = 0.0
        action_values[action] = rewards[action] + pomdp.discount * future
        all_winners.append(winners)
        leaves += winners.size

    record = getattr(leaf, "record_wins", None)
    if record is not None and all_winners:
        record(np.concatenate(all_winners))
    best_action = _best_action(action_values)
    return TreeDecision(
        action=best_action,
        value=float(action_values[best_action]),
        action_values=action_values,
        leaf_evaluations=leaves,
        nodes=1,
    )
