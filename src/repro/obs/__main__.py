"""Command-line interface for the observability layer.

Examples::

    python -m repro.obs report run.jsonl     # aggregate + render a run
    python -m repro.obs validate run.jsonl   # schema-check a run (CI)

``validate`` exits 0 on a schema-clean stream and 1 otherwise, printing
one problem per line — the CI bench-smoke job runs it against the
telemetry artifact of a small campaign.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.obs.report import aggregate_stream, format_report
from repro.obs.schema import validate_stream


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect telemetry JSONL runs recorded with --telemetry.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="aggregate and render a run")
    report.add_argument("run", type=Path, help="telemetry JSONL file")

    validate = subparsers.add_parser(
        "validate", help="schema-check a run (exit 1 on problems)"
    )
    validate.add_argument("run", type=Path, help="telemetry JSONL file")

    args = parser.parse_args(argv)
    if args.command == "report":
        print(format_report(aggregate_stream(args.run)))
        return 0
    problems = validate_stream(args.run)
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print(f"{args.run}: schema-valid telemetry stream")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
