"""Step-by-step recovery traces — watching the controller think.

Injects one fault of each zombie type into the EMN system and prints the
full decision trace of the bounded controller: the action taken at each
step, the monitor outputs it observed, how its confidence that the system
has recovered evolved, and what each step cost.  This is the debugging
view a production operator would use to audit an automated recovery.

Also demonstrates the branch-and-bound extension (the paper's future work):
the same episodes driven by upper+lower bounds, with pruning statistics.

Run:  python examples/traced_recovery.py
"""

from repro import BranchAndBoundController, BoundedController, bootstrap_bounds
from repro import build_emn_system
from repro.sim import RecoveryEnvironment, trace_episode

SEED = 42


def main() -> None:
    system = build_emn_system()
    pomdp = system.model.pomdp
    bound_set, _ = bootstrap_bounds(
        system.model, iterations=10, depth=2, variant="average", seed=0
    )

    for fault_label in ("zombie(DB)", "zombie(S1)", "zombie(HG)"):
        controller = BoundedController(
            system.model, depth=1, bound_set=bound_set,
            refine_min_improvement=1.0,
        )
        environment = RecoveryEnvironment(
            system.model, seed=SEED, monitor_tail=5.0
        )
        trace = trace_episode(
            controller, environment, pomdp.state_index(fault_label)
        )
        print(trace.render())
        print()

    # The branch-and-bound extension prunes provably suboptimal actions
    # using the sawtooth upper bound before expanding their subtrees.
    controller = BranchAndBoundController(
        system.model, depth=2, refine_min_improvement=1.0
    )
    environment = RecoveryEnvironment(system.model, seed=SEED, monitor_tail=5.0)
    trace = trace_episode(
        controller, environment, pomdp.state_index("zombie(S2)")
    )
    print(trace.render())
    total = controller.expanded_actions + controller.pruned_actions
    print(
        f"\nBranch-and-bound at depth 2: pruned "
        f"{controller.pruned_actions}/{total} action expansions "
        f"({100 * controller.pruned_actions / total:.0f}%)."
    )


if __name__ == "__main__":
    main()
