"""Backend-dispatching operations over model tensors.

Every belief-side hot path (:mod:`repro.pomdp.belief`, the lookahead tree,
the incremental bound refinement, the simulator) goes through these
functions instead of indexing raw ndarrays, so each path works unchanged
whether the model stores dense tensors or the sparse containers of
:mod:`repro.linalg.containers`.

Dense inputs take the exact code path the dense-only implementation used
(`belief @ transitions[action]` and friends), so the dense backend stays
bit-for-bit identical to the pre-refactor behaviour — the determinism
contract of the campaign fingerprints depends on that.

The four belief-side hot operations (``predict``, ``transition_matvec``,
``observation_probabilities_from_predicted``, ``rewards_matvec``) count
their dispatches under ``linalg.<op>.<dense|sparse>`` when telemetry is on,
so dense and sparse traces of the same campaign can be compared operation
for operation.  The counts are a pure function of the decision sequence,
hence worker-count invariant like the other deterministic counters.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.obs.telemetry import active as telemetry_active


def _count_dispatch(op: str, sparse: bool) -> None:
    telemetry = telemetry_active()
    if telemetry is not None:
        telemetry.count(f"linalg.{op}.{'sparse' if sparse else 'dense'}")


def is_sparse_transitions(transitions) -> bool:
    return isinstance(transitions, SparseTransitions)


# -- transitions --------------------------------------------------------


def predict(transitions, belief: np.ndarray, action: int) -> np.ndarray:
    """``belief @ T_a`` (the Eq. 3 prediction step), dense output."""
    if isinstance(transitions, SparseTransitions):
        _count_dispatch("predict", sparse=True)
        return transitions.predict(belief, action)
    _count_dispatch("predict", sparse=False)
    return belief @ transitions[action]


def transition_row(transitions, action: int, state: int) -> np.ndarray:
    """Dense outgoing distribution of ``(action, state)``."""
    if isinstance(transitions, SparseTransitions):
        return transitions.row(action, state)
    return np.asarray(transitions[action, state])


def transition_matvec(transitions, action: int, values: np.ndarray) -> np.ndarray:
    """``T_a @ values`` (the Bellman-backup direction), dense output."""
    if isinstance(transitions, SparseTransitions):
        _count_dispatch("transition_matvec", sparse=True)
        return transitions.matvec(action, values)
    _count_dispatch("transition_matvec", sparse=False)
    return transitions[action] @ values


def transition_matrix_dense(transitions, action: int) -> np.ndarray:
    """``T_a`` as a dense matrix — small models only."""
    if isinstance(transitions, SparseTransitions):
        return transitions.action_matrix(action).toarray()
    return np.asarray(transitions[action])


def mean_transition_matrix(transitions):
    """``mean_a T_a`` — dense array or CSR, matching the backend."""
    if isinstance(transitions, SparseTransitions):
        return transitions.mean_matrix()
    return np.asarray(transitions).mean(axis=0)


def union_transition_matrix(transitions):
    """``max_a T_a`` — the analyzer's union graph, backend-matched."""
    if isinstance(transitions, SparseTransitions):
        return transitions.union_support()
    return np.asarray(transitions).max(axis=0)


# -- observations -------------------------------------------------------


def observation_matrix(observations, action: int):
    """``(|S|, |O|)`` matrix of ``action`` — dense view or CSR."""
    if isinstance(observations, SparseObservations):
        return observations.matrix(action)
    return observations[action]


def observation_matrix_dense(observations, action: int) -> np.ndarray:
    if isinstance(observations, SparseObservations):
        return observations.matrix(action).toarray()
    return np.asarray(observations[action])


def observation_row(observations, action: int, state: int) -> np.ndarray:
    """Dense observation distribution of ``(action, state)``."""
    if isinstance(observations, SparseObservations):
        return observations.row(action, state)
    return np.asarray(observations[action, state])


def observation_column(observations, action: int, observation: int) -> np.ndarray:
    """Dense likelihood column ``p(o | s', a)`` over successor states."""
    if isinstance(observations, SparseObservations):
        return observations.column(action, observation)
    return np.asarray(observations[action, :, observation])


def observation_probabilities_from_predicted(
    observations, predicted: np.ndarray, action: int
) -> np.ndarray:
    """``predicted @ Z_a`` — the Eq. 4 denominator for every observation."""
    if isinstance(observations, SparseObservations):
        _count_dispatch("observation_probabilities", sparse=True)
        matrix = observations.matrix(action)
        return np.asarray(matrix.T @ predicted).ravel()
    _count_dispatch("observation_probabilities", sparse=False)
    return predicted @ observations[action]


# -- rewards ------------------------------------------------------------


def reward_scalar(rewards, action: int, state: int) -> float:
    """``r[a, s]`` — bit-exact on both backends (feeds fingerprints)."""
    if isinstance(rewards, StructuredRewards):
        return rewards.scalar(action, state)
    return float(rewards[action, state])


def reward_row(rewards, action: int) -> np.ndarray:
    """Dense reward row ``r[a, :]``."""
    if isinstance(rewards, StructuredRewards):
        return rewards.row(action)
    return np.asarray(rewards[action])


def reward_column(rewards, state: int) -> np.ndarray:
    """Dense reward column ``r[:, s]``."""
    if isinstance(rewards, StructuredRewards):
        return rewards.column(state)
    return np.asarray(rewards[:, state])


def rewards_matvec(rewards, weights: np.ndarray) -> np.ndarray:
    """``r @ weights`` over all actions (expected reward per action)."""
    if isinstance(rewards, StructuredRewards):
        _count_dispatch("rewards_matvec", sparse=True)
        return rewards.matvec(weights)
    _count_dispatch("rewards_matvec", sparse=False)
    return rewards @ weights


def rewards_mean_over_actions(rewards) -> np.ndarray:
    if isinstance(rewards, StructuredRewards):
        return rewards.mean_over_actions()
    return np.asarray(rewards).mean(axis=0)


def rewards_max_value(rewards) -> float:
    if isinstance(rewards, StructuredRewards):
        return rewards.max_value()
    return float(np.max(rewards))


def bellman_backup_envelope(
    transitions, rewards, values: np.ndarray, discount: float
) -> np.ndarray:
    """``max_a [ r_a + discount * T_a @ values ]`` per state, exact.

    The fully-observable Bellman backup of ``values``, maximised over
    actions.  This is the right-hand side of the static bound-soundness
    certificate (:mod:`repro.analysis.certify`): every vector of a bound
    set produced by the Eq. 7 refinement is pointwise below the envelope
    of the set's pointwise maximum.  Exact per-action evaluation — reward
    overrides and transition row overrides are honoured entry for entry,
    never approximated by the rank-one envelope — so the certificate can
    not be loosened by override placement.

    Sparse cost is O(|A| * |S|) after two sparse matvecs; dense cost is
    one ``(|A|,|S|,|S|) @ (|S|,)`` product.  Bound sets are only ever
    certified against models small enough to have been solved, so this
    stays off the 300k-state analyzer budget.
    """
    values = np.asarray(values, dtype=float)
    if isinstance(transitions, SparseTransitions):
        base_backed = np.asarray(transitions.base @ values).ravel()
        rows_backed = np.asarray(transitions.rows @ values).ravel()
        envelope = np.full(transitions.n_states, -np.inf)
        for action in range(transitions.n_actions):
            backed = reward_row(rewards, action) + discount * base_backed
            block = transitions._override_slice(action)
            if block.start != block.stop:
                states = transitions.row_state[block]
                backed[states] += discount * (
                    rows_backed[block] - base_backed[states]
                )
            np.maximum(envelope, backed, out=envelope)
        return envelope
    dense = np.asarray(transitions, dtype=float)
    backed_all = np.asarray(rewards, dtype=float) + discount * (dense @ values)
    return backed_all.max(axis=0)


# -- generic ------------------------------------------------------------


def as_dense_chain(chain):
    """Densify a Markov chain if it is sparse (small models only)."""
    if sp.issparse(chain):
        return chain.toarray()
    return np.asarray(chain)


__all__ = [
    "as_dense_chain",
    "bellman_backup_envelope",
    "is_sparse_transitions",
    "mean_transition_matrix",
    "observation_column",
    "observation_matrix",
    "observation_matrix_dense",
    "observation_probabilities_from_predicted",
    "observation_row",
    "predict",
    "reward_column",
    "reward_row",
    "reward_scalar",
    "rewards_matvec",
    "rewards_max_value",
    "rewards_mean_over_actions",
    "transition_matrix_dense",
    "transition_matvec",
    "transition_row",
    "union_transition_matrix",
]
