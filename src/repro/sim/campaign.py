"""Episode and campaign drivers.

An *episode* injects one fault and runs one controller against the
environment until the controller terminates recovery (or a safety cap
trips).  A *campaign* runs many episodes — Section 5 injects 10,000 faults —
and aggregates per-fault averages into a Table 1 row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controllers.base import RecoveryController
from repro.recovery.model import RecoveryModel
from repro.sim.environment import RecoveryEnvironment
from repro.sim.metrics import EpisodeMetrics, MetricSummary, summarize
from repro.util.rng import as_generator

#: Safety cap: no reasonable controller needs this many steps on the EMN
#: model; hitting it means the controller is stuck in the loop that
#: Property 1 exists to rule out.
DEFAULT_MAX_STEPS = 500


@dataclass(frozen=True)
class CampaignResult:
    """All episodes of a campaign plus their aggregate."""

    controller_name: str
    episodes: list[EpisodeMetrics]
    summary: MetricSummary


def run_episode(
    controller: RecoveryController,
    environment: RecoveryEnvironment,
    fault_state: int,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> EpisodeMetrics:
    """Inject ``fault_state`` and drive ``controller`` until it terminates.

    Loop structure, following Section 4's controller description: the
    controller starts from the all-faults-equally-likely belief, folds in
    the detection-time monitor outputs, then repeatedly decides, executes,
    and observes until it chooses to terminate.
    """
    model = controller.model
    uses_monitors = getattr(controller, "uses_monitors", True)
    environment.inject(fault_state)
    controller.reset()
    controller.stopwatch.reset()
    controller.sync_true_state(environment.state)

    passive = np.flatnonzero(model.passive_actions)
    if uses_monitors and passive.size:
        controller.observe(int(passive[0]), environment.initial_observation())

    actions = 0
    monitor_calls = 0
    steps = 0
    terminated = False
    for _ in range(max_steps):
        decision = controller.decide()
        if decision.is_terminate:
            terminated = True
            if decision.action == model.terminate_action and decision.action >= 0:
                environment.execute(decision.action)
            break
        steps += 1
        result = environment.execute(decision.action)
        if model.recovery_actions[decision.action]:
            actions += 1
        if uses_monitors:
            monitor_calls += 1
            controller.observe(decision.action, result.observation)
        controller.sync_true_state(environment.state)

    return EpisodeMetrics(
        fault_state=fault_state,
        cost=environment.cost,
        recovery_time=environment.time,
        residual_time=environment.residual_time(),
        algorithm_time=controller.stopwatch.total_seconds,
        actions=actions,
        monitor_calls=monitor_calls,
        recovered=environment.recovered,
        terminated=terminated,
        steps=steps,
    )


def run_campaign(
    controller: RecoveryController,
    fault_states: np.ndarray,
    injections: int,
    seed=None,
    max_steps: int = DEFAULT_MAX_STEPS,
    monitor_tail: float = 0.0,
    model: RecoveryModel | None = None,
    fault_probabilities: np.ndarray | None = None,
) -> CampaignResult:
    """Run ``injections`` episodes with randomly drawn faults.

    Args:
        controller: the controller under test (reused across episodes —
            bound sets and caches persist, matching a long-lived
            controller process).
        fault_states: candidate fault-state indices; Section 5 draws only
            zombie faults.
        injections: number of episodes (the paper uses 10,000).
        seed: seed for both fault draws and environment sampling.
        max_steps: per-episode step cap.
        monitor_tail: see :class:`RecoveryEnvironment`.
        model: environment-side model; defaults to the controller's own
            (the paper's setting — pass a different one to study model
            mismatch).
        fault_probabilities: draw weights aligned with ``fault_states``;
            uniform (the paper's fault load) when None.  Use for
            criticality-weighted fault loads.
    """
    if injections <= 0:
        raise ValueError(f"injections must be positive, got {injections}")
    fault_states = np.asarray(fault_states, dtype=int)
    if fault_states.size == 0:
        raise ValueError("fault_states must not be empty")
    if fault_probabilities is not None:
        fault_probabilities = np.asarray(fault_probabilities, dtype=float)
        if fault_probabilities.shape != fault_states.shape:
            raise ValueError(
                "fault_probabilities must align with fault_states"
            )
        if np.any(fault_probabilities < 0) or not np.isclose(
            fault_probabilities.sum(), 1.0
        ):
            raise ValueError("fault_probabilities must be a distribution")
    rng = as_generator(seed)
    environment = RecoveryEnvironment(
        model or controller.model, seed=rng, monitor_tail=monitor_tail
    )
    episodes = []
    for _ in range(injections):
        fault = int(rng.choice(fault_states, p=fault_probabilities))
        episodes.append(
            run_episode(controller, environment, fault, max_steps=max_steps)
        )
    return CampaignResult(
        controller_name=controller.name,
        episodes=episodes,
        summary=summarize(episodes),
    )
