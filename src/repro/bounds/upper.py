"""Upper bounds on the POMDP value function.

The paper's experiments use only "a trivial upper bound for the reward"
(zero, valid under Condition 2) when reporting the bound gap in Figure 5(a),
and list informed upper bounds as future work "to facilitate branch and
bound".  This module provides that trivial bound plus the two standard
informed upper bounds:

* **QMDP** (Littman et al.): ``V^+(pi) = max_a sum_s pi(s) Q_m(s, a)`` using
  the *fully observable* optimal Q-values — an upper bound because full
  observability can only help.
* **FIB** (fast informed bound, Hauskrecht [7]): a tighter per-action vector
  recursion that accounts for one step of observation information.

Both are computed on the underlying MDP state space, like the RA-Bound.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DivergenceError, NotConvergedError
from repro.mdp.model import MDP
from repro.mdp.value_iteration import DIVERGENCE_THRESHOLD, value_iteration
from repro.pomdp.model import POMDP


class TrivialUpperBound:
    """The constant-zero upper bound, valid under Condition 2.

    Implements the leaf-value protocol so it can sit at the leaves of an
    optimistic lookahead tree (useful for branch-and-bound experiments).
    """

    def __init__(self, n_states: int):
        self.n_states = n_states

    def value(self, belief: np.ndarray) -> float:
        """Always zero: accumulated non-positive rewards never exceed 0."""
        return 0.0

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        return np.zeros(np.atleast_2d(beliefs).shape[0])


class QMDPBound:
    """QMDP upper bound built from the optimal MDP Q-values."""

    def __init__(self, model: MDP | POMDP, tol: float = 1e-10):
        mdp = model.to_mdp() if isinstance(model, POMDP) else model
        solution = value_iteration(mdp, tol=tol)
        self.q_values = mdp.rewards + mdp.discount * (
            mdp.transitions @ solution.value
        )  # (|A|, |S|)
        self.mdp_value = solution.value

    def value(self, belief: np.ndarray) -> float:
        """``max_a pi . Q_m(., a)`` at ``belief``."""
        return float(np.max(self.q_values @ belief))

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        return np.max(self.q_values @ np.atleast_2d(beliefs).T, axis=0)


def fib_vectors(
    model: POMDP, tol: float = 1e-9, max_iterations: int = 100_000
) -> np.ndarray:
    """Fast-informed-bound per-action vectors ``alpha^a`` (Hauskrecht [7]).

    Recursion: ``alpha^a(s) = r(s,a) +
    beta * sum_o max_{a'} sum_s' p(s'|s,a) q(o|s',a) alpha^{a'}(s')``.

    Converges geometrically for discounted models; for undiscounted recovery
    models it converges when the model has been augmented per Section 3.1
    (the terminate action pins every state's value above the termination
    reward), and divergence is detected and raised otherwise.
    """
    vectors = np.zeros((model.n_actions, model.n_states))
    for iteration in range(max_iterations):
        updated = np.empty_like(vectors)
        for action in range(model.n_actions):
            total = np.zeros(model.n_states)
            for observation in range(model.n_observations):
                weight = (
                    model.transitions[action]
                    * model.observations[action][None, :, observation]
                )  # (s, s')
                total += np.max(vectors @ weight.T, axis=0)
            updated[action] = model.rewards[action] + model.discount * total
        residual = float(np.max(np.abs(updated - vectors)))
        vectors = updated
        if np.max(np.abs(vectors)) > DIVERGENCE_THRESHOLD:
            raise DivergenceError("FIB recursion diverged for this model")
        if residual < tol:
            return vectors
    raise NotConvergedError(
        f"FIB did not reach tol={tol} in {max_iterations} iterations",
        iterations=max_iterations,
        residual=residual,
    )


class FIBBound:
    """Fast informed upper bound: ``V^+(pi) = max_a pi . alpha^a``."""

    def __init__(self, model: POMDP, tol: float = 1e-9):
        self.vectors = fib_vectors(model, tol=tol)

    def value(self, belief: np.ndarray) -> float:
        """The FIB value at ``belief``."""
        return float(np.max(self.vectors @ belief))

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        return np.max(self.vectors @ np.atleast_2d(beliefs).T, axis=0)
