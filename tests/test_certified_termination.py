"""Tests for certified termination (the paper's first future-work item).

"Several ways to extend the approach in the paper are possible, and
include providing of guarantees against early termination of the recovery
process" — implemented as
``BranchAndBoundController(certified_termination=True)``: ``a_T`` is chosen
only when the termination reward dominates every alternative's *upper
bound*, so the model can never prove that continuing would have been
better.
"""

import numpy as np

from repro.controllers.bounded import BoundedController
from repro.controllers.branch_and_bound import BranchAndBoundController
from repro.sim.campaign import run_campaign
from repro.systems.faults import FaultKind
from repro.systems.simple import build_simple_system


def _impatient_system():
    """A variant where loose lower bounds tempt premature termination.

    With t_op = 6, terminating at the uniform fault belief costs 3.0 while
    true recovery costs ~1.3 — but the unrefined RA-Bound prices recovery
    pessimistically enough that a plain bounded controller sometimes quits.
    """
    return build_simple_system(
        recovery_notification=False, operator_response_time=6.0
    )


class TestCertificateBlocksPrematureQuits:
    def test_plain_bounded_quits_early_with_loose_bounds(self):
        system = _impatient_system()
        controller = BoundedController(
            system.model, depth=1, refine_online=False
        )
        result = run_campaign(
            controller,
            fault_states=np.array([system.fault_a, system.fault_b]),
            injections=60,
            seed=2,
        )
        # The premise of the scenario: unrefined bounds cause early quits.
        assert result.summary.early_terminations > 0

    def test_certified_controller_never_quits_early(self):
        system = _impatient_system()
        controller = BranchAndBoundController(
            system.model,
            depth=1,
            refine_online=False,
            certified_termination=True,
        )
        result = run_campaign(
            controller,
            fault_states=np.array([system.fault_a, system.fault_b]),
            injections=60,
            seed=2,
        )
        assert result.summary.early_terminations == 0
        assert result.summary.unrecovered == 0
        assert controller.withheld_terminations > 0

    def test_certificate_does_not_block_legitimate_termination(self):
        """Once recovery genuinely completes, the certificate must allow
        a_T (episodes still terminate, in bounded time)."""
        system = _impatient_system()
        controller = BranchAndBoundController(
            system.model, depth=1, certified_termination=True
        )
        result = run_campaign(
            controller,
            fault_states=np.array([system.fault_a, system.fault_b]),
            injections=40,
            seed=5,
            max_steps=300,
        )
        assert all(episode.terminated for episode in result.episodes)

    def test_certified_on_emn(self, emn_system):
        controller = BranchAndBoundController(
            emn_system.model,
            depth=1,
            refine_min_improvement=1.0,
            certified_termination=True,
        )
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
            injections=15,
            seed=4,
            monitor_tail=5.0,
        )
        assert result.summary.early_terminations == 0
        assert result.summary.unrecovered == 0
