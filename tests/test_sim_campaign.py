"""Tests for episode and campaign drivers."""

import numpy as np
import pytest

from repro.controllers.base import RecoveryController
from repro.controllers.most_likely import MostLikelyController
from repro.controllers.oracle import OracleController
from repro.sim.campaign import run_campaign, run_episode
from repro.sim.environment import RecoveryEnvironment


class ImmediateTerminator(RecoveryController):
    """Gives up on the first decision — exercises the termination paths."""

    name = "terminator"
    uses_monitors = False

    def _decide(self, belief):
        return self._terminate_decision(value=0.0)


class TestRunEpisode:
    def test_oracle_episode_single_action(self, simple_system):
        controller = OracleController(simple_system.model)
        environment = RecoveryEnvironment(simple_system.model, seed=0)
        metrics = run_episode(controller, environment, simple_system.fault_a)
        assert metrics.recovered
        assert metrics.terminated
        assert metrics.actions == 1
        assert metrics.monitor_calls == 0  # oracle never asks the monitors

    def test_most_likely_episode_recovers(self, simple_system):
        controller = MostLikelyController(
            simple_system.model, termination_probability=0.99
        )
        environment = RecoveryEnvironment(simple_system.model, seed=1)
        metrics = run_episode(controller, environment, simple_system.fault_b)
        assert metrics.recovered
        assert metrics.monitor_calls == metrics.steps
        assert metrics.cost > 0

    def test_max_steps_caps_episode(self, simple_system):
        controller = MostLikelyController(
            simple_system.model, termination_probability=1.0
        )
        environment = RecoveryEnvironment(simple_system.model, seed=2)
        # One step is never enough for this controller to restart both
        # candidate servers, so the cap must be what ends the episode.
        metrics = run_episode(
            controller, environment, simple_system.fault_a, max_steps=1
        )
        assert metrics.steps == 1
        assert not metrics.terminated

    def test_algorithm_time_recorded(self, simple_system):
        controller = MostLikelyController(
            simple_system.model, termination_probability=0.99
        )
        environment = RecoveryEnvironment(simple_system.model, seed=3)
        metrics = run_episode(controller, environment, simple_system.fault_a)
        assert metrics.algorithm_time >= 0.0


class TestTerminationAccounting:
    def test_early_termination_charges_operator_penalty(self, simple_system):
        """Regression: threshold/notification exits used to return a bare
        action=-1 sentinel, so walking away from a live fault never charged
        r(s, a_T).  A terminating decision now carries a_T and the episode
        driver executes it."""
        controller = ImmediateTerminator(simple_system.model)
        environment = RecoveryEnvironment(simple_system.model, seed=0)
        metrics = run_episode(controller, environment, simple_system.fault_a)
        expected = 0.5 * simple_system.model.operator_response_time
        assert metrics.terminated and not metrics.recovered
        assert np.isclose(environment.termination_penalty, expected)
        assert np.isclose(metrics.cost, expected)

    def test_terminate_action_not_counted_as_recovery_action(self, simple_system):
        controller = ImmediateTerminator(simple_system.model)
        environment = RecoveryEnvironment(simple_system.model, seed=0)
        metrics = run_episode(controller, environment, simple_system.fault_a)
        assert metrics.actions == 0
        assert metrics.steps == 0
        assert metrics.monitor_calls == 0

    def test_notification_sentinel_executes_nothing(self, simple_notified_system):
        """Without a_T in the model there is nothing to execute or charge;
        the NO_ACTION sentinel must never reach the environment."""
        controller = ImmediateTerminator(simple_notified_system.model)
        environment = RecoveryEnvironment(simple_notified_system.model, seed=0)
        metrics = run_episode(
            controller, environment, simple_notified_system.fault_a
        )
        assert metrics.terminated
        assert environment.cost == 0.0
        assert environment.time == 0.0


class TestRunCampaign:
    def test_aggregates_over_injections(self, simple_system):
        controller = OracleController(simple_system.model)
        result = run_campaign(
            controller,
            fault_states=np.array(
                [simple_system.fault_a, simple_system.fault_b]
            ),
            injections=20,
            seed=0,
        )
        assert len(result.episodes) == 20
        assert result.summary.episodes == 20
        assert result.summary.actions == 1.0
        assert result.controller_name == "oracle"

    def test_same_seed_reproduces(self, simple_system):
        def run():
            controller = MostLikelyController(
                simple_system.model, termination_probability=0.99
            )
            return run_campaign(
                controller,
                fault_states=np.array([simple_system.fault_a]),
                injections=10,
                seed=42,
            )

        first, second = run(), run()
        assert first.summary.cost == second.summary.cost
        assert first.summary.monitor_calls == second.summary.monitor_calls

    def test_faults_drawn_from_given_states(self, simple_system):
        controller = OracleController(simple_system.model)
        result = run_campaign(
            controller,
            fault_states=np.array([simple_system.fault_b]),
            injections=5,
            seed=0,
        )
        assert all(
            episode.fault_state == simple_system.fault_b
            for episode in result.episodes
        )

    def test_invalid_inputs_rejected(self, simple_system):
        controller = OracleController(simple_system.model)
        with pytest.raises(ValueError):
            run_campaign(controller, np.array([1]), injections=0)
        with pytest.raises(ValueError):
            run_campaign(controller, np.array([], dtype=int), injections=1)
