"""The bootstrapping phase (Section 4.1) behind Figures 5(a) and 5(b).

Before any real fault occurs, the controller improves its lower bound by
*simulating* recoveries: faults are injected into a simulated copy of the
system, monitor outputs are sampled from the observation function ``q``, and
the incremental update of Eq. 7 is exercised at every belief the simulated
controller visits.  Two variants match the paper's experiment:

* ``"random"`` — a fault is drawn uniformly, observations corresponding to
  it are sampled, and the controller starts from the belief those
  observations induce;
* ``"average"`` — the controller starts from the belief in which all faults
  are equally likely (no conditioning on an initial observation).

After every iteration the bound is evaluated at the reference belief
``{1/|S|}`` (all model states equally likely), which is the y-axis of
Figure 5(a); the set size is Figure 5(b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.incremental import refine_at
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import BeliefError
from repro.pomdp.belief import update_belief
from repro.pomdp.simulator import POMDPSimulator
from repro.pomdp.tree import expand_tree
from repro.recovery.model import RecoveryModel
from repro.util.rng import as_generator

#: Safety cap on simulated episode length during bootstrapping.
DEFAULT_MAX_STEPS = 64

_VARIANTS = ("random", "average")


@dataclass(frozen=True)
class BootstrapResult:
    """Per-iteration trace of a bootstrapping run.

    Attributes:
        bound_values: ``bound_values[k]`` is ``V_B^-`` at the reference
            belief after iteration ``k+1``; Figure 5(a) plots the negation
            (an upper bound on cost).
        vector_counts: ``|B|`` after each iteration (Figure 5(b)).
        update_counts: incremental updates performed in each iteration;
            Section 4.1 guarantees at most one new vector per update, so
            ``diff(vector_counts) <= update_counts`` element-wise.
        initial_bound: the RA-Bound value at the reference belief before
            any refinement (iteration 0).
        reference_belief: the belief the series is evaluated at.
        variant: ``"random"`` or ``"average"``.
    """

    bound_values: np.ndarray
    vector_counts: np.ndarray
    update_counts: np.ndarray
    initial_bound: float
    reference_belief: np.ndarray
    variant: str

    @property
    def cost_upper_bounds(self) -> np.ndarray:
        """Figure 5(a)'s y-axis: upper bounds on recovery cost (>= 0)."""
        return -self.bound_values


def reference_belief(model: RecoveryModel) -> np.ndarray:
    """The paper's evaluation belief ``{1/|S|}`` over the original states.

    The terminate state, when present, is an artefact of the augmentation
    rather than a system state, so it carries no mass.
    """
    mask = np.ones(model.pomdp.n_states, dtype=bool)
    if model.terminate_state is not None:
        mask[model.terminate_state] = False
    belief = np.zeros(model.pomdp.n_states)
    belief[mask] = 1.0 / mask.sum()
    return belief


def _initial_belief(
    model: RecoveryModel,
    simulator: POMDPSimulator,
    variant: str,
) -> np.ndarray:
    belief = model.initial_belief()
    if variant == "average":
        return belief
    # "random": condition the uniform fault belief on sampled monitor outputs.
    passive = np.flatnonzero(model.passive_actions)
    if passive.size == 0:
        return belief
    observe_action = int(passive[0])
    observation = simulator.observe(observe_action)
    try:
        return update_belief(model.pomdp, belief, observe_action, observation)
    except BeliefError:
        return belief


def bootstrap_bounds(
    model: RecoveryModel,
    bound_set: BoundVectorSet | None = None,
    iterations: int = 20,
    depth: int = 1,
    variant: str = "random",
    seed=None,
    max_steps: int = DEFAULT_MAX_STEPS,
    min_improvement: float = 1.0,
) -> tuple[BoundVectorSet, BootstrapResult]:
    """Run the bootstrapping phase and return the refined bound set.

    Args:
        model: the recovery model (without recovery notification, a
            terminate action must be present — which the augmentation
            guarantees).
        bound_set: set to refine in place; a fresh RA-Bound-seeded set is
            created when None.
        iterations: simulated recovery episodes (the x-axis of Figure 5).
        depth: lookahead depth of the simulated controller's decisions.
        variant: ``"random"`` or ``"average"`` (see module docstring).
        seed: RNG seed for fault draws and monitor sampling.
        max_steps: per-episode step cap.
        min_improvement: acceptance threshold for new hyperplanes (in
            reward units); keeps ``|B|`` in the paper's observed range by
            rejecting marginal refinements.

    Returns:
        ``(bound_set, result)`` — the refined set and the per-iteration
        trace.
    """
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}, got {variant!r}")
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    rng = as_generator(seed)
    pomdp = model.pomdp
    if bound_set is None:
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))

    reference = reference_belief(model)
    initial_bound = float(np.max(bound_set.vectors @ reference))
    fault_indices = np.flatnonzero(model.fault_states)
    simulator = POMDPSimulator(pomdp, seed=rng)

    bound_values = np.empty(iterations)
    vector_counts = np.empty(iterations, dtype=int)
    update_counts = np.empty(iterations, dtype=int)
    for iteration in range(iterations):
        fault = int(rng.choice(fault_indices))
        simulator.reset(fault)
        belief = _initial_belief(model, simulator, variant)
        updates = 0
        for _ in range(max_steps):
            refine_at(pomdp, bound_set, belief, min_improvement=min_improvement)
            updates += 1
            decision = expand_tree(pomdp, belief, depth, bound_set)
            if model.terminate_action is not None and (
                decision.action_values[model.terminate_action]
                >= decision.value - 1e-9
            ):
                # Same terminate-on-tie rule as the bounded controller.
                break
            if (
                model.recovery_notification
                and model.recovered_probability(belief) >= 1.0 - 1e-9
            ):
                break
            step = simulator.step(decision.action)
            try:
                belief = update_belief(
                    pomdp, belief, decision.action, step.observation
                )
            except BeliefError:
                belief = model.initial_belief()
        # Also refine where the figure evaluates, so the series reflects the
        # bound the controller would actually quote for "any fault".
        refine_at(pomdp, bound_set, reference, min_improvement=min_improvement)
        updates += 1
        bound_values[iteration] = float(np.max(bound_set.vectors @ reference))
        vector_counts[iteration] = len(bound_set)
        update_counts[iteration] = updates

    return bound_set, BootstrapResult(
        bound_values=bound_values,
        vector_counts=vector_counts,
        update_counts=update_counts,
        initial_bound=initial_bound,
        reference_belief=reference,
        variant=variant,
    )
