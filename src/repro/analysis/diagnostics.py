"""Diagnostic records and reports for the static model analyzer.

A :class:`Diagnostic` is one finding about a model — an error that makes
the paper's theory unsound for it, a warning about something legal but
suspicious, or an informational note.  Codes follow a lint-style scheme:

* ``R0xx`` — errors: the model violates a precondition the soundness of
  the bounds rests on (Conditions 1/2, the Figure 2 rewirings, Eq. 5
  finiteness, stochasticity).
* ``R1xx`` — warnings: legal but probably unintended structure
  (unreachable states, duplicate/dominated actions, dead observations,
  pathological absorption times).
* ``R2xx`` — info: descriptive statistics, decompositions, and the
  bound-set certificate summary.
* ``R3xx`` — errors: a persisted :class:`~repro.bounds.BoundVectorSet`
  fails its soundness certificate against a model (dimension mismatch,
  Bellman-backup inequality violation, terminate/null inconsistency);
  see :mod:`repro.analysis.certify`.
* ``R9xx`` — warnings from the determinism lint over the *source tree*
  (:mod:`repro.analysis.codelint`): unseeded RNG use, unordered-set
  iteration, wall-clock reads in span-merged code.

An :class:`AnalysisReport` aggregates findings, renders them for humans,
and adapts them back into the library's historical fail-fast exceptions via
:meth:`AnalysisReport.raise_if_errors` (strict mode).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import AnalysisError, ConditionViolation


class Severity(enum.IntEnum):
    """Finding severity; ordering is used to sort reports (errors first)."""

    ERROR = 2
    WARNING = 1
    INFO = 0

    @property
    def label(self) -> str:
        return self.name.lower()


#: Code -> (severity, one-line description) registry.  Passes must only
#: emit registered codes; the CLI prints this table under ``--codes``.
CODES: dict[str, tuple[Severity, str]] = {
    # -- errors -----------------------------------------------------------
    "R001": (Severity.ERROR, "transition matrix row is not a distribution"),
    "R002": (Severity.ERROR, "observation matrix row is not a distribution"),
    "R003": (Severity.ERROR, "Condition 1: the null-fault set S_phi is empty"),
    "R004": (Severity.ERROR, "Condition 1: state cannot reach S_phi"),
    "R005": (Severity.ERROR, "Condition 2: positive single-step reward"),
    "R006": (Severity.ERROR, "Figure 2(a): null state is not absorbing"),
    "R007": (Severity.ERROR, "Figure 2(a): absorbing null state accrues reward"),
    "R008": (Severity.ERROR, "Figure 2(b): terminate pair s_T/a_T mis-wired"),
    "R009": (Severity.ERROR, "Eq. 5: RA-Bound diverges (rewarded recurrent state)"),
    # -- warnings ---------------------------------------------------------
    "R101": (Severity.WARNING, "state unreachable from the initial belief"),
    "R102": (Severity.WARNING, "actions are exact duplicates"),
    "R103": (Severity.WARNING, "action is dominated by another action"),
    "R104": (Severity.WARNING, "observation symbol can never be emitted"),
    "R105": (Severity.WARNING, "random-policy absorption is pathologically slow"),
    # -- info -------------------------------------------------------------
    "R201": (Severity.INFO, "model statistics"),
    "R202": (Severity.INFO, "strongly-connected-component decomposition"),
    "R203": (Severity.INFO, "analysis pass hit a size cutoff (see --force)"),
    "R204": (Severity.INFO, "bound-set certificate summary"),
    # -- bound-set certificates (errors) ----------------------------------
    "R301": (Severity.ERROR, "bound set incompatible with the model"),
    "R302": (Severity.ERROR, "bound vector violates the Bellman-backup inequality"),
    "R303": (Severity.ERROR, "bound vector positive on terminate/null states"),
    # -- determinism lint (warnings) --------------------------------------
    "R900": (Severity.ERROR, "source file cannot be linted"),
    "R901": (Severity.WARNING, "unseeded random-number generator use"),
    "R902": (Severity.WARNING, "iteration over an unordered set"),
    "R903": (Severity.WARNING, "wall-clock read in span-merged code"),
    "R904": (Severity.WARNING, "ndarray row iteration in a hot path"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes:
        code: registered ``Rxxx`` code (see :data:`CODES`).
        severity: derived from the code at construction.
        message: human-readable description naming labels, not indices.
        states: labels of the states involved (possibly empty).
        actions: labels of the actions involved (possibly empty).
        fix_hint: one actionable sentence, or ``""`` when there is nothing
            to fix (info diagnostics).
        location: where the finding anchors outside the model itself —
            ``"path:line"`` for the determinism lint, ``"vector[i]"`` for
            bound-set certificates, ``""`` for model findings.
    """

    code: str
    message: str
    states: tuple[str, ...] = ()
    actions: tuple[str, ...] = ()
    fix_hint: str = ""
    location: str = ""
    severity: Severity = field(init=False)

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        object.__setattr__(self, "severity", CODES[self.code][0])

    def format(self) -> str:
        """One- or multi-line rendering, lint style."""
        head = f"{self.code} {self.severity.label}: {self.message}"
        if self.location:
            head = f"{self.location}: {head}"
        parts = [head]
        if self.fix_hint:
            parts.append(f"    hint: {self.fix_hint}")
        return "\n".join(parts)


@dataclass(frozen=True)
class AnalysisReport:
    """An immutable, ordered collection of diagnostics for one model."""

    findings: tuple[Diagnostic, ...]
    title: str = "model"

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.findings if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.findings if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.findings if d.severity is Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.findings)

    @property
    def codes(self) -> tuple[str, ...]:
        """The distinct codes present, in first-appearance order."""
        seen: dict[str, None] = {}
        for diagnostic in self.findings:
            seen.setdefault(diagnostic.code, None)
        return tuple(seen)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.findings if d.code == code)

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 warnings only, 2 errors."""
        if self.has_errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def sorted(self) -> "AnalysisReport":
        """Errors first, then warnings, then info; stable within a level."""
        ordered = sorted(
            self.findings, key=lambda d: (-int(d.severity), d.code)
        )
        return AnalysisReport(findings=tuple(ordered), title=self.title)

    def format(self, show_info: bool = True) -> str:
        """Render the full report for terminal display."""
        lines = [f"Static analysis: {self.title}"]
        shown = self.sorted().findings
        if not show_info:
            shown = tuple(d for d in shown if d.severity is not Severity.INFO)
        for diagnostic in shown:
            lines.append("  " + diagnostic.format().replace("\n", "\n  "))
        if not shown:
            hidden = len(self.findings) - len(shown)
            suffix = f" (above info level; {hidden} hidden)" if hidden else ""
            lines.append(f"  no findings{suffix}")
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        """Strict-mode adapter: re-raise error findings as exceptions.

        Condition 1/2 findings map onto the historical
        :class:`~repro.exceptions.ConditionViolation` (preserving its
        ``condition`` attribute); any other error-level finding raises
        :class:`~repro.exceptions.AnalysisError` carrying this report.
        """
        errors = self.errors
        if not errors:
            return
        first = errors[0]
        if first.code in ("R003", "R004"):
            raise ConditionViolation(1, first.message)
        if first.code == "R005":
            raise ConditionViolation(2, first.message)
        raise AnalysisError(
            f"{len(errors)} error-level finding(s), first: {first.format()}",
            report=self,
        )
