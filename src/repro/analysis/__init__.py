"""Static model analysis.

Inspects an :class:`~repro.mdp.MDP`, :class:`~repro.pomdp.POMDP`, or
:class:`~repro.recovery.RecoveryModel` *without solving it* and reports
every violation of the paper's structural preconditions (Conditions 1/2,
the Figure 2 rewirings, Eq. 5 finiteness) plus warnings and statistics —
in contrast to the model constructors, which fail fast on the first
problem.  Run ``python -m repro.analysis --help`` for the CLI.
"""

from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.passes import (
    SLOW_ABSORPTION_STEPS,
    analyze,
    condition_1_diagnostics,
    condition_2_diagnostics,
    dead_observation_diagnostics,
    duplicate_action_diagnostics,
    null_rewiring_diagnostics,
    ra_finiteness_diagnostics,
    slow_absorption_diagnostics,
    stochasticity_diagnostics,
    terminate_wiring_diagnostics,
    unreachable_diagnostics,
)
from repro.analysis.view import ModelView

__all__ = [
    "CODES",
    "SLOW_ABSORPTION_STEPS",
    "AnalysisReport",
    "Diagnostic",
    "ModelView",
    "Severity",
    "analyze",
    "condition_1_diagnostics",
    "condition_2_diagnostics",
    "dead_observation_diagnostics",
    "duplicate_action_diagnostics",
    "null_rewiring_diagnostics",
    "ra_finiteness_diagnostics",
    "slow_absorption_diagnostics",
    "stochasticity_diagnostics",
    "terminate_wiring_diagnostics",
    "unreachable_diagnostics",
]
