"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  Centralising the coercion
here keeps experiment scripts reproducible without every module re-deriving
the convention.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    An existing generator is returned unchanged so that callers can thread a
    single stream through a pipeline; anything else is fed to
    :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    statistically independent and the whole family is reproducible from the
    parent seed.  Experiment harnesses use this to give every fault-injection
    campaign (and every controller under test) its own stream while keeping
    one top-level seed in the report.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's bit stream so that the
        # parent generator remains usable afterwards.
        sequence = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4))
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
