"""Tests for modified policy iteration."""

import numpy as np
import pytest

from repro.exceptions import DivergenceError
from repro.mdp.modified_policy_iteration import modified_policy_iteration
from repro.mdp.value_iteration import value_iteration
from tests.test_mdp_solvers import recovery_mdp


class TestModifiedPolicyIteration:
    def test_matches_value_iteration_undiscounted(self):
        vi = value_iteration(recovery_mdp())
        mpi = modified_policy_iteration(recovery_mdp())
        assert np.allclose(vi.value, mpi.value, atol=1e-8)

    def test_matches_value_iteration_discounted(self):
        mdp = recovery_mdp().with_discount(0.9)
        vi = value_iteration(mdp)
        mpi = modified_policy_iteration(mdp)
        assert np.allclose(vi.value, mpi.value, atol=1e-8)

    def test_zero_sweeps_degenerates_to_value_iteration(self):
        mdp = recovery_mdp().with_discount(0.8)
        vi = value_iteration(mdp)
        mpi = modified_policy_iteration(mdp, evaluation_sweeps=0)
        assert np.allclose(vi.value, mpi.value, atol=1e-8)

    def test_fewer_improvement_steps_than_value_iteration(self):
        """The point of MPI: partial evaluation cuts improvement steps.

        Needs a slow-mixing chain (the worked example's deterministic
        repairs converge in two sweeps either way): a repair that only
        succeeds 5 % of the time per attempt.
        """
        from repro.mdp.model import MDP

        slow = MDP(
            transitions=np.array(
                [[[0.95, 0.05], [0.0, 1.0]]]
            ),
            rewards=np.array([[-1.0, 0.0]]),
            discount=0.98,
        )
        vi = value_iteration(slow, tol=1e-10)
        mpi = modified_policy_iteration(slow, evaluation_sweeps=30, tol=1e-10)
        assert np.allclose(vi.value, mpi.value, atol=1e-7)
        assert mpi.iterations < vi.iterations

    def test_policy_is_optimal(self):
        solution = modified_policy_iteration(recovery_mdp())
        assert solution.policy[0] == 0  # restart(a) in fault(a)
        assert solution.policy[1] == 1  # restart(b) in fault(b)

    def test_emn_model(self, emn_system):
        mdp = emn_system.model.pomdp.to_mdp()
        vi = value_iteration(mdp)
        mpi = modified_policy_iteration(mdp)
        assert np.allclose(vi.value, mpi.value, atol=1e-6)

    def test_negative_sweeps_rejected(self):
        with pytest.raises(ValueError):
            modified_policy_iteration(recovery_mdp(), evaluation_sweeps=-1)

    def test_divergent_model_detected(self):
        import numpy as np

        from repro.mdp.model import MDP

        bad = MDP(
            transitions=np.array([[[1.0]]]),
            rewards=np.array([[-1.0]]),
        )
        with pytest.raises(DivergenceError):
            modified_policy_iteration(bad)
