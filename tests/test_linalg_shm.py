"""Shared-memory model handoff (:mod:`repro.linalg.shm`)."""

from __future__ import annotations

import copy
import gc
import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import shm
from repro.linalg.backends import (
    densify_observations,
    densify_rewards,
    densify_transitions,
)
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.systems.tiered import build_tiered_system


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test starts and ends with a clean /dev/shm."""
    assert shm.leaked_segments() == []
    yield
    gc.collect()
    shm.detach_all()
    assert shm.leaked_segments() == []


@pytest.fixture()
def pomdp():
    return build_tiered_system(replicas=(2, 2, 2), backend="sparse").model.pomdp


class TestSharedArena:
    def test_share_array_round_trip(self):
        arena = shm.SharedArena()
        try:
            array = np.arange(12, dtype=np.float64).reshape(3, 4)
            array_handle = arena.share_array(array)
            assert array_handle.segment.startswith(shm.SEGMENT_PREFIX)
            view = shm._attach(array_handle)
            np.testing.assert_array_equal(view, array)
            del view
        finally:
            gc.collect()
            shm.detach_all()
            arena.close()

    def test_share_csr_round_trip(self):
        arena = shm.SharedArena()
        try:
            matrix = sp.csr_matrix(np.eye(4) + np.diag(np.ones(3), k=1))
            rebuilt = shm._attach_csr(arena.share_csr(matrix))
            assert rebuilt.has_canonical_format
            np.testing.assert_array_equal(rebuilt.toarray(), matrix.toarray())
            del rebuilt
        finally:
            gc.collect()
            shm.detach_all()
            arena.close()

    def test_total_bytes_accounts_every_segment(self):
        arena = shm.SharedArena()
        try:
            arena.share_array(np.zeros(1000))
            assert arena.total_bytes >= 8000
            assert len(arena.segment_names) == 1
        finally:
            arena.close()

    def test_close_is_idempotent_and_unlinks(self):
        arena = shm.SharedArena()
        arena.share_array(np.zeros(8))
        assert shm.leaked_segments()  # visible while the arena is open
        arena.close()
        arena.close()
        assert shm.leaked_segments() == []

    def test_closed_arena_rejects_new_segments(self):
        arena = shm.SharedArena()
        arena.close()
        with pytest.raises(RuntimeError):
            arena.share_array(np.zeros(4))

    def test_nested_exports_rejected(self):
        arena = shm.SharedArena()
        try:
            with shm.exporting(arena):
                with pytest.raises(RuntimeError):
                    with shm.exporting(shm.SharedArena()):
                        pass  # pragma: no cover
        finally:
            arena.close()


class TestContainerRoundTrip:
    def test_pickle_through_arena_rebuilds_identical_model(self, pomdp):
        arena = shm.SharedArena()
        try:
            with shm.exporting(arena):
                payload = pickle.dumps(
                    (pomdp.transitions, pomdp.observations, pomdp.rewards)
                )
            # The payload carries handles, not buffers: it must be far
            # smaller than the raw pickle of the same containers.
            raw = pickle.dumps(
                (pomdp.transitions, pomdp.observations, pomdp.rewards)
            )
            assert len(payload) < len(raw) / 2
            transitions, observations, rewards = pickle.loads(payload)
            assert isinstance(transitions, SparseTransitions)
            assert isinstance(observations, SparseObservations)
            assert isinstance(rewards, StructuredRewards)
            np.testing.assert_array_equal(
                densify_transitions(transitions),
                densify_transitions(pomdp.transitions),
            )
            np.testing.assert_array_equal(
                densify_observations(observations),
                densify_observations(pomdp.observations),
            )
            np.testing.assert_array_equal(
                densify_rewards(rewards), densify_rewards(pomdp.rewards)
            )
            del transitions, observations, rewards
        finally:
            gc.collect()
            shm.detach_all()
            arena.close()

    def test_handles_are_memoised_per_container(self, pomdp):
        arena = shm.SharedArena()
        try:
            with shm.exporting(arena):
                pickle.dumps((pomdp.transitions, pomdp.transitions))
                n_segments = len(arena.segment_names)
                pickle.dumps(pomdp.transitions)
            assert len(arena.segment_names) == n_segments
        finally:
            arena.close()

    def test_pickling_outside_export_is_unchanged(self, pomdp):
        """No active arena: containers pickle their buffers as before and
        create no shared-memory segments."""
        clone = pickle.loads(pickle.dumps(pomdp.transitions))
        np.testing.assert_array_equal(
            densify_transitions(clone), densify_transitions(pomdp.transitions)
        )
        assert shm.leaked_segments() == []

    def test_deepcopy_outside_export_is_unchanged(self, pomdp):
        clone = copy.deepcopy(pomdp.observations)
        np.testing.assert_array_equal(
            densify_observations(clone),
            densify_observations(pomdp.observations),
        )
        assert shm.leaked_segments() == []

    def test_rebuild_rejects_unknown_handles(self):
        with pytest.raises(TypeError):
            shm.rebuild(object())


class TestPlanExport:
    def _plan(self, backend):
        from repro.controllers.bounded import BoundedController
        from repro.sim.parallel import plan_campaign

        system = build_tiered_system(replicas=(2, 2, 2), backend=backend)
        controller = BoundedController(system.model, depth=1)
        faults = system.zombie_states()[:2]
        return plan_campaign(controller, faults, injections=4, seed=3)

    def test_sparse_plan_exports_an_arena(self):
        from repro.sim.parallel import export_plan

        plan = self._plan("sparse")
        arena, payload = export_plan(plan)
        try:
            assert arena is not None
            assert arena.total_bytes > 0
            loaded = pickle.loads(payload)
            assert loaded.model.pomdp.backend.is_sparse
            del loaded
        finally:
            gc.collect()
            shm.detach_all()
            if arena is not None:
                arena.close()

    def test_dense_plan_skips_the_arena(self):
        from repro.sim.parallel import export_plan

        plan = self._plan("dense")
        arena, payload = export_plan(plan)
        assert arena is None
        assert pickle.loads(payload).model.pomdp.n_states == plan.model.pomdp.n_states

    def test_handoff_bytes_shrink_with_shared_memory(self):
        from repro.sim.parallel import model_handoff_bytes

        plan = self._plan("sparse")
        handoff = model_handoff_bytes(plan)
        assert handoff < len(pickle.dumps(plan))
        assert shm.leaked_segments() == []
