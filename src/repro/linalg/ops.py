"""Backend-dispatching operations over model tensors.

Every belief-side hot path (:mod:`repro.pomdp.belief`, the lookahead tree,
the incremental bound refinement, the simulator) goes through these
functions instead of indexing raw ndarrays, so each path works unchanged
whether the model stores dense tensors or the sparse containers of
:mod:`repro.linalg.containers`.

Dense inputs take the exact code path the dense-only implementation used
(`belief @ transitions[action]` and friends), so the dense backend stays
bit-for-bit identical to the pre-refactor behaviour — the determinism
contract of the campaign fingerprints depends on that.

The four belief-side hot operations (``predict``, ``transition_matvec``,
``observation_probabilities_from_predicted``, ``rewards_matvec``) count
their dispatches under ``linalg.<op>.<dense|sparse>`` when telemetry is on,
so dense and sparse traces of the same campaign can be compared operation
for operation.  The counts are a pure function of the decision sequence,
hence worker-count invariant like the other deterministic counters.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.obs.telemetry import active as telemetry_active

#: Observation probabilities below this are treated as impossible branches.
#: Canonical home of the constant (re-exported by :mod:`repro.pomdp.belief`
#: for compatibility): the batched primitives below need it without creating
#: an import cycle through the belief module.
GAMMA_EPSILON = 1e-12

#: Scores within this of the maximum count as tied; ties break toward the
#: lowest index.  Symmetric models produce exactly-tied backup candidates,
#: and the two storage backends agree only to linear-solver precision
#: (~1e-13), so an exact argmax would let representation noise pick
#: different winners on each backend.  Canonical home of the constant
#: (re-exported by :mod:`repro.bounds.incremental` for compatibility).
BACKUP_TIE_EPSILON = 1e-9


def tie_break_argmax(
    scores: np.ndarray, epsilon: float = BACKUP_TIE_EPSILON, axis: int = 0
) -> np.ndarray | np.intp:
    """Lowest index within ``epsilon`` of the max along ``axis``.

    The shared tie-break used by the incremental Eq. 7 backups, the
    lookahead tree's branch winners, and :meth:`BoundVectorSet.value_batch`
    usage accounting: ``argmax`` over the boolean "within tolerance of the
    max" array returns the *first* tied index, so winner selection is
    deterministic and backend-independent.  Works on any score array; for
    a 1-D input with ``axis=0`` it returns a scalar index like
    :func:`numpy.argmax`.
    """
    scores = np.asarray(scores)
    tied = scores >= scores.max(axis=axis, keepdims=True) - epsilon
    return np.argmax(tied, axis=axis)


def _count_dispatch(op: str, sparse: bool) -> None:
    telemetry = telemetry_active()
    if telemetry is not None:
        telemetry.count(f"linalg.{op}.{'sparse' if sparse else 'dense'}")


def is_sparse_transitions(transitions) -> bool:
    return isinstance(transitions, SparseTransitions)


# -- transitions --------------------------------------------------------


def predict(transitions, belief: np.ndarray, action: int) -> np.ndarray:
    """``belief @ T_a`` (the Eq. 3 prediction step), dense output."""
    if isinstance(transitions, SparseTransitions):
        _count_dispatch("predict", sparse=True)
        return transitions.predict(belief, action)
    _count_dispatch("predict", sparse=False)
    return belief @ transitions[action]


def predict_batch(
    transitions, beliefs: np.ndarray, action: int
) -> np.ndarray:
    """``beliefs @ T_a`` for a ``(m, |S|)`` stack of beliefs at once.

    Row ``i`` of the result is bit-identical to ``predict(transitions,
    beliefs[i], action)``: the sparse path runs one CSR-transpose product
    against the whole dense block (scipy evaluates a sparse x dense-block
    product column by column with the same axpy kernel as the matvec), and
    the incremental override correction touches only the columns whose base
    rows the action replaces, so shared structure is computed once per
    batch instead of once per belief.
    """
    beliefs = np.atleast_2d(np.asarray(beliefs, dtype=float))
    if isinstance(transitions, SparseTransitions):
        _count_dispatch("predict_batch", sparse=True)
        return transitions.predict_batch(beliefs, action)
    _count_dispatch("predict_batch", sparse=False)
    return beliefs @ transitions[action]


def transition_row(transitions, action: int, state: int) -> np.ndarray:
    """Dense outgoing distribution of ``(action, state)``."""
    if isinstance(transitions, SparseTransitions):
        return transitions.row(action, state)
    return np.asarray(transitions[action, state])


def transition_matvec(transitions, action: int, values: np.ndarray) -> np.ndarray:
    """``T_a @ values`` (the Bellman-backup direction), dense output."""
    if isinstance(transitions, SparseTransitions):
        _count_dispatch("transition_matvec", sparse=True)
        return transitions.matvec(action, values)
    _count_dispatch("transition_matvec", sparse=False)
    return transitions[action] @ values


def transition_matrix_dense(transitions, action: int) -> np.ndarray:
    """``T_a`` as a dense matrix — small models only."""
    if isinstance(transitions, SparseTransitions):
        return transitions.action_matrix(action).toarray()
    return np.asarray(transitions[action])


def mean_transition_matrix(transitions):
    """``mean_a T_a`` — dense array or CSR, matching the backend."""
    if isinstance(transitions, SparseTransitions):
        return transitions.mean_matrix()
    return np.asarray(transitions).mean(axis=0)


def union_transition_matrix(transitions):
    """``max_a T_a`` — the analyzer's union graph, backend-matched."""
    if isinstance(transitions, SparseTransitions):
        return transitions.union_support()
    return np.asarray(transitions).max(axis=0)


# -- observations -------------------------------------------------------


def observation_matrix(observations, action: int):
    """``(|S|, |O|)`` matrix of ``action`` — dense view or CSR."""
    if isinstance(observations, SparseObservations):
        return observations.matrix(action)
    return observations[action]


def observation_matrix_dense(observations, action: int) -> np.ndarray:
    if isinstance(observations, SparseObservations):
        return observations.matrix(action).toarray()
    return np.asarray(observations[action])


def observation_row(observations, action: int, state: int) -> np.ndarray:
    """Dense observation distribution of ``(action, state)``."""
    if isinstance(observations, SparseObservations):
        return observations.row(action, state)
    return np.asarray(observations[action, state])


def observation_column(observations, action: int, observation: int) -> np.ndarray:
    """Dense likelihood column ``p(o | s', a)`` over successor states."""
    if isinstance(observations, SparseObservations):
        return observations.column(action, observation)
    return np.asarray(observations[action, :, observation])


def observation_probabilities_from_predicted(
    observations, predicted: np.ndarray, action: int
) -> np.ndarray:
    """``predicted @ Z_a`` — the Eq. 4 denominator for every observation."""
    if isinstance(observations, SparseObservations):
        _count_dispatch("observation_probabilities", sparse=True)
        matrix = observations.matrix(action)
        return np.asarray(matrix.T @ predicted).ravel()
    _count_dispatch("observation_probabilities", sparse=False)
    return predicted @ observations[action]


def observation_probabilities_batch(
    observations, predicted: np.ndarray, action: int
) -> np.ndarray:
    """``predicted @ Z_a`` for a ``(m, |S|)`` stack of predictions.

    The batched Eq. 3 denominator: row ``i`` is
    ``observation_probabilities_from_predicted(observations, predicted[i],
    action)`` computed through one product over the whole stack.
    """
    predicted = np.atleast_2d(np.asarray(predicted, dtype=float))
    if isinstance(observations, SparseObservations):
        _count_dispatch("observation_probabilities_batch", sparse=True)
        matrix = observations.matrix(action)
        return np.asarray(matrix.T @ predicted.T).T
    _count_dispatch("observation_probabilities_batch", sparse=False)
    return predicted @ observations[action]


def belief_update_batch(
    transitions,
    observations,
    beliefs: np.ndarray,
    action: int,
    epsilon: float = GAMMA_EPSILON,
) -> tuple[np.ndarray, np.ndarray]:
    """Eqs. 3-4 for every observation over a ``(m, |S|)`` belief stack.

    Returns ``(gamma, posteriors)`` with shapes ``(m, |O|)`` and
    ``(m, |O|, |S|)``: ``gamma[i, o]`` is the probability of observing
    ``o`` after choosing ``action`` in belief ``i``, and
    ``posteriors[i, o]`` is the Eq. 4 posterior.  Branches with
    ``gamma <= epsilon`` are impossible under the model; their posterior
    rows are zeroed rather than divided through, so callers mask on
    ``gamma`` exactly like the scalar path raises ``BeliefError``.

    The sparse path is two CSR x dense-block products (prediction through
    the shared transition base plus the per-action override correction,
    then the observation weighting); only the joint factor expansion is
    dense, so cost scales with ``m * |S| * |O|``, not with the model's
    dense tensor sizes.
    """
    beliefs = np.atleast_2d(np.asarray(beliefs, dtype=float))
    predicted = predict_batch(transitions, beliefs, action)  # (m, |S|)
    if isinstance(observations, SparseObservations):
        matrix = observations.matrix(action)
        gamma = np.asarray(matrix.T @ predicted.T).T  # (m, |O|)
        obs_dense = matrix.toarray()
    else:
        obs_dense = np.asarray(observations[action])
        gamma = predicted @ obs_dense
    # joint[i, o, s'] = predicted[i, s'] * q(o | s', a)
    joint = predicted[:, None, :] * obs_dense.T[None, :, :]
    reachable = gamma > epsilon
    safe = np.where(reachable, gamma, 1.0)
    posteriors = np.where(
        reachable[:, :, None], joint / safe[:, :, None], 0.0
    )
    return gamma, posteriors


# -- rewards ------------------------------------------------------------


def reward_scalar(rewards, action: int, state: int) -> float:
    """``r[a, s]`` — bit-exact on both backends (feeds fingerprints)."""
    if isinstance(rewards, StructuredRewards):
        return rewards.scalar(action, state)
    return float(rewards[action, state])


def reward_row(rewards, action: int) -> np.ndarray:
    """Dense reward row ``r[a, :]``."""
    if isinstance(rewards, StructuredRewards):
        return rewards.row(action)
    return np.asarray(rewards[action])


def reward_column(rewards, state: int) -> np.ndarray:
    """Dense reward column ``r[:, s]``."""
    if isinstance(rewards, StructuredRewards):
        return rewards.column(state)
    return np.asarray(rewards[:, state])


def rewards_matvec(rewards, weights: np.ndarray) -> np.ndarray:
    """``r @ weights`` over all actions (expected reward per action)."""
    if isinstance(rewards, StructuredRewards):
        _count_dispatch("rewards_matvec", sparse=True)
        return rewards.matvec(weights)
    _count_dispatch("rewards_matvec", sparse=False)
    return rewards @ weights


def rewards_mean_over_actions(rewards) -> np.ndarray:
    if isinstance(rewards, StructuredRewards):
        return rewards.mean_over_actions()
    return np.asarray(rewards).mean(axis=0)


def rewards_max_value(rewards) -> float:
    if isinstance(rewards, StructuredRewards):
        return rewards.max_value()
    return float(np.max(rewards))


def bellman_backup_envelope(
    transitions, rewards, values: np.ndarray, discount: float
) -> np.ndarray:
    """``max_a [ r_a + discount * T_a @ values ]`` per state, exact.

    The fully-observable Bellman backup of ``values``, maximised over
    actions.  This is the right-hand side of the static bound-soundness
    certificate (:mod:`repro.analysis.certify`): every vector of a bound
    set produced by the Eq. 7 refinement is pointwise below the envelope
    of the set's pointwise maximum.  Exact per-action evaluation — reward
    overrides and transition row overrides are honoured entry for entry,
    never approximated by the rank-one envelope — so the certificate can
    not be loosened by override placement.

    Sparse cost is O(|A| * |S|) after two sparse matvecs; dense cost is
    one ``(|A|,|S|,|S|) @ (|S|,)`` product.  Bound sets are only ever
    certified against models small enough to have been solved, so this
    stays off the 300k-state analyzer budget.

    ``values`` may also be a ``(k, |S|)`` stack, in which case the result
    is the ``(k, |S|)`` stack of per-row envelopes: the sparse path backs
    every row through the shared base/override products at once (one CSR x
    dense-block product instead of ``k`` matvecs).  The 1-D form keeps its
    original arithmetic bit for bit — the R302 soundness certificate
    (:mod:`repro.analysis.certify`) depends on it.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim == 2:
        return _bellman_backup_envelope_batch(
            transitions, rewards, values, discount
        )
    if isinstance(transitions, SparseTransitions):
        base_backed = np.asarray(transitions.base @ values).ravel()
        rows_backed = np.asarray(transitions.rows @ values).ravel()
        envelope = np.full(transitions.n_states, -np.inf)
        for action in range(transitions.n_actions):
            backed = reward_row(rewards, action) + discount * base_backed
            block = transitions._override_slice(action)
            if block.start != block.stop:
                states = transitions.row_state[block]
                backed[states] += discount * (
                    rows_backed[block] - base_backed[states]
                )
            np.maximum(envelope, backed, out=envelope)
        return envelope
    dense = np.asarray(transitions, dtype=float)
    backed_all = np.asarray(rewards, dtype=float) + discount * (dense @ values)
    return backed_all.max(axis=0)


def _bellman_backup_envelope_batch(
    transitions, rewards, values: np.ndarray, discount: float
) -> np.ndarray:
    """The ``(k, |S|)`` stacked form of :func:`bellman_backup_envelope`."""
    if isinstance(transitions, SparseTransitions):
        base_backed = np.asarray(transitions.base @ values.T).T  # (k, |S|)
        rows_backed = np.asarray(transitions.rows @ values.T).T  # (k, R)
        envelope = np.full(values.shape, -np.inf)
        for action in range(transitions.n_actions):
            backed = reward_row(rewards, action)[None, :] + discount * base_backed
            block = transitions._override_slice(action)
            if block.start != block.stop:
                states = transitions.row_state[block]
                backed[:, states] += discount * (
                    rows_backed[:, block] - base_backed[:, states]
                )
            np.maximum(envelope, backed, out=envelope)
        return envelope
    dense = np.asarray(transitions, dtype=float)
    # backed[a, k, s] = r[a, s] + discount * (T_a @ values.T).T[k, s]
    backed_all = np.asarray(rewards, dtype=float)[:, None, :] + discount * (
        np.einsum("aij,kj->aki", dense, values)
    )
    return backed_all.max(axis=0)


# -- generic ------------------------------------------------------------


def as_dense_chain(chain):
    """Densify a Markov chain if it is sparse (small models only)."""
    if sp.issparse(chain):
        return chain.toarray()
    return np.asarray(chain)


__all__ = [
    "BACKUP_TIE_EPSILON",
    "GAMMA_EPSILON",
    "as_dense_chain",
    "belief_update_batch",
    "bellman_backup_envelope",
    "is_sparse_transitions",
    "mean_transition_matrix",
    "observation_column",
    "observation_matrix",
    "observation_matrix_dense",
    "observation_probabilities_batch",
    "observation_probabilities_from_predicted",
    "observation_row",
    "predict",
    "predict_batch",
    "reward_column",
    "reward_row",
    "reward_scalar",
    "rewards_matvec",
    "rewards_max_value",
    "rewards_mean_over_actions",
    "tie_break_argmax",
    "transition_matrix_dense",
    "transition_matvec",
    "transition_row",
    "union_transition_matrix",
]
