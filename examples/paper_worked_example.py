"""The paper's worked example, end to end (Figures 1 and 2).

Walks through Section 2 and Section 3.1 on the two-redundant-server model:

1. the recovery POMDP of Figure 1(a);
2. the Figure 2(a) chain (with recovery notification: absorbing null) and
   the Figure 2(b) chain (without: terminate state/action, termination
   reward ``-0.5 * t_op``), with their RA-Bound values;
3. why the comparison bounds fail (BI-POMDP diverges; blind policies
   diverge with notification);
4. one depth-1 Max-Avg expansion (Figure 1(b)) showing the action the
   bounded controller picks at the all-faults-equally-likely belief.

Run:  python examples/paper_worked_example.py
"""

import numpy as np

from repro import (
    BoundVectorSet,
    DivergenceError,
    bi_pomdp_bound,
    build_simple_system,
    expand_tree,
    ra_bound_vector,
)
from repro.bounds.blind_policy import blind_policy_vectors
from repro.util import render_table


def show_model(system, title: str) -> None:
    pomdp = system.model.pomdp
    print(f"--- {title}: {pomdp}")
    rows = []
    for action in range(pomdp.n_actions):
        for state in range(pomdp.n_states):
            target = int(np.argmax(pomdp.transitions[action, state]))
            rows.append(
                [
                    pomdp.action_labels[action],
                    pomdp.state_labels[state],
                    pomdp.state_labels[target],
                    pomdp.rewards[action, state],
                ]
            )
    print(render_table(["Action", "From", "To (mode)", "Reward"], rows))
    print()


def main() -> None:
    # Figure 2(a): with recovery notification.
    notified = build_simple_system(recovery_notification=True, miss_rate=0.0)
    # Figure 2(b): without (t_op = 4 matches the -0.5*t_op annotation).
    unnotified = build_simple_system(
        recovery_notification=False, operator_response_time=4.0
    )
    show_model(unnotified, "Figure 2(b) model (terminate state appended)")

    for label, system in (("2(a) with notification", notified),
                          ("2(b) without notification", unnotified)):
        vector = ra_bound_vector(system.model.pomdp)
        pairs = ", ".join(
            f"V-({name}) = {value:.2f}"
            for name, value in zip(system.model.pomdp.state_labels, vector)
        )
        print(f"RA-Bound on the Figure {label} chain: {pairs}")
    print()

    # Section 3.1's comparison on the 2(b) model.
    pomdp = unnotified.model.pomdp
    uniform = np.full(pomdp.n_states, 1.0 / pomdp.n_states)
    try:
        bi_pomdp_bound(pomdp, uniform)
    except DivergenceError as error:
        print(f"BI-POMDP bound: DIVERGES ({error})")
    blind = blind_policy_vectors(pomdp, skip_divergent=True)
    finite = [pomdp.action_labels[a] for a in blind]
    print(f"Blind-policy bound: finite only via {finite} "
          "(the terminate action rescues it, Section 3.1)")
    print()

    # Figure 1(b): one Max-Avg expansion at the uniform fault belief.
    belief = unnotified.model.initial_belief()
    lower = BoundVectorSet(ra_bound_vector(pomdp))
    decision = expand_tree(pomdp, belief, depth=1, leaf=lower)
    rows = [
        [pomdp.action_labels[a], decision.action_values[a]]
        for a in range(pomdp.n_actions)
    ]
    print(
        render_table(
            ["Action", "Depth-1 Max-Avg value (RA-Bound leaves)"],
            rows,
            title="Figure 1(b) expansion at the uniform fault belief",
        )
    )
    print(
        f"\nChosen action: {pomdp.action_labels[decision.action]} "
        f"(root value {decision.value:.3f})"
    )

    # With the *raw* RA-Bound and a low t_op, terminating looks best even
    # though recovery is genuinely cheaper — the premature-termination
    # temptation that bound refinement (Section 4.1) and the certified-
    # termination extension exist to remove.  A few refinements flip it:
    from repro import refine_at

    for _ in range(8):
        refine_at(pomdp, lower, belief)
    refined = expand_tree(pomdp, belief, depth=1, leaf=lower)
    print(
        f"After 8 incremental refinements at this belief: chosen action "
        f"becomes {pomdp.action_labels[refined.action]} "
        f"(root value {refined.value:.3f})"
    )


if __name__ == "__main__":
    main()
