"""Numeric validation helpers for stochastic models.

The model classes (:class:`repro.mdp.MDP`, :class:`repro.pomdp.POMDP`) call
these at construction time, so every solver and controller downstream can
assume well-formed inputs instead of re-checking them.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError

#: Absolute tolerance below zero before an entry counts as negative.
NEGATIVITY_ATOL = 1e-9

#: Absolute tolerance on row/vector sums before they count as non-stochastic.
SUM_ATOL = 1e-6

#: Backwards-compatible alias for :data:`NEGATIVITY_ATOL` (the historical
#: name conflated the two tolerances; the static analyzer and the model
#: classes now share the named pair above so they can never disagree on
#: what "stochastic" means).
PROBABILITY_ATOL = NEGATIVITY_ATOL


def check_distribution(vector: np.ndarray, name: str = "distribution") -> np.ndarray:
    """Validate that ``vector`` is a probability distribution.

    Returns the validated array (as ``float64``) so calls can be inlined into
    constructors.  Raises :class:`~repro.exceptions.ModelError` on negative
    entries or a sum away from one.
    """
    array = np.asarray(vector, dtype=float)
    if array.ndim != 1:
        raise ModelError(f"{name} must be one-dimensional, got shape {array.shape}")
    if np.any(array < -NEGATIVITY_ATOL):
        raise ModelError(f"{name} has negative entries: min={array.min():.3g}")
    total = array.sum()
    if not np.isclose(total, 1.0, atol=SUM_ATOL):
        raise ModelError(f"{name} must sum to 1, got {total:.9f}")
    return np.clip(array, 0.0, None)


def check_stochastic_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that every row of ``matrix`` is a probability distribution."""
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2:
        raise ModelError(f"{name} must be two-dimensional, got shape {array.shape}")
    if np.any(array < -NEGATIVITY_ATOL):
        raise ModelError(f"{name} has negative entries: min={array.min():.3g}")
    row_sums = array.sum(axis=1)
    bad = np.flatnonzero(~np.isclose(row_sums, 1.0, atol=SUM_ATOL))
    if bad.size:
        raise ModelError(
            f"{name} rows {bad.tolist()} do not sum to 1 "
            f"(sums {row_sums[bad].tolist()})"
        )
    return np.clip(array, 0.0, None)


def check_nonpositive(array: np.ndarray, name: str = "rewards") -> np.ndarray:
    """Validate Condition 2: every entry of ``array`` is ``<= 0``."""
    values = np.asarray(array, dtype=float)
    if np.any(values > NEGATIVITY_ATOL):
        raise ModelError(
            f"{name} must be non-positive (Condition 2), max={values.max():.3g}"
        )
    return np.minimum(values, 0.0)


def normalize(vector: np.ndarray) -> np.ndarray:
    """Normalise a non-negative vector into a distribution.

    Raises :class:`~repro.exceptions.ModelError` when the vector sums to zero,
    because that means the caller conditioned on an impossible event.
    """
    array = np.asarray(vector, dtype=float)
    total = array.sum()
    if total <= 0.0:
        raise ModelError("cannot normalise a vector with non-positive mass")
    return array / total
