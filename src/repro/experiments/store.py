"""Append-only results store for checkpointed experiment grids.

A store is a directory with one append-only JSONL file of cell records
(``cells.jsonl``) plus an ``artifacts/`` subdirectory of ``.npz`` archives
(refined bound sets, saved through :mod:`repro.io`'s atomic writer).  The
JSONL file *is* the checkpoint: every completed grid cell appends exactly
one record, flushed and fsynced, so a sweep killed at any point leaves at
worst one torn final line — which :meth:`ResultsStore.records` tolerates
(the interrupted cell simply re-runs on resume).

Records are schema-tagged ``repro-grid/v1``::

    {
      "schema": "repro-grid/v1",
      "cell_id": "table1/bounded_depth_1/seed2006/dense/n200",
      "cell": {"experiment": ..., "variant": ..., "seed": ...,
               "backend": ..., "injections": ...},
      "fingerprint": "<sha256>",          # deterministic cell fingerprint
      "metrics": {"cost": ..., ...},      # deterministic metrics only
      "wall_seconds": ...,                # informational, never fingerprinted
      "artifact": "artifacts/....npz"     # or null
    }

The store is deliberately append-only: re-running a cell appends a fresh
record and :meth:`completed` resolves duplicates last-wins, so the history
of a sweep (including re-runs after code changes) stays queryable —
``python -m repro.obs bench store DIR`` renders it as a trajectory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.io import TEMP_SUFFIX

#: Schema tag every cell record carries.
GRID_SCHEMA = "repro-grid/v1"

#: Name of the append-only record file inside a store directory.
RECORDS_NAME = "cells.jsonl"

#: Subdirectory holding per-cell ``.npz`` artifacts.
ARTIFACTS_NAME = "artifacts"


def _artifact_slug(cell_id: str) -> str:
    """A filesystem-safe artifact stem for ``cell_id``."""
    return "".join(
        ch if (ch.isalnum() or ch in "._-") else "__" for ch in cell_id
    )


class ResultsStore:
    """Append-only, crash-tolerant store of grid-cell results.

    Creating the store object creates the directory layout; it never
    deletes or rewrites records.  All writes go through :meth:`append`
    (one fsynced JSONL line per completed cell) or through the atomic
    archive writer of :mod:`repro.io` (artifacts).
    """

    def __init__(self, root) -> None:
        self.root = Path(os.fspath(root))
        self.root.mkdir(parents=True, exist_ok=True)
        self.artifacts_dir.mkdir(exist_ok=True)

    @property
    def records_path(self) -> Path:
        """Path of the append-only JSONL record file."""
        return self.root / RECORDS_NAME

    @property
    def artifacts_dir(self) -> Path:
        """Directory holding per-cell ``.npz`` artifacts."""
        return self.root / ARTIFACTS_NAME

    def artifact_path(self, cell_id: str) -> Path:
        """Where the ``.npz`` artifact of ``cell_id`` lives."""
        return self.artifacts_dir / (_artifact_slug(cell_id) + ".npz")

    def append(self, record: dict[str, Any]) -> None:
        """Append one cell record, flushed and fsynced before returning.

        The line only becomes part of the store once fully written; a
        crash mid-append leaves a torn final line that :meth:`records`
        skips, never a corrupted earlier record.
        """
        line = json.dumps(record, sort_keys=True)
        with open(self.records_path, "a", encoding="utf-8") as stream:
            stream.write(line + "\n")
            stream.flush()
            os.fsync(stream.fileno())

    def records(self) -> list[dict[str, Any]]:
        """Every parseable cell record, in append order.

        Torn or foreign lines (the tail a killed writer left behind) are
        skipped, not fatal; :attr:`skipped_lines` after a call reports how
        many were dropped.
        """
        self.skipped_lines = 0
        records: list[dict[str, Any]] = []
        if not self.records_path.exists():
            return records
        with open(self.records_path, encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_lines += 1
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("schema") != GRID_SCHEMA
                    or "cell_id" not in record
                    or "fingerprint" not in record
                ):
                    self.skipped_lines += 1
                    continue
                records.append(record)
        return records

    def completed(self) -> dict[str, dict[str, Any]]:
        """Latest record per ``cell_id`` (duplicates resolve last-wins)."""
        latest: dict[str, dict[str, Any]] = {}
        for record in self.records():
            latest[str(record["cell_id"])] = record
        return latest

    def sweep_temp(self) -> list[Path]:
        """Remove in-flight temp files a hard-killed writer left behind.

        Atomic archive writes (:mod:`repro.io`) clean their temp file on
        any Python-level failure, but a SIGKILL mid-write can orphan one;
        resuming a sweep calls this first so the acceptance invariant
        "no leftover temp files" holds for the store directory tree.
        """
        removed = []
        for directory in (self.root, self.artifacts_dir):
            for temp in sorted(directory.glob(f"*{TEMP_SUFFIX}")):
                temp.unlink(missing_ok=True)
                removed.append(temp)
        return removed


__all__ = ["ARTIFACTS_NAME", "GRID_SCHEMA", "RECORDS_NAME", "ResultsStore"]
