"""Tests for point-based value iteration (Perseus)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.pomdp.exact import solve_exact
from repro.pomdp.pbvi import sample_belief_points, solve_pbvi
from repro.systems.simple import build_simple_system


@pytest.fixture(scope="module")
def discounted_pomdp():
    return build_simple_system(
        recovery_notification=False, discount=0.85
    ).model.pomdp


@pytest.fixture(scope="module")
def exact_solution(discounted_pomdp):
    return solve_exact(discounted_pomdp, tol=1e-6)


class TestSampling:
    def test_count_and_shape(self, discounted_pomdp):
        initial = np.full(4, 0.25)
        points = sample_belief_points(discounted_pomdp, initial, 32, seed=0)
        assert points.shape == (32, 4)
        assert np.allclose(points.sum(axis=1), 1.0)
        assert np.allclose(points[0], initial)

    def test_reproducible(self, discounted_pomdp):
        initial = np.full(4, 0.25)
        a = sample_belief_points(discounted_pomdp, initial, 16, seed=3)
        b = sample_belief_points(discounted_pomdp, initial, 16, seed=3)
        assert np.allclose(a, b)


class TestSolvePBVI:
    def test_undiscounted_rejected(self, simple_system):
        with pytest.raises(ModelError, match="discount"):
            solve_pbvi(simple_system.model.pomdp)

    def test_lower_bounds_exact_value(self, discounted_pomdp, exact_solution):
        solution = solve_pbvi(discounted_pomdp, n_points=48, seed=0)
        rng = np.random.default_rng(1)
        for belief in rng.dirichlet(np.ones(4), size=64):
            assert (
                solution.value(belief)
                <= exact_solution.value(belief) + exact_solution.error_bound + 1e-6
            )

    def test_tight_at_its_own_points(self, discounted_pomdp, exact_solution):
        solution = solve_pbvi(discounted_pomdp, n_points=48, seed=0)
        gaps = [
            exact_solution.value(point) - solution.value(point)
            for point in solution.points
        ]
        assert max(gaps) <= 0.25  # tight where it backed up (costs ~0.5-10)

    def test_value_batch_matches_scalar(self, discounted_pomdp):
        solution = solve_pbvi(discounted_pomdp, n_points=16, seed=2)
        rng = np.random.default_rng(3)
        beliefs = rng.dirichlet(np.ones(4), size=8)
        assert np.allclose(
            solution.value_batch(beliefs),
            [solution.value(b) for b in beliefs],
        )

    def test_explicit_point_set(self, discounted_pomdp):
        points = np.eye(4)
        solution = solve_pbvi(discounted_pomdp, points=points, seed=0)
        assert solution.points.shape == (4, 4)
        assert np.all(np.isfinite(solution.vectors))

    def test_converges_with_small_residual(self, discounted_pomdp):
        solution = solve_pbvi(discounted_pomdp, n_points=32, seed=5, tol=1e-5)
        assert solution.residual <= 1e-5
