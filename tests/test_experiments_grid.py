"""Tests for the resumable campaign grid and its results store."""

import json

import numpy as np
import pytest

from repro.experiments.grid import (
    DENSE_ONLY_CONTROLLERS,
    GridCell,
    GridSpec,
    bound_set_fingerprint,
    expand_cells,
    run_cell,
    run_grid,
)
from repro.experiments.store import GRID_SCHEMA, ResultsStore
from repro.io import load_bound_set

TINY = GridSpec(
    experiments=("table1", "fig5"),
    controllers=("most likely", "bounded (depth 1)"),
    seeds=(7,),
    backends=("dense",),
    injections=3,
    iterations=2,
)


class TestExpansion:
    def test_order_is_deterministic(self):
        assert [c.cell_id for c in expand_cells(TINY)] == [
            "table1/most_likely/seed7/dense/n3",
            "table1/bounded_depth_1/seed7/dense/n3",
            "fig5/random/seed7/dense/n2",
            "fig5/average/seed7/dense/n2",
        ]

    def test_dense_only_controllers_skip_sparse_cells(self):
        spec = GridSpec(
            controllers=DENSE_ONLY_CONTROLLERS + ("bounded (depth 1)",),
            backends=("dense", "sparse"),
            injections=3,
        )
        ids = [c.cell_id for c in expand_cells(spec)]
        assert "table1/most_likely/seed2006/dense/n3" in ids
        assert not any("most_likely/seed2006/sparse" in i for i in ids)
        assert "table1/bounded_depth_1/seed2006/sparse/n3" in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiments"):
            GridSpec(experiments=("table2",))

    def test_robustness_cells(self):
        spec = GridSpec(
            experiments=("robustness",), coverages=(1.0, 0.75), injections=5
        )
        assert [c.cell_id for c in expand_cells(spec)] == [
            "robustness/coverage-1/seed2006/dense/n5",
            "robustness/coverage-0.75/seed2006/dense/n5",
        ]


class TestStore:
    def test_append_and_completed_last_wins(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        first = {"schema": GRID_SCHEMA, "cell_id": "a", "fingerprint": "1"}
        second = {"schema": GRID_SCHEMA, "cell_id": "a", "fingerprint": "2"}
        store.append(first)
        store.append(second)
        assert len(store.records()) == 2
        assert store.completed()["a"]["fingerprint"] == "2"

    def test_torn_final_line_is_tolerated(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.append(
            {"schema": GRID_SCHEMA, "cell_id": "a", "fingerprint": "1"}
        )
        with open(store.records_path, "a", encoding="utf-8") as stream:
            stream.write('{"schema": "repro-grid/v1", "cell_id": "b", "fin')
        records = store.records()
        assert [r["cell_id"] for r in records] == ["a"]
        assert store.skipped_lines == 1

    def test_foreign_lines_are_skipped(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with open(store.records_path, "w", encoding="utf-8") as stream:
            stream.write(json.dumps({"schema": "other/v1"}) + "\n")
            stream.write("not json at all\n")
        assert store.records() == []
        assert store.skipped_lines == 2

    def test_sweep_temp_removes_orphans(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        orphan = store.artifacts_dir / "cell.npz.abc123.tmp"
        orphan.write_bytes(b"partial")
        keep = store.artifacts_dir / "cell.npz"
        keep.write_bytes(b"complete")
        removed = store.sweep_temp()
        assert [p.name for p in removed] == ["cell.npz.abc123.tmp"]
        assert not orphan.exists()
        assert keep.exists()


class TestRunGrid:
    def test_cells_run_once_and_resume_skips(self, tmp_path):
        store = tmp_path / "store"
        first = run_grid(TINY, store)
        assert (first.ran, first.skipped) == (4, 0)
        assert first.complete and first.fingerprint is not None
        second = run_grid(TINY, store)
        assert (second.ran, second.skipped) == (0, 4)
        assert second.fingerprint == first.fingerprint
        assert [r["fingerprint"] for r in second.records] == [
            r["fingerprint"] for r in first.records
        ]

    def test_interrupted_sweep_resumes_bit_identically(self, tmp_path):
        """Kill mid-sweep, resume, compare against an uninterrupted run."""
        uninterrupted = run_grid(TINY, tmp_path / "clean")

        calls = []

        def kill_after_two(kind, cell, record):
            calls.append((kind, cell.cell_id))
            if len([c for c in calls if c[0] == "run"]) == 2:
                raise KeyboardInterrupt

        interrupted_store = tmp_path / "resumed"
        with pytest.raises(KeyboardInterrupt):
            run_grid(TINY, interrupted_store, on_cell=kill_after_two)
        partial = ResultsStore(interrupted_store).completed()
        assert len(partial) == 2

        resumed = run_grid(TINY, interrupted_store)
        assert (resumed.ran, resumed.skipped) == (2, 2)
        assert resumed.fingerprint == uninterrupted.fingerprint
        for fresh, clean in zip(resumed.records, uninterrupted.records):
            assert fresh["cell_id"] == clean["cell_id"]
            assert fresh["fingerprint"] == clean["fingerprint"]
            assert fresh["metrics"] == clean["metrics"]

    def test_artifacts_reload_with_matching_fingerprint(self, tmp_path):
        store_path = tmp_path / "store"
        result = run_grid(TINY, store_path)
        store = ResultsStore(store_path)
        with_artifacts = [r for r in result.records if r["artifact"]]
        assert with_artifacts, "bounded/fig5 cells must persist bound sets"
        for record in with_artifacts:
            bound_set = load_bound_set(store.root / record["artifact"])
            assert (
                bound_set_fingerprint(bound_set)
                == record["bound_set_fingerprint"]
            )

    def test_run_cell_is_a_pure_function_of_the_cell(self):
        cell = GridCell(
            experiment="fig5",
            variant="average",
            seed=11,
            backend="dense",
            injections=2,
        )
        first = run_cell(cell)
        second = run_cell(cell)
        assert first.fingerprint == second.fingerprint
        assert np.array_equal(
            first.bound_set.vectors, second.bound_set.vectors
        )

    def test_cell_parallelism_keeps_fingerprints(self, tmp_path):
        """Worker count is outside the fingerprint contract."""
        serial = run_grid(
            GridSpec(
                controllers=("bounded (depth 1)",), seeds=(7,), injections=40
            ),
            tmp_path / "serial",
        )
        parallel = run_grid(
            GridSpec(
                controllers=("bounded (depth 1)",), seeds=(7,), injections=40
            ),
            tmp_path / "parallel",
            parallel=2,
        )
        assert parallel.fingerprint == serial.fingerprint
