"""Per-model cache of the joint transition-observation factors.

Every belief-side hot path — the lookahead tree of Figure 1(b), the
incremental bound refinement of Section 4.1, and posterior enumeration —
needs the same quantity for a belief ``pi`` and action ``a``::

    joint[s', o] = sum_s pi(s) p(s'|s, a) q(o|s', a)

The belief-independent part, ``F_a[s, s', o] = p(s'|s, a) q(o|s', a)``, only
depends on the model, yet the naive evaluation rebuilds the ``(|S'|, |O|)``
product from ``transitions`` and ``observations`` at every decision node.
:class:`JointFactorCache` precomputes ``F`` once per :class:`POMDP`, flattened
so the per-belief work collapses to a single GEMV:

* ``joint(belief, a)`` — one ``(|S|,) @ (|S|, |S'|*|O|)`` product;
* ``joint_all(belief)`` — one ``(|S|,) @ (|S|, |A|*|S'|*|O|)`` product that
  yields every action's joint at once, removing the per-action Python loop
  from the innermost tree recursion.

POMDPs are frozen dataclasses whose arrays are never mutated after
validation, so a cache entry is valid for the lifetime of its model object;
derived models (``with_discount`` and friends) are new objects and get their
own entries.  Caches are registered per model *instance* and dropped
automatically when the model is garbage-collected.  Models whose factor
tensor would exceed :data:`MAX_CACHE_BYTES` are not cached —
:func:`get_joint_cache` returns ``None`` and callers fall back to the
two-product path, so memory use stays bounded on very large models.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.model import POMDP

#: Upper limit on the bytes a single model's factor tensors may occupy
#: (both layouts together).  Past this, caching is declined.
MAX_CACHE_BYTES = 256 * 1024 * 1024


class JointFactorCache:
    """Precomputed ``p(s', o | s, a)`` factors for one POMDP.

    Two layouts of the same tensor are kept so that both access patterns
    are a single contiguous matrix product:

    * ``_per_action[a]`` has shape ``(|S|, |S'|*|O|)``;
    * ``_stacked`` has shape ``(|S|, |A|*|S'|*|O|)``.
    """

    def __init__(self, pomdp: POMDP):
        n_actions = pomdp.n_actions
        n_states = pomdp.n_states
        n_observations = pomdp.n_observations
        factors = (
            pomdp.transitions[:, :, :, None] * pomdp.observations[:, None, :, :]
        )
        self._per_action = np.ascontiguousarray(
            factors.reshape(n_actions, n_states, n_states * n_observations)
        )
        self._stacked = np.ascontiguousarray(
            self._per_action.transpose(1, 0, 2).reshape(
                n_states, n_actions * n_states * n_observations
            )
        )
        self.n_actions = n_actions
        self.n_states = n_states
        self.n_observations = n_observations
        self._model_ref = weakref.ref(pomdp)

    @property
    def nbytes(self) -> int:
        """Memory the cached factor tensors occupy."""
        return self._per_action.nbytes + self._stacked.nbytes

    def joint(self, belief: np.ndarray, action: int) -> np.ndarray:
        """``joint[s', o]`` for one action at ``belief``; shape ``(|S'|, |O|)``."""
        return (belief @ self._per_action[action]).reshape(
            self.n_states, self.n_observations
        )

    def joint_all(self, belief: np.ndarray) -> np.ndarray:
        """Every action's joint at once; shape ``(|A|, |S'|, |O|)``."""
        return (belief @ self._stacked).reshape(
            self.n_actions, self.n_states, self.n_observations
        )


def cache_size_bytes(pomdp: POMDP) -> int:
    """Bytes :class:`JointFactorCache` would need for ``pomdp`` (both layouts)."""
    return (
        2
        * 8
        * pomdp.n_actions
        * pomdp.n_states
        * pomdp.n_states
        * pomdp.n_observations
    )


#: Live caches keyed by model identity (the model may be unhashable, so the
#: registry keys on ``id``; a finalizer removes the entry when the model is
#: collected, and identity is re-checked on every hit to survive id reuse).
_CACHES: dict[int, JointFactorCache] = {}


def get_joint_cache(
    pomdp: POMDP, max_bytes: int | None = None
) -> JointFactorCache | None:
    """The shared factor cache for ``pomdp``, or ``None`` when too large.

    The first call for a model builds the cache (an ``O(|A| |S|^2 |O|)``
    one-off); subsequent calls return the same object.  ``max_bytes``
    overrides :data:`MAX_CACHE_BYTES` for callers that want a different
    memory budget.
    """
    # Cache outcomes are *process-local* telemetry: a build happens once per
    # process per model, so hit/build/decline splits legitimately vary with
    # the campaign worker count (unlike the deterministic counters).
    telemetry = telemetry_active()
    limit = MAX_CACHE_BYTES if max_bytes is None else max_bytes
    required = cache_size_bytes(pomdp)
    if required > limit:
        if telemetry is not None:
            telemetry.count_process("cache.declines")
            telemetry.event(
                "cache_decline",
                n_states=pomdp.n_states,
                required_bytes=required,
            )
        return None
    key = id(pomdp)
    cache = _CACHES.get(key)
    if cache is not None and cache._model_ref() is pomdp:
        if telemetry is not None:
            telemetry.count_process("cache.hits")
        return cache
    cache = JointFactorCache(pomdp)
    _CACHES[key] = cache
    weakref.finalize(pomdp, _CACHES.pop, key, None)
    if telemetry is not None:
        telemetry.count_process("cache.builds")
        telemetry.event(
            "cache_build", n_states=pomdp.n_states, nbytes=cache.nbytes
        )
    return cache


def clear_caches() -> None:
    """Drop every registered cache (tests and long-lived processes)."""
    _CACHES.clear()
