"""Benchmarks regenerating Table 1 (experiment E3 in DESIGN.md).

One benchmark per controller row: each runs a zombie-fault injection
campaign with the paper's configuration and records the per-fault averages
(cost, recovery time, residual time, algorithm time, actions, monitor
calls) in the benchmark's extra info, asserting the never-give-up property
along the way.  Row-vs-row ordering claims are asserted in the cross-row
benchmark at the bottom.

Counts default small so the suite stays fast; scale with
``REPRO_BENCH_INJECTIONS`` (the paper uses 10,000; EXPERIMENTS.md reports a
300-injection run of this exact harness).
"""

import pytest

from benchmarks.conftest import bench_injections
from repro.controllers.bounded import BoundedController
from repro.controllers.heuristic import HeuristicController
from repro.controllers.most_likely import MostLikelyController
from repro.controllers.oracle import OracleController
from repro.sim.campaign import run_campaign
from repro.systems.emn import MONITOR_DURATION
from repro.systems.faults import FaultKind

SEED = 2006


def _campaign(controller, emn_system, injections):
    return run_campaign(
        controller,
        fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
        injections=injections,
        seed=SEED,
        monitor_tail=MONITOR_DURATION,
    )


def _record(benchmark, summary):
    benchmark.extra_info.update(
        {
            "cost": round(summary.cost, 2),
            "recovery_time_s": round(summary.recovery_time, 2),
            "residual_time_s": round(summary.residual_time, 2),
            "algorithm_time_ms": round(summary.algorithm_time_ms, 3),
            "actions": round(summary.actions, 3),
            "monitor_calls": round(summary.monitor_calls, 3),
        }
    )
    assert summary.early_terminations == 0
    assert summary.unrecovered == 0


def test_table1_most_likely(benchmark, emn_system):
    """E3 row 1: Bayes diagnosis + cheapest fixing action."""
    injections = bench_injections(100)
    result = benchmark.pedantic(
        lambda: _campaign(
            MostLikelyController(emn_system.model), emn_system, injections
        ),
        rounds=1,
        iterations=1,
    )
    _record(benchmark, result.summary)


@pytest.mark.parametrize("depth", [1, 2])
def test_table1_heuristic(benchmark, emn_system, depth):
    """E3 rows 2-3: heuristic lookahead controllers."""
    injections = bench_injections(60 if depth == 1 else 20)
    result = benchmark.pedantic(
        lambda: _campaign(
            HeuristicController(emn_system.model, depth=depth),
            emn_system,
            injections,
        ),
        rounds=1,
        iterations=1,
    )
    _record(benchmark, result.summary)


def test_table1_heuristic_depth3(benchmark, emn_system):
    """E3 row 4: the depth-3 heuristic — the latency outlier of Table 1."""
    injections = bench_injections(3)
    result = benchmark.pedantic(
        lambda: _campaign(
            HeuristicController(emn_system.model, depth=3),
            emn_system,
            injections,
        ),
        rounds=1,
        iterations=1,
    )
    _record(benchmark, result.summary)


def test_table1_bounded(benchmark, emn_system, bootstrapped_bounds):
    """E3 row 5: the bounded controller (depth 1, bootstrapped 10x depth 2)."""
    injections = bench_injections(100)
    result = benchmark.pedantic(
        lambda: _campaign(
            BoundedController(
                emn_system.model,
                depth=1,
                bound_set=bootstrapped_bounds,
                refine_min_improvement=1.0,
            ),
            emn_system,
            injections,
        ),
        rounds=1,
        iterations=1,
    )
    _record(benchmark, result.summary)


def test_table1_oracle(benchmark, emn_system):
    """E3 row 6: the omniscient oracle — Table 1's floor."""
    injections = bench_injections(100)
    result = benchmark.pedantic(
        lambda: _campaign(
            OracleController(emn_system.model), emn_system, injections
        ),
        rounds=1,
        iterations=1,
    )
    _record(benchmark, result.summary)


def test_table1_orderings(benchmark, emn_system, bootstrapped_bounds):
    """E3 cross-row claims: who wins, on one paired fault sequence."""
    injections = bench_injections(60)

    def run():
        summaries = {}
        controllers = {
            "most_likely": MostLikelyController(emn_system.model),
            "heuristic_d1": HeuristicController(emn_system.model, depth=1),
            "bounded": BoundedController(
                emn_system.model,
                depth=1,
                bound_set=bootstrapped_bounds,
                refine_min_improvement=1.0,
            ),
            "oracle": OracleController(emn_system.model),
        }
        for name, controller in controllers.items():
            summaries[name] = _campaign(
                controller, emn_system, injections
            ).summary
        return summaries

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summaries["oracle"].cost <= summaries["bounded"].cost
    assert summaries["bounded"].cost < summaries["heuristic_d1"].cost
    assert summaries["bounded"].cost < summaries["most_likely"].cost
    assert (
        summaries["bounded"].recovery_time
        < summaries["heuristic_d1"].recovery_time
    )
    benchmark.extra_info["costs"] = {
        name: round(summary.cost, 2) for name, summary in summaries.items()
    }
