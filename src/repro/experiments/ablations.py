"""Ablation and analysis experiments beyond the paper's two artifacts.

* :func:`bounds_comparison` — the Section 3.1 argument as an experiment:
  the RA-Bound converges on recovery models where the BI-POMDP bound [14]
  diverges (always) and the blind-policy bound [6] diverges (with recovery
  notification) or is loose (without).
* :func:`operator_response_sweep` — how ``t_op`` trades recovery
  aggressiveness against cost ("by varying this parameter, it is possible
  to configure the controller for systems with differing degrees of human
  oversight").
* :func:`depth_sweep` — lookahead depth vs decision latency and quality
  for the bounded controller.
* :func:`bound_computation_cost` — Section 4.3's cost model: RA-Bound
  solve time and per-update refinement time as ``|B|`` grows.
* :func:`monitor_quality_sweep` — path-monitor coverage vs recovery
  metrics (the coverage/accuracy trade-off the introduction motivates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bounds.blind_policy import blind_policy_vectors
from repro.bounds.bi_pomdp import bi_pomdp_vector
from repro.bounds.incremental import refine_at, sample_reachable_beliefs
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bootstrap import bootstrap_bounds
from repro.controllers.bounded import BoundedController
from repro.exceptions import DivergenceError
from repro.sim.campaign import run_campaign
from repro.sim.metrics import MetricSummary
from repro.systems.emn import MONITOR_DURATION, build_emn_system
from repro.systems.faults import FaultKind
from repro.systems.simple import build_simple_system
from repro.util.tables import render_table


@dataclass(frozen=True)
class BoundOutcome:
    """Whether a bound converged on a model, and to what value at uniform."""

    bound: str
    model: str
    converged: bool
    value_at_uniform: float | None


def bounds_comparison() -> list[BoundOutcome]:
    """Section 3.1's comparison on the Figure 1(a) example, both variants.

    Expected outcome (asserted by the test suite):

    ========================  =========  ============
    bound                     with rec.  without rec.
    ========================  =========  ============
    RA-Bound                  finite     finite
    BI-POMDP (worst action)   diverges   diverges
    blind policy              diverges   finite
    ========================  =========  ============
    """
    outcomes = []
    variants = {
        "with notification": build_simple_system(
            recovery_notification=True, miss_rate=0.0
        ),
        "without notification": build_simple_system(recovery_notification=False),
    }
    for label, system in variants.items():
        pomdp = system.model.pomdp
        uniform = np.full(pomdp.n_states, 1.0 / pomdp.n_states)
        try:
            vector = ra_bound_vector(pomdp)
            outcomes.append(
                BoundOutcome("RA-Bound", label, True, float(uniform @ vector))
            )
        except DivergenceError:
            outcomes.append(BoundOutcome("RA-Bound", label, False, None))
        try:
            vector = bi_pomdp_vector(pomdp)
            outcomes.append(
                BoundOutcome("BI-POMDP", label, True, float(uniform @ vector))
            )
        except DivergenceError:
            outcomes.append(BoundOutcome("BI-POMDP", label, False, None))
        vectors = blind_policy_vectors(pomdp, skip_divergent=True)
        if vectors:
            value = max(float(uniform @ v) for v in vectors.values())
            outcomes.append(BoundOutcome("blind policy", label, True, value))
        else:
            outcomes.append(BoundOutcome("blind policy", label, False, None))
    return outcomes


def format_bounds_comparison(outcomes: list[BoundOutcome]) -> str:
    """Render :func:`bounds_comparison` as a table."""
    rows = [
        [
            outcome.bound,
            outcome.model,
            "finite" if outcome.converged else "DIVERGES",
            outcome.value_at_uniform if outcome.converged else float("nan"),
        ]
        for outcome in outcomes
    ]
    return render_table(
        ["Bound", "Model variant", "Convergence", "Value at uniform belief"],
        rows,
        title=(
            "Section 3.1 bound comparison on the Figure 1(a) recovery model\n"
            "(undiscounted; the RA-Bound is the only bound finite in both "
            "variants)"
        ),
    )


def operator_response_sweep(
    response_times: tuple[float, ...] = (600.0, 3600.0, 21600.0, 86400.0),
    injections: int = 200,
    seed: int = 7,
) -> list[tuple[float, MetricSummary]]:
    """Sweep ``t_op`` and measure the bounded controller's behaviour.

    Higher ``t_op`` makes early termination costlier, so the controller
    observes longer before terminating and early terminations become rarer —
    "if it is high, the recovery controller will be more aggressive in
    ensuring that the system has recovered before it terminates, but it
    might incur a higher recovery cost" (Section 3.1).
    """
    results = []
    for response_time in response_times:
        system = build_emn_system(operator_response_time=response_time)
        bound_set, _ = bootstrap_bounds(
            system.model, iterations=10, depth=2, variant="average", seed=0
        )
        controller = BoundedController(system.model, depth=1, bound_set=bound_set)
        campaign = run_campaign(
            controller,
            fault_states=system.fault_states(FaultKind.ZOMBIE),
            injections=injections,
            seed=seed,
            monitor_tail=MONITOR_DURATION,
        )
        results.append((response_time, campaign.summary))
    return results


def depth_sweep(
    depths: tuple[int, ...] = (1, 2),
    injections: int = 100,
    seed: int = 7,
) -> list[tuple[int, MetricSummary]]:
    """Bounded-controller lookahead depth vs quality and latency."""
    system = build_emn_system()
    results = []
    for depth in depths:
        bound_set, _ = bootstrap_bounds(
            system.model, iterations=10, depth=2, variant="average", seed=0
        )
        controller = BoundedController(
            system.model, depth=depth, bound_set=bound_set
        )
        campaign = run_campaign(
            controller,
            fault_states=system.fault_states(FaultKind.ZOMBIE),
            injections=injections,
            seed=seed,
            monitor_tail=MONITOR_DURATION,
        )
        results.append((depth, campaign.summary))
    return results


def monitor_quality_sweep(
    coverages: tuple[float, ...] = (0.5, 0.75, 0.9, 1.0),
    injections: int = 200,
    seed: int = 7,
) -> list[tuple[float, MetricSummary]]:
    """Path-monitor coverage vs bounded-controller recovery metrics."""
    results = []
    for coverage in coverages:
        system = build_emn_system(path_monitor_coverage=coverage)
        bound_set, _ = bootstrap_bounds(
            system.model, iterations=10, depth=2, variant="average", seed=0
        )
        controller = BoundedController(system.model, depth=1, bound_set=bound_set)
        campaign = run_campaign(
            controller,
            fault_states=system.fault_states(FaultKind.ZOMBIE),
            injections=injections,
            seed=seed,
            monitor_tail=MONITOR_DURATION,
        )
        results.append((coverage, campaign.summary))
    return results


@dataclass(frozen=True)
class BoundCostProfile:
    """Section 4.3's computational-cost measurements."""

    ra_solve_seconds: float
    refine_seconds_by_set_size: list[tuple[int, float]]


def bound_computation_cost(updates: int = 60) -> BoundCostProfile:
    """Measure the RA-Bound solve and per-update refinement cost.

    The RA-Bound is a single linear solve on ``|S|`` states (off-line,
    Section 4.3); each incremental update is ``O(|S||A||O||B|)`` with
    sparsity, so per-update time grows with the set size — measured here by
    refining repeatedly at reachable beliefs.
    """
    system = build_emn_system()
    pomdp = system.model.pomdp

    started = time.perf_counter()  # codelint: ignore[R903]
    vector = ra_bound_vector(pomdp)
    ra_seconds = time.perf_counter() - started  # codelint: ignore[R903]

    bound_set = BoundVectorSet(vector)
    beliefs = sample_reachable_beliefs(
        pomdp, system.model.initial_belief(), depth=2, max_beliefs=updates
    )
    profile = []
    for belief in beliefs[:updates]:
        started = time.perf_counter()  # codelint: ignore[R903]
        refine_at(pomdp, bound_set, belief)
        elapsed = time.perf_counter() - started  # codelint: ignore[R903]
        profile.append((len(bound_set), elapsed))
    return BoundCostProfile(
        ra_solve_seconds=ra_seconds, refine_seconds_by_set_size=profile
    )


def format_summary_sweep(
    label: str, results: list[tuple[float, MetricSummary]], title: str
) -> str:
    """Render a (parameter, summary) sweep as a table."""
    rows = [
        [
            parameter,
            summary.cost,
            summary.recovery_time,
            summary.residual_time,
            summary.actions,
            summary.monitor_calls,
            summary.early_terminations,
        ]
        for parameter, summary in results
    ]
    return render_table(
        [label, "Cost", "Recovery (s)", "Residual (s)", "Actions",
         "Monitor calls", "Early terms"],
        rows,
        title=title,
    )
