"""Howard policy iteration.

A second exact MDP solver, used by the test suite to cross-validate
:mod:`repro.mdp.value_iteration` and by the oracle controller construction
(which needs the optimal fully-observable recovery policy).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DivergenceError, NotConvergedError
from repro.mdp.model import MDP
from repro.mdp.policy import Policy, evaluate_policy, greedy_policy
from repro.mdp.value_iteration import MDPSolution


def policy_iteration(
    mdp: MDP,
    initial_policy: Policy | np.ndarray | None = None,
    max_iterations: int = 1_000,
    evaluation_tol: float = 1e-12,
) -> MDPSolution:
    """Solve ``mdp`` by policy iteration.

    For undiscounted models an arbitrary initial policy may induce a chain
    with infinite cost (a non-proper policy); such policies raise
    :class:`~repro.exceptions.DivergenceError` during evaluation.  Callers
    solving recovery models should start from a proper policy — the recovery
    augmentations of :mod:`repro.recovery` make the uniform-random policy
    proper, so its greedy improvement is a safe default, which is what this
    function does when ``initial_policy`` is ``None``.
    """
    if initial_policy is None:
        # Greedy improvement of the uniform chain's value is proper whenever
        # the uniform chain itself is (Section 3.1's model modifications).
        from repro.mdp.linear_solvers import solve_markov_reward

        chain, reward = mdp.uniform_chain()
        uniform_value = solve_markov_reward(chain, reward, discount=mdp.discount)
        policy = greedy_policy(mdp, uniform_value)
    elif isinstance(initial_policy, Policy):
        policy = initial_policy
    else:
        policy = Policy(
            actions=np.asarray(initial_policy), action_labels=mdp.action_labels
        )

    value = evaluate_policy(mdp, policy, tol=evaluation_tol)
    for iteration in range(1, max_iterations + 1):
        improved = greedy_policy(mdp, value)
        if np.array_equal(improved.actions, policy.actions):
            return MDPSolution(
                value=value, policy=policy, iterations=iteration, residual=0.0
            )
        try:
            improved_value = evaluate_policy(mdp, improved, tol=evaluation_tol)
        except DivergenceError:
            # Greedy switches can momentarily propose a non-proper policy in
            # undiscounted models when several actions tie at zero advantage;
            # keep the incumbent for those states.
            ties = np.isclose(
                (mdp.rewards + mdp.discount * (mdp.transitions @ value))[
                    improved.actions, np.arange(mdp.n_states)
                ],
                (mdp.rewards + mdp.discount * (mdp.transitions @ value))[
                    policy.actions, np.arange(mdp.n_states)
                ],
            )
            merged = improved.actions.copy()
            merged[ties] = policy.actions[ties]
            improved = Policy(actions=merged, action_labels=mdp.action_labels)
            if np.array_equal(improved.actions, policy.actions):
                return MDPSolution(
                    value=value, policy=policy, iterations=iteration, residual=0.0
                )
            improved_value = evaluate_policy(mdp, improved, tol=evaluation_tol)
        policy = improved
        value = improved_value
    raise NotConvergedError(
        f"policy iteration did not stabilise in {max_iterations} iterations",
        iterations=max_iterations,
        residual=float("nan"),
    )
