"""Determinism lint over the repro source tree (R9xx).

The campaign fingerprints, span-merged traces, and dense/sparse parity
guarantees all rest on the code being deterministic: same seeds, same
decision sequence, same bytes.  Three code patterns quietly break that
contract, and each has bitten a numerical codebase before:

``R901`` — unseeded random-number generation: ``np.random.*`` module-level
samplers, ``numpy.random.default_rng()`` with no seed, and the stdlib
``random`` module's samplers.  All randomness must flow through an
explicitly seeded generator (see :mod:`repro.util.rng`).

``R902`` — iterating an unordered ``set``/``frozenset`` in a ``for`` loop
or comprehension.  Set iteration order depends on insertion history and
hash randomization; when the loop feeds a fingerprint, a merge, or any
emitted sequence, the output differs run to run.  Wrap the iterable in
``sorted(...)`` to fix the order.

``R903`` — wall-clock reads (``time.time``, ``time.perf_counter``,
``datetime.now``, ...).  Timestamps are fine in telemetry, but inside
span-merged or fingerprinted code they poison determinism; the repro
code routes them through :mod:`repro.util.timing` so replay can stub
them out.

``R904`` — Python-level row iteration over an ndarray in a hot path
(``for row in matrix:``).  Not a determinism hazard but a performance
one: the batched-evaluation work showed per-row loops over belief and
hyperplane stacks dominating decision time, and the batched primitives
in :mod:`repro.linalg.ops` replace them with single matrix products.
The rule fires only under ``pomdp/`` and ``bounds/`` directories (the
decision-time hot paths) and recognises iterables that are matrix
constructors (``np.atleast_2d``/``vstack``/``stack``/``column_stack``),
names assigned from them, or ``.vectors`` hyperplane stacks.  Loops
that are intentionally row-wise (convergence checks, merge-with-reject
loops) carry ``# codelint: ignore[R904]``.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` objects with
``location`` set to ``path:line``, reported through the same
:class:`~repro.analysis.diagnostics.AnalysisReport` machinery as the
model analyzer, with the same exit-code contract (0 clean, 1 warnings,
2 errors — R9xx are warnings, so a dirty tree exits 1).

Suppressions: a line comment ``# codelint: ignore[R901]`` (one or more
comma-separated codes) silences those codes on that line; a file whose
first non-blank lines include ``# codelint: skip-file`` is not linted.

Run as a CI gate::

    python -m repro.analysis.codelint src/
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

from repro.analysis.diagnostics import AnalysisReport, Diagnostic

#: ``np.random.<sampler>`` attributes that draw from the global state.
_GLOBAL_NUMPY_SAMPLERS = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "dirichlet",
        "multinomial",
        "beta",
        "gamma",
        "geometric",
        "seed",
    }
)

#: stdlib ``random.<sampler>`` functions drawing from the global state.
_GLOBAL_STDLIB_SAMPLERS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "normalvariate",
        "gauss",
        "expovariate",
        "betavariate",
        "gammavariate",
        "seed",
        "getrandbits",
    }
)

#: ``time.<reader>`` wall-clock functions.
_WALL_CLOCK_TIME = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.<reader>`` constructors reading the clock.
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: ``np.<constructor>`` calls whose result is a 2-D row stack; iterating
#: one row-by-row in a hot path is what R904 flags.
_MATRIX_PRODUCERS = frozenset({"atleast_2d", "vstack", "stack", "column_stack"})

#: Directory names whose files count as decision-time hot paths for R904.
_HOT_PATH_DIRS = frozenset({"pomdp", "bounds"})

_IGNORE_PATTERN = re.compile(r"#\s*codelint:\s*ignore\[([A-Z0-9,\s]+)\]")
_SKIP_FILE_PATTERN = re.compile(r"#\s*codelint:\s*skip-file")


def _suppressions(source: str) -> tuple[dict[int, frozenset[str]], bool]:
    """Per-line suppressed codes and the file-level skip flag."""
    suppressed: dict[int, frozenset[str]] = {}
    skip_file = False
    for lineno, line in enumerate(source.splitlines(), start=1):
        if lineno <= 5 and _SKIP_FILE_PATTERN.search(line):
            skip_file = True
        match = _IGNORE_PATTERN.search(line)
        if match:
            suppressed[lineno] = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
    return suppressed, skip_file


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ModuleAliases(ast.NodeVisitor):
    """Local names bound to the modules the rules care about."""

    def __init__(self) -> None:
        self.numpy: set[str] = set()
        self.numpy_random: set[str] = set()
        self.stdlib_random: set[str] = set()
        self.time: set[str] = set()
        self.datetime_module: set[str] = set()
        self.datetime_class: set[str] = set()
        self.default_rng: set[str] = set()
        self.stdlib_samplers: set[str] = set()
        self.time_readers: set[str] = set()
        self.matrix_names: set[str] = set()

    def _is_matrix_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = _dotted(node.func)
        if dotted is None:
            return False
        head, _, tail = dotted.rpartition(".")
        return head in self.numpy and tail in _MATRIX_PRODUCERS

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_matrix_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.matrix_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._is_matrix_call(node.value):
            if isinstance(node.target, ast.Name):
                self.matrix_names.add(node.target.id)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for item in node.names:
            name = item.asname or item.name
            if item.name == "numpy":
                self.numpy.add(name)
            elif item.name == "numpy.random":
                self.numpy_random.add(name)
            elif item.name == "random":
                self.stdlib_random.add(name)
            elif item.name == "time":
                self.time.add(name)
            elif item.name == "datetime":
                self.datetime_module.add(name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for item in node.names:
            name = item.asname or item.name
            if node.module == "numpy" and item.name == "random":
                self.numpy_random.add(name)
            elif node.module == "numpy.random" and item.name == "default_rng":
                self.default_rng.add(name)
            elif node.module == "random" and item.name in _GLOBAL_STDLIB_SAMPLERS:
                self.stdlib_samplers.add(name)
            elif node.module == "time" and item.name in _WALL_CLOCK_TIME:
                self.time_readers.add(name)
            elif node.module == "datetime" and item.name == "datetime":
                self.datetime_class.add(name)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, aliases: _ModuleAliases):
        self.path = path
        self.aliases = aliases
        self.findings: list[Diagnostic] = []
        self.hot_path = any(
            part in _HOT_PATH_DIRS for part in Path(path).parts
        )

    def _flag(self, code: str, node: ast.AST, message: str, fix_hint: str) -> None:
        self.findings.append(
            Diagnostic(
                code=code,
                message=message,
                location=f"{self.path}:{node.lineno}",
                fix_hint=fix_hint,
            )
        )

    # -- R901: unseeded RNG ------------------------------------------------

    def _check_rng(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        head, _, tail = dotted.rpartition(".")
        # np.random.<sampler> / numpy.random.<sampler>
        for np_alias in self.aliases.numpy:
            if head == f"{np_alias}.random" and tail in _GLOBAL_NUMPY_SAMPLERS:
                self._flag(
                    "R901",
                    node,
                    f"call to the global numpy RNG: {dotted}()",
                    "draw from an explicitly seeded np.random.Generator "
                    "(repro.util.rng) instead of the global state",
                )
                return
        for nr_alias in self.aliases.numpy_random:
            if head == nr_alias and tail in _GLOBAL_NUMPY_SAMPLERS:
                self._flag(
                    "R901",
                    node,
                    f"call to the global numpy RNG: {dotted}()",
                    "draw from an explicitly seeded np.random.Generator "
                    "(repro.util.rng) instead of the global state",
                )
                return
        # random.<sampler> (stdlib)
        if head in self.aliases.stdlib_random and tail in _GLOBAL_STDLIB_SAMPLERS:
            self._flag(
                "R901",
                node,
                f"call to the global stdlib RNG: {dotted}()",
                "use random.Random(seed) or a seeded numpy Generator",
            )
            return
        if not head and dotted in self.aliases.stdlib_samplers:
            self._flag(
                "R901",
                node,
                f"call to the global stdlib RNG: {dotted}()",
                "use random.Random(seed) or a seeded numpy Generator",
            )
            return
        # default_rng() with no seed argument
        is_default_rng = (not head and dotted in self.aliases.default_rng) or any(
            dotted == f"{alias}.default_rng"
            for alias in (
                self.aliases.numpy_random
                | {f"{np_alias}.random" for np_alias in self.aliases.numpy}
            )
        )
        if is_default_rng and not node.args and not node.keywords:
            self._flag(
                "R901",
                node,
                f"{dotted}() without a seed draws entropy from the OS",
                "pass an explicit seed (or a seeded SeedSequence)",
            )

    # -- R902: unordered set iteration ------------------------------------

    def _is_unordered(self, node: ast.AST) -> str | None:
        """Describe ``node`` if its iteration order is unordered."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("set", "frozenset"):
                return f"{dotted}(...)"
            # set operations also yield sets: a.union(b), a.intersection(b)...
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                inner = self._is_unordered(node.func.value)
                if inner is not None:
                    return f"{inner}.{node.func.attr}(...)"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._is_unordered(node.left)
            right = self._is_unordered(node.right)
            if left is not None or right is not None:
                return left or right
        return None

    def _check_iteration(self, iterable: ast.AST, node: ast.AST) -> None:
        what = self._is_unordered(iterable)
        if what is not None:
            self._flag(
                "R902",
                node,
                f"iteration over {what}: order depends on hashes and "
                "insertion history",
                "wrap the iterable in sorted(...) to pin the order",
            )
        if self.hot_path:
            self._check_matrix_rows(iterable, node)

    # -- R904: ndarray row iteration in hot paths ---------------------------

    def _is_matrix(self, node: ast.AST) -> str | None:
        """Describe ``node`` if it evaluates to a 2-D row stack."""
        if self.aliases._is_matrix_call(node):
            return f"{_dotted(node.func)}(...)"  # type: ignore[union-attr]
        if isinstance(node, ast.Name) and node.id in self.aliases.matrix_names:
            return f"{node.id} (assigned from a matrix constructor)"
        if isinstance(node, ast.Attribute) and node.attr == "vectors":
            return "a .vectors hyperplane stack"
        return None

    def _check_matrix_rows(self, iterable: ast.AST, node: ast.AST) -> None:
        what = self._is_matrix(iterable)
        if what is not None:
            self._flag(
                "R904",
                node,
                f"Python-level row iteration over {what} in a hot path",
                "replace the row loop with a batched primitive from "
                "repro.linalg.ops (or mark the loop intentionally row-wise "
                "with # codelint: ignore[R904])",
            )

    # -- R903: wall-clock reads --------------------------------------------

    def _check_clock(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        head, _, tail = dotted.rpartition(".")
        if head in self.aliases.time and tail in _WALL_CLOCK_TIME:
            self._flag(
                "R903",
                node,
                f"wall-clock read: {dotted}()",
                "route timing through repro.util.timing so replays can "
                "stub the clock",
            )
            return
        if not head and dotted in self.aliases.time_readers:
            self._flag(
                "R903",
                node,
                f"wall-clock read: {dotted}()",
                "route timing through repro.util.timing so replays can "
                "stub the clock",
            )
            return
        if tail in _WALL_CLOCK_DATETIME:
            base = head.rpartition(".")[2]
            direct = head in self.aliases.datetime_class
            via_module = any(
                head == f"{module}.datetime"
                for module in self.aliases.datetime_module
            ) or (base == "datetime" and head.endswith("datetime"))
            if direct or via_module:
                self._flag(
                    "R903",
                    node,
                    f"wall-clock read: {dotted}()",
                    "take timestamps at the edges (CLI, telemetry export), "
                    "not inside deterministic code",
                )

    # -- dispatch ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng(node)
        self._check_clock(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one module's source text; returns the (possibly empty) findings."""
    suppressed, skip_file = _suppressions(source)
    if skip_file:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Diagnostic(
                code="R900",
                message=f"file does not parse: {error.msg}",
                location=f"{path}:{error.lineno or 0}",
                fix_hint="fix the syntax error so the file can be linted",
            )
        ]
    aliases = _ModuleAliases()
    aliases.visit(tree)
    linter = _Linter(path, aliases)
    linter.visit(tree)
    return [
        finding
        for finding in linter.findings
        if finding.code
        not in suppressed.get(int(finding.location.rpartition(":")[2]), ())
    ]


def lint_paths(paths: list[str | Path]) -> AnalysisReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Files are visited in sorted path order so the report — and therefore
    the CI log — is itself deterministic.
    """
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    findings: list[Diagnostic] = []
    for file in files:
        findings.extend(lint_source(file.read_text(), str(file)))
    findings.append(
        Diagnostic(
            code="R201",
            message=(
                f"linted {len(files)} file(s); "
                f"{sum(1 for f in findings if f.code.startswith('R9'))} "
                "determinism finding(s)"
            ),
        )
    )
    title = "determinism lint (" + ", ".join(str(p) for p in paths) + ")"
    return AnalysisReport(findings=tuple(findings), title=title)


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.analysis.codelint <paths...>``.

    Exit codes mirror the model analyzer: 0 clean, 1 warnings (any R9xx
    finding), 2 errors (unparseable files).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.codelint",
        description="determinism lint: unseeded RNGs, unordered set "
        "iteration, wall-clock reads",
    )
    parser.add_argument("paths", nargs="+", help=".py files or directories")
    parser.add_argument(
        "--no-info", action="store_true", help="hide the R201 summary line"
    )
    options = parser.parse_args(argv)
    report = lint_paths(options.paths)
    print(report.format(show_info=not options.no_info))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
