"""Cross-module property-based tests on randomly generated POMDPs.

These invariants tie the whole bound stack together: on *any* discounted
POMDP with non-positive rewards, the bound hierarchy

    BI-POMDP <= RA-Bound <= V* <= FIB <= QMDP <= 0

must hold at every belief, refinement must move lower bounds up and upper
bounds down without ever crossing the truth, and the lookahead tree must be
monotone in its leaf estimate.  Hypothesis drives the model generator.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.bi_pomdp import bi_pomdp_vector
from repro.bounds.incremental import refine_at
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.sawtooth import SawtoothUpperBound
from repro.bounds.upper import FIBBound, QMDPBound
from repro.bounds.vector_set import BoundVectorSet
from repro.pomdp.tree import expand_tree
from tests.conftest import random_pomdp

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _beliefs(rng, pomdp, count=16):
    return rng.dirichlet(np.ones(pomdp.n_states), size=count)


@given(SEEDS)
@settings(max_examples=25, deadline=None)
def test_bound_hierarchy(seed):
    rng = np.random.default_rng(seed)
    pomdp = random_pomdp(rng)
    bi = bi_pomdp_vector(pomdp)
    ra = ra_bound_vector(pomdp)
    fib = FIBBound(pomdp)
    qmdp = QMDPBound(pomdp)
    for belief in _beliefs(rng, pomdp):
        lower_bi = float(belief @ bi)
        lower_ra = float(belief @ ra)
        upper_fib = fib.value(belief)
        upper_qmdp = qmdp.value(belief)
        assert lower_bi <= lower_ra + 1e-8
        assert lower_ra <= upper_fib + 1e-8
        assert upper_fib <= upper_qmdp + 1e-8
        assert upper_qmdp <= 1e-8  # rewards are non-positive


@given(SEEDS)
@settings(max_examples=25, deadline=None)
def test_refinement_squeezes_from_both_sides(seed):
    """Lower refinement moves up, sawtooth refinement moves down, and the
    two never cross."""
    rng = np.random.default_rng(seed)
    pomdp = random_pomdp(rng)
    lower = BoundVectorSet(ra_bound_vector(pomdp))
    upper = SawtoothUpperBound(pomdp)
    target = rng.dirichlet(np.ones(pomdp.n_states))
    for _ in range(8):
        low_before = lower.value(target)
        up_before = upper.value(target)
        refine_at(pomdp, lower, target)
        upper.refine_at(target)
        assert lower.value(target) >= low_before - 1e-9
        assert upper.value(target) <= up_before + 1e-9
        assert lower.value(target) <= upper.value(target) + 1e-7


@given(SEEDS)
@settings(max_examples=20, deadline=None)
def test_tree_value_between_bounds(seed):
    """The depth-1 tree with the lower bound at the leaves yields a value
    inside [lower, upper] at the root."""
    rng = np.random.default_rng(seed)
    pomdp = random_pomdp(rng)
    lower = BoundVectorSet(ra_bound_vector(pomdp))
    qmdp = QMDPBound(pomdp)
    belief = rng.dirichlet(np.ones(pomdp.n_states))
    decision = expand_tree(pomdp, belief, depth=1, leaf=lower)
    # One application of L_p to a valid lower bound stays a lower bound
    # (so >= the current bound) and below any valid upper bound.
    assert decision.value >= lower.value(belief) - 1e-8
    assert decision.value <= qmdp.value(belief) + 1e-8


@given(SEEDS)
@settings(max_examples=20, deadline=None)
def test_tree_depth_monotone_with_lower_bound_leaf(seed):
    """With a valid lower bound at the leaves, deeper lookahead can only
    raise the root value (each extra level is one more L_p application)."""
    rng = np.random.default_rng(seed)
    pomdp = random_pomdp(rng, n_states=3, n_actions=2, n_observations=2)
    lower = BoundVectorSet(ra_bound_vector(pomdp))
    belief = rng.dirichlet(np.ones(pomdp.n_states))
    v1 = expand_tree(pomdp, belief, depth=1, leaf=lower).value
    v2 = expand_tree(pomdp, belief, depth=2, leaf=lower).value
    assert v2 >= v1 - 1e-9


@given(SEEDS)
@settings(max_examples=20, deadline=None)
def test_ra_bound_is_uniform_policy_value(seed):
    """The RA-Bound equals the uniform-random policy's exact chain value."""
    rng = np.random.default_rng(seed)
    pomdp = random_pomdp(rng)
    mdp = pomdp.to_mdp()
    chain, reward = mdp.uniform_chain()
    manual = np.linalg.solve(
        np.eye(mdp.n_states) - mdp.discount * chain, reward
    )
    assert np.allclose(ra_bound_vector(pomdp), manual, atol=1e-7)
