"""RA-Bound scalability (Section 4.3's state-space claim).

"This linear system is defined on the original state-space of the POMDP
(S) and, with the appropriate sparse structure, can be solved using
standard, numerically stable linear system solvers for models with up to
hundreds of thousands of states."  This experiment measures exactly that:
RA-Bound solve time on the tiered model family
(:mod:`repro.systems.tiered`) as the state count grows from tens to
hundreds of thousands.  Every solve goes through the shared sparse backend
(:func:`repro.mdp.linear_solvers.solve_sparse`); the chain is built
directly in CSR form (~3 non-zeros per row), so the largest default point
(50,000 replicas per tier, 300,002 states) never materialises a dense
matrix anywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bounds.ra_bound import ra_bound_vector
from repro.mdp.linear_solvers import chain_density
from repro.systems.tiered import (
    build_tiered_system,
    solve_tiered_ra_bound,
    tiered_ra_chain,
)
from repro.util.tables import render_table

#: Default replica counts per tier for the sweep (3 tiers each).  The
#: largest point gives 2 + 2 * 3 * 50,000 = 300,002 states — past the
#: "hundreds of thousands" threshold of Section 4.3.
DEFAULT_SIZES = (2, 10, 100, 1_000, 10_000, 50_000)


@dataclass(frozen=True)
class ScalabilityPoint:
    """One measurement of the sweep."""

    replicas_per_tier: int
    n_states: int
    nnz: int
    backend: str
    solve_seconds: float
    sample_value: float


def run_scalability(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    n_tiers: int = 3,
    method: str = "sparse",
) -> list[ScalabilityPoint]:
    """Time the RA-Bound solve across model sizes.

    Each point is a 3-tier system with ``r`` replicas per tier, i.e.
    ``2 + 2 * n_tiers * r`` states.  Small instances are cross-checked
    against the dense solver elsewhere (:func:`verify_against_dense` and
    the test suite); here we record wall-clock time, the chain's non-zero
    count, and a sample value for sanity.
    """
    points = []
    for r in sizes:
        replicas = tuple([r] * n_tiers)
        chain, _ = tiered_ra_chain(replicas)
        started = time.perf_counter()
        values = solve_tiered_ra_bound(replicas, method=method)
        elapsed = time.perf_counter() - started
        points.append(
            ScalabilityPoint(
                replicas_per_tier=r,
                n_states=values.shape[0],
                nnz=int(chain.nnz),
                backend=method,
                solve_seconds=elapsed,
                sample_value=float(values[1]),
            )
        )
    return points


def verify_against_dense(
    replicas: tuple[int, ...], methods: tuple[str, ...] = ("sparse",)
) -> float:
    """Max RA-Bound discrepancy between the sparse path and the dense model.

    The direct sparse construction must agree with the RA-Bound computed
    from the fully-materialised recovery model (the default Gauss-Seidel
    path of :func:`ra_bound_vector`), for every requested sparse-side
    ``method``.  Returns the worst absolute discrepancy across methods.
    """
    system = build_tiered_system(replicas=replicas)
    dense = ra_bound_vector(system.model.pomdp, method="gauss-seidel")
    return max(
        float(np.max(np.abs(dense - solve_tiered_ra_bound(replicas, method=m))))
        for m in methods
    )


def format_scalability(points: list[ScalabilityPoint]) -> str:
    """Render the sweep as a table."""
    rows = [
        [
            point.replicas_per_tier,
            point.n_states,
            point.nnz,
            point.backend,
            point.solve_seconds * 1000.0,
            point.sample_value,
        ]
        for point in points
    ]
    return render_table(
        [
            "Replicas/tier",
            "States",
            "nnz",
            "Backend",
            "RA solve (ms)",
            "V-(first fault)",
        ],
        rows,
        title=(
            "RA-Bound scalability on the tiered model family (Section 4.3: "
            "sparse\nlinear solves scale to hundreds of thousands of states)"
        ),
    )


__all__ = [
    "DEFAULT_SIZES",
    "ScalabilityPoint",
    "chain_density",
    "format_scalability",
    "run_scalability",
    "verify_against_dense",
]
