"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.util.validation import (
    check_distribution,
    check_nonpositive,
    check_stochastic_matrix,
    normalize,
)


class TestCheckDistribution:
    def test_valid(self):
        out = check_distribution([0.25, 0.75])
        assert out.dtype == float
        assert np.isclose(out.sum(), 1.0)

    def test_negative_entry_rejected(self):
        with pytest.raises(ModelError, match="negative"):
            check_distribution([-0.1, 1.1])

    def test_wrong_sum_rejected(self):
        with pytest.raises(ModelError, match="sum to 1"):
            check_distribution([0.5, 0.4])

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ModelError, match="one-dimensional"):
            check_distribution([[0.5, 0.5]])

    def test_tiny_negative_noise_clipped(self):
        out = check_distribution([1.0 + 1e-10, -1e-10])
        assert out.min() >= 0.0


class TestCheckStochasticMatrix:
    def test_valid(self):
        matrix = np.array([[0.1, 0.9], [1.0, 0.0]])
        assert check_stochastic_matrix(matrix).shape == (2, 2)

    def test_bad_row_named_in_error(self):
        matrix = np.array([[0.1, 0.9], [0.6, 0.6]])
        with pytest.raises(ModelError, match=r"rows \[1\]"):
            check_stochastic_matrix(matrix)

    def test_negative_rejected(self):
        matrix = np.array([[1.2, -0.2], [0.5, 0.5]])
        with pytest.raises(ModelError, match="negative"):
            check_stochastic_matrix(matrix)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ModelError, match="two-dimensional"):
            check_stochastic_matrix(np.ones(3))


class TestCheckNonpositive:
    def test_valid(self):
        out = check_nonpositive([-1.0, 0.0])
        assert out.max() <= 0.0

    def test_positive_rejected(self):
        with pytest.raises(ModelError, match="non-positive"):
            check_nonpositive([0.5])

    def test_numerical_noise_clamped(self):
        out = check_nonpositive([1e-12, -1.0])
        assert out[0] == 0.0


class TestNormalize:
    def test_normalizes(self):
        out = normalize([2.0, 2.0])
        assert np.allclose(out, [0.5, 0.5])

    def test_zero_mass_rejected(self):
        with pytest.raises(ModelError, match="mass"):
            normalize([0.0, 0.0])


class TestSharedTolerances:
    """The atoms the analyzer shares with the constructors (ISSUE: one
    source of truth for what counts as negative / non-stochastic)."""

    def test_constants_exported(self):
        from repro.util.validation import (
            NEGATIVITY_ATOL,
            PROBABILITY_ATOL,
            SUM_ATOL,
        )

        assert NEGATIVITY_ATOL == 1e-9
        assert SUM_ATOL == 1e-6
        assert PROBABILITY_ATOL == NEGATIVITY_ATOL  # backwards-compat alias

    def test_negativity_tolerance_honoured(self):
        from repro.util.validation import NEGATIVITY_ATOL, check_nonpositive

        check_nonpositive(np.array([NEGATIVITY_ATOL / 2]), "r")
        with pytest.raises(ModelError):
            check_nonpositive(np.array([NEGATIVITY_ATOL * 10]), "r")
