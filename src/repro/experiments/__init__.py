"""Experiment harnesses regenerating the paper's tables and figures.

Each module reproduces one artifact of Section 5 (see DESIGN.md's
per-experiment index):

* :mod:`repro.experiments.fig5` — Figure 5(a) (iterative lower-bound
  improvement) and Figure 5(b) (bound-vector growth), Random vs Average
  bootstrapping.
* :mod:`repro.experiments.table1` — Table 1's fault-injection comparison of
  the six controllers.
* :mod:`repro.experiments.ablations` — the bound-comparison experiment of
  Section 3.1 (RA vs BI-POMDP vs blind-policy convergence), plus sweeps the
  paper motivates: operator response time, lookahead depth, monitor
  quality, and bound-computation cost.

Run them from the command line::

    python -m repro.experiments table1 --injections 1000 --seed 0
    python -m repro.experiments fig5a
    python -m repro.experiments fig5b
    python -m repro.experiments ablations
"""

from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.table1 import Table1Result, run_table1

__all__ = ["Fig5Result", "Table1Result", "run_fig5", "run_table1"]
